//! Homomorphism search between finite structures.
//!
//! A homomorphism h : **A** → **B** maps every tuple of every relation of
//! **A** to a tuple of the corresponding relation of **B**. Searches may
//! *pin* part of the map, which is exactly the satisfaction condition of
//! pp-formulas: `B, f ⊨ φ(S)` iff `f : S → B` extends to a homomorphism
//! from φ's structure to **B** (Chandra–Merlin, Section 2.1 of the paper).
//!
//! The search is backtracking over a connectivity-driven static variable
//! order (maximum-cardinality search), checking each constraint as soon as
//! its last variable is assigned and pruning with per-vertex candidate
//! filtering against unary projections of **B**'s relations.

use crate::structure::{RelId, Structure, StructureIndex};
use epq_bigint::Natural;
use std::ops::ControlFlow;

/// A prepared homomorphism search from `a` to `b` (reusable across calls).
pub struct HomSearch<'a> {
    a: &'a Structure,
    b_index: StructureIndex,
    /// Static assignment order of `a`'s elements.
    order: Vec<u32>,
    /// position_of[element] = its index in `order`.
    position_of: Vec<usize>,
    /// Constraints checked when the order position is assigned: for each
    /// position, the list of (relation, tuple) whose latest variable (in
    /// the order) sits at that position.
    checks: Vec<Vec<(RelId, Vec<u32>)>>,
    /// candidates[element] = allowed images (after unary pruning).
    candidates: Vec<Vec<u32>>,
}

impl<'a> HomSearch<'a> {
    /// Prepares a search with some elements pre-assigned (`pins` is a list
    /// of `(element_of_a, element_of_b)`).
    ///
    /// # Panics
    /// Panics if signatures differ or pins are out of range / contradictory.
    pub fn new(a: &'a Structure, b: &'a Structure, pins: &[(u32, u32)]) -> Self {
        assert_eq!(
            a.signature(),
            b.signature(),
            "homomorphism search requires equal signatures"
        );
        let n = a.universe_size();
        let mut pinned_value = vec![u32::MAX; n];
        for &(x, y) in pins {
            assert!((x as usize) < n, "pinned element {x} out of range");
            assert!(
                (y as usize) < b.universe_size(),
                "pin target {y} out of range"
            );
            assert!(
                pinned_value[x as usize] == u32::MAX || pinned_value[x as usize] == y,
                "contradictory pins for element {x}"
            );
            pinned_value[x as usize] = y;
        }

        // Order: pinned elements first, then maximum-cardinality search on
        // the Gaifman graph (pick the element with most already-ordered
        // neighbors; ties by index).
        let gaifman = a.gaifman_graph();
        let mut order: Vec<u32> = (0..n as u32)
            .filter(|&v| pinned_value[v as usize] != u32::MAX)
            .collect();
        let mut placed = vec![false; n];
        for &v in &order {
            placed[v as usize] = true;
        }
        let mut weight = vec![0usize; n];
        for &v in &order {
            for &w in gaifman.neighbors(v) {
                weight[w as usize] += 1;
            }
        }
        while order.len() < n {
            let v = (0..n as u32)
                .filter(|&v| !placed[v as usize])
                .max_by_key(|&v| weight[v as usize])
                .expect("unplaced element remains");
            placed[v as usize] = true;
            order.push(v);
            for &w in gaifman.neighbors(v) {
                weight[w as usize] += 1;
            }
        }
        let mut position_of = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            position_of[v as usize] = i;
        }

        // Attach each constraint to the latest position among its variables.
        let mut checks: Vec<Vec<(RelId, Vec<u32>)>> = vec![Vec::new(); n.max(1)];
        for (rel, _, _) in a.signature().iter() {
            for tuple in a.relation(rel).tuples() {
                let last = tuple
                    .iter()
                    .map(|&e| position_of[e as usize])
                    .max()
                    .expect("arity >= 1");
                checks[last].push((rel, tuple.to_vec()));
            }
        }

        // Unary pruning: an element occurring at coordinate i of an R-atom
        // can only map to values occurring at coordinate i of R^B.
        let mut allowed: Vec<Option<Vec<bool>>> = vec![None; n];
        for (rel, _, _) in a.signature().iter() {
            let arity = a.signature().arity(rel);
            // Column projections of R^B.
            let mut columns: Vec<Vec<bool>> = vec![vec![false; b.universe_size()]; arity];
            for t in b.relation(rel).tuples() {
                for (i, &e) in t.iter().enumerate() {
                    columns[i][e as usize] = true;
                }
            }
            for t in a.relation(rel).tuples() {
                for (i, &e) in t.iter().enumerate() {
                    let entry =
                        allowed[e as usize].get_or_insert_with(|| vec![true; b.universe_size()]);
                    for (x, ok) in entry.iter_mut().enumerate() {
                        *ok = *ok && columns[i][x];
                    }
                }
            }
        }
        let candidates: Vec<Vec<u32>> = (0..n)
            .map(|v| {
                let base: Vec<u32> = match &allowed[v] {
                    None => (0..b.universe_size() as u32).collect(),
                    Some(mask) => (0..b.universe_size() as u32)
                        .filter(|&x| mask[x as usize])
                        .collect(),
                };
                if pinned_value[v] != u32::MAX {
                    if base.contains(&pinned_value[v]) {
                        vec![pinned_value[v]]
                    } else {
                        Vec::new()
                    }
                } else {
                    base
                }
            })
            .collect();

        HomSearch {
            a,
            b_index: b.index(),
            order,
            position_of,
            checks,
            candidates,
        }
    }

    /// Runs the search, invoking `visit` on every homomorphism found
    /// (as a full assignment indexed by `a`'s elements). `visit` may stop
    /// the enumeration early by returning `ControlFlow::Break(())`.
    pub fn for_each(&self, mut visit: impl FnMut(&[u32]) -> ControlFlow<()>) {
        let n = self.a.universe_size();
        if n == 0 {
            // The empty map is the unique homomorphism.
            let _ = visit(&[]);
            return;
        }
        let mut assignment = vec![u32::MAX; n];
        let _ = self.descend(0, &mut assignment, &mut visit);
    }

    fn descend(
        &self,
        pos: usize,
        assignment: &mut Vec<u32>,
        visit: &mut impl FnMut(&[u32]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if pos == self.order.len() {
            return visit(assignment);
        }
        let v = self.order[pos] as usize;
        let mut image = Vec::new();
        for &candidate in &self.candidates[v] {
            assignment[v] = candidate;
            let mut ok = true;
            for (rel, tuple) in &self.checks[pos] {
                image.clear();
                image.extend(tuple.iter().map(|&e| assignment[e as usize]));
                if !self.b_index.has_tuple(*rel, &image) {
                    ok = false;
                    break;
                }
            }
            if ok {
                self.descend(pos + 1, assignment, visit)?;
            }
        }
        assignment[v] = u32::MAX;
        ControlFlow::Continue(())
    }

    /// The static search order (pinned elements first).
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Position of an element in the search order.
    pub fn position_of(&self, element: u32) -> usize {
        self.position_of[element as usize]
    }
}

/// Whether a homomorphism from `a` to `b` exists.
pub fn homomorphism_exists(a: &Structure, b: &Structure) -> bool {
    homomorphism_exists_pinned(a, b, &[])
}

/// Whether a homomorphism from `a` to `b` extending `pins` exists.
pub fn homomorphism_exists_pinned(a: &Structure, b: &Structure, pins: &[(u32, u32)]) -> bool {
    find_homomorphism_pinned(a, b, pins).is_some()
}

/// Finds some homomorphism from `a` to `b`, if any.
pub fn find_homomorphism(a: &Structure, b: &Structure) -> Option<Vec<u32>> {
    find_homomorphism_pinned(a, b, &[])
}

/// Finds some homomorphism from `a` to `b` extending `pins`, if any.
pub fn find_homomorphism_pinned(
    a: &Structure,
    b: &Structure,
    pins: &[(u32, u32)],
) -> Option<Vec<u32>> {
    let search = HomSearch::new(a, b, pins);
    let mut found = None;
    search.for_each(|h| {
        found = Some(h.to_vec());
        ControlFlow::Break(())
    });
    found
}

/// Counts all homomorphisms from `a` to `b` (exponential in |A| in the
/// worst case; used as ground truth and on parameter-sized structures).
pub fn count_homomorphisms(a: &Structure, b: &Structure) -> Natural {
    count_homomorphisms_pinned(a, b, &[])
}

/// Counts homomorphisms from `a` to `b` extending `pins`.
pub fn count_homomorphisms_pinned(a: &Structure, b: &Structure, pins: &[(u32, u32)]) -> Natural {
    let search = HomSearch::new(a, b, pins);
    let mut count = Natural::zero();
    let one = Natural::one();
    search.for_each(|_| {
        count += &one;
        ControlFlow::Continue(())
    });
    count
}

/// Checks whether `h` (indexed by `a`'s universe) is a homomorphism.
pub fn is_homomorphism(a: &Structure, b: &Structure, h: &[u32]) -> bool {
    if h.len() != a.universe_size() {
        return false;
    }
    if h.iter().any(|&y| y as usize >= b.universe_size()) {
        return false;
    }
    let idx = b.index();
    for (rel, _, _) in a.signature().iter() {
        for tuple in a.relation(rel).tuples() {
            let image: Vec<u32> = tuple.iter().map(|&e| h[e as usize]).collect();
            if !idx.has_tuple(rel, &image) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Signature;

    fn digraph(n: usize, edges: &[(u32, u32)]) -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, n);
        for &(u, v) in edges {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    /// Directed path 0 → 1 → … → n−1.
    fn dipath(n: usize) -> Structure {
        digraph(
            n,
            &(1..n).map(|i| (i as u32 - 1, i as u32)).collect::<Vec<_>>(),
        )
    }

    /// Directed cycle 0 → 1 → … → n−1 → 0.
    fn dicycle(n: usize) -> Structure {
        let mut edges: Vec<(u32, u32)> = (1..n).map(|i| (i as u32 - 1, i as u32)).collect();
        edges.push((n as u32 - 1, 0));
        digraph(n, &edges)
    }

    #[test]
    fn path_maps_into_cycle_but_not_conversely() {
        let p3 = dipath(3);
        let c3 = dicycle(3);
        assert!(homomorphism_exists(&p3, &c3));
        // C3 → P3 would need to wrap around: impossible.
        assert!(!homomorphism_exists(&c3, &p3));
    }

    #[test]
    fn cycle_lengths_and_hom_existence() {
        // C6 → C3 (wind twice); C3 → C6 impossible; C4 → C4 identity.
        assert!(homomorphism_exists(&dicycle(6), &dicycle(3)));
        assert!(!homomorphism_exists(&dicycle(3), &dicycle(6)));
        assert!(homomorphism_exists(&dicycle(4), &dicycle(4)));
    }

    #[test]
    fn hom_found_is_valid() {
        let a = dipath(4);
        let b = dicycle(5);
        let h = find_homomorphism(&a, &b).unwrap();
        assert!(is_homomorphism(&a, &b, &h));
    }

    #[test]
    fn counting_homs_path_into_loopless_edge() {
        // Hom(P2 as single edge, single edge 0→1): exactly one.
        let edge = digraph(2, &[(0, 1)]);
        assert_eq!(count_homomorphisms(&edge, &edge).to_u64(), Some(1));
        // Hom(single edge, complete loopless digraph on 3): 6 ordered pairs.
        let k3 = digraph(3, &[(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]);
        assert_eq!(count_homomorphisms(&edge, &k3).to_u64(), Some(6));
    }

    #[test]
    fn counting_matches_walk_counting() {
        // Homs from directed path with k edges into a digraph = number of
        // directed walks of length k. For the 2-cycle 0⇄1: 2 walks of any
        // length.
        let two_cycle = digraph(2, &[(0, 1), (1, 0)]);
        for k in 1..5 {
            let p = dipath(k + 1);
            assert_eq!(
                count_homomorphisms(&p, &two_cycle).to_u64(),
                Some(2),
                "walks of length {k}"
            );
        }
    }

    #[test]
    fn pinned_search_respects_pins() {
        let p2 = dipath(2);
        let c4 = dicycle(4);
        // Pinning 0 ↦ 2 forces 1 ↦ 3.
        let h = find_homomorphism_pinned(&p2, &c4, &[(0, 2)]).unwrap();
        assert_eq!(h, vec![2, 3]);
        // Contradiction with edge direction: 0 ↦ 2 and 1 ↦ 1 impossible.
        assert!(!homomorphism_exists_pinned(&p2, &c4, &[(0, 2), (1, 1)]));
    }

    #[test]
    fn empty_source_has_exactly_one_hom() {
        let empty = digraph(0, &[]);
        let b = dicycle(3);
        assert_eq!(count_homomorphisms(&empty, &b).to_u64(), Some(1));
        assert!(homomorphism_exists(&empty, &b));
    }

    #[test]
    fn empty_target_kills_nonempty_source() {
        let a = dipath(2);
        let empty = digraph(0, &[]);
        assert!(!homomorphism_exists(&a, &empty));
        assert_eq!(count_homomorphisms(&a, &empty).to_u64(), Some(0));
    }

    #[test]
    fn isolated_vertices_multiply_counts() {
        // A = single edge + isolated vertex; B = 2-cycle.
        let mut a = digraph(3, &[(0, 1)]);
        a.add_tuple_named("E", &[0, 1]); // idempotent
        let b = digraph(2, &[(0, 1), (1, 0)]);
        // Edge has 2 images, isolated vertex has 2 → total 4.
        assert_eq!(count_homomorphisms(&a, &b).to_u64(), Some(4));
    }

    #[test]
    fn unary_pruning_does_not_lose_solutions() {
        // Structure with a unary relation restricting images.
        let sig = Signature::from_symbols([("E", 2), ("P", 1)]);
        let mut a = Structure::new(sig.clone(), 2);
        a.add_tuple_named("E", &[0, 1]);
        a.add_tuple_named("P", &[1]);
        let mut b = Structure::new(sig, 3);
        b.add_tuple_named("E", &[0, 1]);
        b.add_tuple_named("E", &[0, 2]);
        b.add_tuple_named("P", &[2]);
        // Only 0↦0, 1↦2 works.
        assert_eq!(count_homomorphisms(&a, &b).to_u64(), Some(1));
        let h = find_homomorphism(&a, &b).unwrap();
        assert_eq!(h, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "equal signatures")]
    fn signature_mismatch_panics() {
        let a = digraph(1, &[]);
        let sig = Signature::from_symbols([("F", 2)]);
        let b = Structure::new(sig, 1);
        let _ = homomorphism_exists(&a, &b);
    }
}
