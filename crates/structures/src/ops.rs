//! Structure operations used by the paper's proofs.
//!
//! * **Direct (categorical) products** — Example 4.3 uses
//!   `|ψ(D₁ × D₂)| = |ψ(D₁)| · |ψ(D₂)|` for pp-formulas ψ; the oracle
//!   reductions query counts on **B** × **C**^ℓ.
//! * **Disjoint unions and one-point paddings** — the proof of Theorem 5.9
//!   pads a structure to **B** + k·**I** (k disjoint copies of the
//!   one-point structure I_τ) to force every pp-formula satisfiable.
//! * **Augmentation** — aug(A, S) expands the vocabulary with a fresh unary
//!   singleton relation `R_a = {a}` per distinguished element `a ∈ S`,
//!   pinning those elements under homomorphisms (Section 2.1).

use crate::structure::{Signature, Structure};

/// The direct (categorical) product **A** × **B**: universe `A × B` with
/// `((a₁,b₁),…,(aₖ,bₖ)) ∈ R` iff the component tuples are in `R^A` and
/// `R^B`. Element `(i, j)` is encoded as `i · |B| + j` (see [`pair_index`]).
///
/// # Panics
/// Panics if the signatures differ.
pub fn direct_product(a: &Structure, b: &Structure) -> Structure {
    assert_eq!(
        a.signature(),
        b.signature(),
        "product of different signatures"
    );
    let bn = b.universe_size();
    let mut p = Structure::new(a.signature().clone(), a.universe_size() * bn);
    let mut tuple = Vec::new();
    for (rel, _, _) in a.signature().iter() {
        for ta in a.relation(rel).tuples() {
            for tb in b.relation(rel).tuples() {
                tuple.clear();
                tuple.extend(
                    ta.iter()
                        .zip(tb.iter())
                        .map(|(&x, &y)| pair_index(bn, x, y)),
                );
                p.add_tuple(rel, &tuple);
            }
        }
    }
    p
}

/// Encodes product element `(i, j)` for a right factor of size `b_size`.
pub fn pair_index(b_size: usize, i: u32, j: u32) -> u32 {
    i * b_size as u32 + j
}

/// Decodes a product element into `(i, j)`.
pub fn unpair_index(b_size: usize, e: u32) -> (u32, u32) {
    (e / b_size as u32, e % b_size as u32)
}

/// The k-th categorical power `A^k`. `A^0` is the one-point structure I_τ
/// (the terminal object), `A^1` is a copy of `A`.
pub fn power(a: &Structure, k: usize) -> Structure {
    let mut acc = one_point(a.signature().clone());
    for _ in 0..k {
        acc = direct_product(&acc, a);
    }
    acc
}

/// The one-point structure I_τ: universe `{0}` and every relation holding
/// the all-zero tuple (Section 2.1 of the paper).
pub fn one_point(signature: Signature) -> Structure {
    let mut s = Structure::new(signature.clone(), 1);
    for (rel, _, arity) in signature.iter() {
        s.add_tuple(rel, &vec![0; arity]);
    }
    s
}

/// The disjoint union **A** + **B** (B's elements shifted by |A|).
///
/// # Panics
/// Panics if the signatures differ.
pub fn disjoint_union(a: &Structure, b: &Structure) -> Structure {
    assert_eq!(
        a.signature(),
        b.signature(),
        "union of different signatures"
    );
    let shift = a.universe_size() as u32;
    let mut u = Structure::new(a.signature().clone(), a.universe_size() + b.universe_size());
    let mut tuple = Vec::new();
    for (rel, _, _) in a.signature().iter() {
        for t in a.relation(rel).tuples() {
            u.add_tuple(rel, t);
        }
        for t in b.relation(rel).tuples() {
            tuple.clear();
            tuple.extend(t.iter().map(|&e| e + shift));
            u.add_tuple(rel, &tuple);
        }
    }
    u
}

/// `B + k·I`: `b` padded with `k` disjoint copies of the one-point
/// structure (the construction in the proof of Theorem 5.9). For `k > 0`,
/// every pp-formula over the signature is satisfiable on the result.
pub fn add_units(b: &Structure, k: usize) -> Structure {
    let unit = one_point(b.signature().clone());
    let mut acc = b.clone();
    for _ in 0..k {
        acc = disjoint_union(&acc, &unit);
    }
    acc
}

/// Prefix used for the pinning relations added by [`augment`].
pub const PIN_PREFIX: &str = "@pin";

/// The augmented structure aug(A, S): the vocabulary gains a fresh unary
/// symbol `@pin{i}` for the i-th element of `pinned` (in the given order),
/// interpreted as the singleton `{pinned[i]}`.
///
/// Two augmented structures are comparable when built with *corresponding*
/// pinned orders — the logic layer orders pins by liberal-variable name so
/// positions line up.
pub fn augment(a: &Structure, pinned: &[u32]) -> Structure {
    let mut sig = a.signature().clone();
    let pin_ids: Vec<_> = pinned
        .iter()
        .enumerate()
        .map(|(i, _)| sig.add_symbol(format!("{PIN_PREFIX}{i}"), 1))
        .collect();
    let mut out = Structure::new(sig, a.universe_size());
    for (rel, _, _) in a.signature().iter() {
        for t in a.relation(rel).tuples() {
            out.add_tuple(rel, t);
        }
    }
    for (i, &e) in pinned.iter().enumerate() {
        out.add_tuple(pin_ids[i], &[e]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::{count_homomorphisms, homomorphism_exists};
    use crate::structure::Signature;

    fn digraph(n: usize, edges: &[(u32, u32)]) -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, n);
        for &(u, v) in edges {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    #[test]
    fn product_universe_and_tuples() {
        let a = digraph(2, &[(0, 1)]);
        let b = digraph(3, &[(0, 1), (1, 2)]);
        let p = direct_product(&a, &b);
        assert_eq!(p.universe_size(), 6);
        // (0,0)-(1,1) and (0,1)-(1,2).
        assert_eq!(p.tuple_count(), 2);
        let e = p.signature().lookup("E").unwrap();
        assert!(p.has_tuple(e, &[pair_index(3, 0, 0), pair_index(3, 1, 1)]));
        assert!(p.has_tuple(e, &[pair_index(3, 0, 1), pair_index(3, 1, 2)]));
    }

    #[test]
    fn pairing_roundtrip() {
        for i in 0..5u32 {
            for j in 0..7u32 {
                assert_eq!(unpair_index(7, pair_index(7, i, j)), (i, j));
            }
        }
    }

    #[test]
    fn hom_counts_multiply_over_products() {
        // |Hom(A, B×C)| = |Hom(A,B)| · |Hom(A,C)| (universal property).
        let a = digraph(2, &[(0, 1)]);
        let b = digraph(2, &[(0, 1), (1, 0)]);
        let c = digraph(3, &[(0, 1), (1, 2), (2, 0)]);
        let bc = direct_product(&b, &c);
        let lhs = count_homomorphisms(&a, &bc);
        let rhs = count_homomorphisms(&a, &b) * count_homomorphisms(&a, &c);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn power_zero_is_one_point() {
        let a = digraph(3, &[(0, 1)]);
        let p0 = power(&a, 0);
        assert_eq!(p0.universe_size(), 1);
        let e = p0.signature().lookup("E").unwrap();
        assert!(p0.has_tuple(e, &[0, 0]));
        assert_eq!(power(&a, 1).universe_size(), 3);
        assert_eq!(power(&a, 2).universe_size(), 9);
    }

    #[test]
    fn every_structure_maps_into_one_point() {
        let a = digraph(4, &[(0, 1), (1, 2), (3, 3)]);
        let i = one_point(a.signature().clone());
        assert!(homomorphism_exists(&a, &i));
    }

    #[test]
    fn disjoint_union_shifts_and_preserves() {
        let a = digraph(2, &[(0, 1)]);
        let b = digraph(2, &[(1, 0)]);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.universe_size(), 4);
        let e = u.signature().lookup("E").unwrap();
        assert!(u.has_tuple(e, &[0, 1]));
        assert!(u.has_tuple(e, &[3, 2]));
        assert_eq!(u.tuple_count(), 2);
    }

    #[test]
    fn add_units_makes_everything_satisfiable() {
        // An E-empty structure has no hom from an edge; B + I does.
        let edge = digraph(2, &[(0, 1)]);
        let empty = digraph(3, &[]);
        assert!(!homomorphism_exists(&edge, &empty));
        let padded = add_units(&empty, 1);
        assert_eq!(padded.universe_size(), 4);
        assert!(homomorphism_exists(&edge, &padded));
    }

    #[test]
    fn augment_pins_elements_under_homs() {
        // P2 with endpoint 0 pinned: a hom of the augmented structure into
        // itself must fix 0.
        let p = digraph(3, &[(0, 1), (1, 2)]);
        let aug = augment(&p, &[0]);
        assert_eq!(aug.signature().len(), 2);
        let pin = aug.signature().lookup("@pin0").unwrap();
        assert!(aug.has_tuple(pin, &[0]));
        // A hom aug → aug must map 0 to 0 (the only @pin0 witness).
        let homs = count_homomorphisms(&aug, &aug);
        // Homs of P3 fixing 0: identity and the "fold" 0,1,2 → 0,1,0? No:
        // (1,2) must map to an edge from h(1)=1, so h(2) = 2. Identity only.
        assert_eq!(homs.to_u64(), Some(1));
    }

    #[test]
    fn union_product_count_laws() {
        // |Hom(A, B + C)| for connected A with at least one tuple is
        // |Hom(A,B)| + |Hom(A,C)|.
        let a = digraph(2, &[(0, 1)]);
        let b = digraph(2, &[(0, 1), (1, 0)]);
        let c = digraph(3, &[(0, 1), (1, 2)]);
        let u = disjoint_union(&b, &c);
        let lhs = count_homomorphisms(&a, &u);
        let rhs = count_homomorphisms(&a, &b) + count_homomorphisms(&a, &c);
        assert_eq!(lhs, rhs);
    }
}
