//! A small text format for structures, inverse to the `Display`
//! implementation on [`Structure`].
//!
//! ```text
//! structure {
//!   universe 4
//!   E = { (0,1), (1,2), (2,3), (3,3) }
//!   P/1 = { }
//! }
//! ```
//!
//! The signature is inferred from the relation clauses in order of
//! appearance; arities come from the first tuple, or from an explicit
//! `/arity` suffix (required for empty relations).

use crate::structure::{Signature, Structure};
use std::fmt;

/// Error from [`parse_structure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description with offset context.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "structure parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor { text, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let mut message = message.into();
        let rest: String = self.text[self.pos..].chars().take(20).collect();
        message.push_str(&format!(" (at offset {}, near {rest:?})", self.pos));
        ParseError { message }
    }

    fn skip_ws(&mut self) {
        let bytes = self.text.as_bytes();
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b'#' => {
                    while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.text[self.pos..].chars().next()
    }

    fn eat(&mut self, token: &str) -> Result<(), ParseError> {
        self.skip_ws();
        if self.text[self.pos..].starts_with(token) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.error(format!("expected {token:?}")))
        }
    }

    fn try_eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn number(&mut self) -> Result<u32, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.text.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        self.text[start..self.pos]
            .parse()
            .map_err(|_| self.error("number out of range"))
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.text.as_bytes();
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphanumeric()
                || bytes[self.pos] == b'_'
                || bytes[self.pos] == b'@')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected an identifier"));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.text.len()
    }
}

/// Parses a structure from the text format, inferring the signature.
pub fn parse_structure(text: &str) -> Result<Structure, ParseError> {
    let mut c = Cursor::new(text);
    let s = parse_one(&mut c)?;
    if !c.at_end() {
        return Err(c.error("trailing input after structure"));
    }
    Ok(s)
}

/// Parses one or more consecutive `structure { … }` blocks — the batch
/// input format of `epq count --batch` (one count per block, order
/// preserved). At least one block is required.
pub fn parse_structures(text: &str) -> Result<Vec<Structure>, ParseError> {
    let mut c = Cursor::new(text);
    let mut out = vec![parse_one(&mut c)?];
    while !c.at_end() {
        out.push(parse_one(&mut c)?);
    }
    Ok(out)
}

fn parse_one(c: &mut Cursor) -> Result<Structure, ParseError> {
    c.eat("structure")?;
    c.eat("{")?;
    c.eat("universe")?;
    let universe = c.number()? as usize;

    // First pass: gather relation clauses.
    struct Clause {
        name: String,
        declared_arity: Option<usize>,
        tuples: Vec<Vec<u32>>,
    }
    let mut clauses: Vec<Clause> = Vec::new();
    loop {
        if c.try_eat("}") {
            break;
        }
        let name = c.identifier()?;
        let declared_arity = if c.try_eat("/") {
            Some(c.number()? as usize)
        } else {
            None
        };
        c.eat("=")?;
        c.eat("{")?;
        let mut tuples = Vec::new();
        loop {
            if c.try_eat("}") {
                break;
            }
            c.eat("(")?;
            let mut tuple = vec![c.number()?];
            while c.try_eat(",") {
                tuple.push(c.number()?);
            }
            c.eat(")")?;
            tuples.push(tuple);
            if c.peek() == Some(',') {
                c.eat(",")?;
            }
        }
        clauses.push(Clause {
            name,
            declared_arity,
            tuples,
        });
    }

    // Build the signature.
    let mut sig = Signature::new();
    for clause in &clauses {
        let arity = match (clause.declared_arity, clause.tuples.first()) {
            (Some(a), _) => a,
            (None, Some(t)) => t.len(),
            (None, None) => {
                return Err(ParseError {
                    message: format!(
                        "relation {} is empty; declare its arity as {}/k",
                        clause.name, clause.name
                    ),
                })
            }
        };
        sig.add_symbol(clause.name.clone(), arity);
    }
    let mut s = Structure::new(sig, universe);
    for clause in &clauses {
        let rel = s.signature().lookup(&clause.name).expect("just added");
        let arity = s.signature().arity(rel);
        for tuple in &clause.tuples {
            if tuple.len() != arity {
                return Err(ParseError {
                    message: format!(
                        "relation {} has mixed arities ({} vs {})",
                        clause.name,
                        arity,
                        tuple.len()
                    ),
                });
            }
            for &e in tuple {
                if e as usize >= universe {
                    return Err(ParseError {
                        message: format!("element {e} outside universe of size {universe}"),
                    });
                }
            }
            s.add_tuple(rel, tuple);
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_example_4_3_structure() {
        // The paper's Example 4.3 structure C (0-based here).
        let c = parse_structure(
            "structure {
               universe 4
               E = { (0,1), (1,2), (2,3), (3,3) }
             }",
        )
        .unwrap();
        assert_eq!(c.universe_size(), 4);
        assert_eq!(c.tuple_count(), 4);
        let e = c.signature().lookup("E").unwrap();
        assert!(c.has_tuple(e, &[3, 3]));
    }

    #[test]
    fn display_parse_roundtrip() {
        let s =
            parse_structure("structure { universe 3 E = { (0,1), (1,2) } P/1 = { (2) } }").unwrap();
        let reparsed = parse_structure(&s.to_string()).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn empty_relation_needs_declared_arity() {
        assert!(parse_structure("structure { universe 2 E = { } }").is_err());
        let s = parse_structure("structure { universe 2 E/2 = { } }").unwrap();
        assert_eq!(s.signature().arity(s.signature().lookup("E").unwrap()), 2);
        assert_eq!(s.tuple_count(), 0);
    }

    #[test]
    fn comments_and_whitespace() {
        let s = parse_structure(
            "structure {   # a structure
               universe 2  # with comments
               E = { (0,1) }
             }",
        )
        .unwrap();
        assert_eq!(s.tuple_count(), 1);
    }

    #[test]
    fn rejects_out_of_range_elements() {
        let err = parse_structure("structure { universe 2 E = { (0,5) } }").unwrap_err();
        assert!(err.message.contains("outside universe"));
    }

    #[test]
    fn rejects_mixed_arity() {
        let err = parse_structure("structure { universe 3 E = { (0,1), (0,1,2) } }").unwrap_err();
        assert!(err.message.contains("mixed arities"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_structure("structure { universe 1 } extra").is_err());
        // A second block is trailing garbage for the single-structure
        // entry point, but valid batch input.
        let two = "structure { universe 1 E = { (0,0) } } structure { universe 2 E/2 = { } }";
        assert!(parse_structure(two).is_err());
        assert_eq!(parse_structures(two).unwrap().len(), 2);
    }

    #[test]
    fn batch_parsing_preserves_order_and_reports_errors() {
        let batch = parse_structures(
            "structure { universe 2 E = { (0,1) } }  # first
             structure { universe 3 E = { (0,1), (1,2) } }
             structure { universe 1 E/2 = { } }",
        )
        .unwrap();
        assert_eq!(
            batch.iter().map(|s| s.universe_size()).collect::<Vec<_>>(),
            vec![2, 3, 1]
        );
        assert!(parse_structures("").is_err());
        assert!(parse_structures("structure { universe 1 } junk").is_err());
    }
}
