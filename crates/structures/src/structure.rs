//! Signatures and finite relational structures.

use epq_graph::Graph;
use std::collections::HashSet;
use std::fmt;

/// Identifier of a relation symbol within a [`Signature`] (its index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub u32);

/// A relational signature: a list of relation symbols with arities.
///
/// The paper's vocabularies contain only relation symbols (no constants or
/// function symbols); every arity is at least 1.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Signature {
    symbols: Vec<(String, usize)>,
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Self {
        Signature::default()
    }

    /// Builds a signature from `(name, arity)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate names or zero arities.
    pub fn from_symbols<I, S>(symbols: I) -> Self
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let mut sig = Signature::new();
        for (name, arity) in symbols {
            sig.add_symbol(name.into(), arity);
        }
        sig
    }

    /// Adds a relation symbol, returning its [`RelId`].
    ///
    /// # Panics
    /// Panics on duplicate names or zero arity.
    pub fn add_symbol(&mut self, name: impl Into<String>, arity: usize) -> RelId {
        let name = name.into();
        assert!(arity >= 1, "relation symbols must have arity >= 1");
        assert!(
            self.lookup(&name).is_none(),
            "duplicate relation symbol {name:?}"
        );
        self.symbols.push((name, arity));
        RelId(self.symbols.len() as u32 - 1)
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether there are no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Finds a symbol by name.
    pub fn lookup(&self, name: &str) -> Option<RelId> {
        self.symbols
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| RelId(i as u32))
    }

    /// Name of a symbol.
    pub fn name(&self, rel: RelId) -> &str {
        &self.symbols[rel.0 as usize].0
    }

    /// Arity of a symbol.
    pub fn arity(&self, rel: RelId) -> usize {
        self.symbols[rel.0 as usize].1
    }

    /// The largest arity (0 for the empty signature).
    pub fn max_arity(&self) -> usize {
        self.symbols.iter().map(|&(_, a)| a).max().unwrap_or(0)
    }

    /// Iterator over `(RelId, name, arity)`.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &str, usize)> {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, (n, a))| (RelId(i as u32), n.as_str(), *a))
    }
}

/// One relation instance: an `arity`-strided, sorted, deduplicated tuple
/// store.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Relation {
    arity: usize,
    /// Flattened tuples (length = arity × tuple count), sorted as tuples.
    data: Vec<u32>,
}

impl Relation {
    fn new(arity: usize) -> Self {
        Relation {
            arity,
            data: Vec::new(),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterator over tuples (as slices).
    pub fn tuples(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.data.chunks_exact(self.arity)
    }

    /// Binary search for a tuple.
    pub fn contains(&self, tuple: &[u32]) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        self.data
            .chunks_exact(self.arity)
            .collect::<Vec<_>>()
            .binary_search(&tuple)
            .is_ok()
    }

    fn insert(&mut self, tuple: &[u32]) {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        let mut tuples: Vec<&[u32]> = self.data.chunks_exact(self.arity).collect();
        match tuples.binary_search(&tuple) {
            Ok(_) => {}
            Err(pos) => {
                tuples.insert(pos, tuple);
                self.data = tuples.concat();
            }
        }
    }
}

/// A finite relational structure: a universe `{0, …, n−1}` plus one
/// [`Relation`] per signature symbol.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Structure {
    signature: Signature,
    universe_size: usize,
    relations: Vec<Relation>,
}

impl Structure {
    /// An empty structure over `signature` with the given universe size.
    pub fn new(signature: Signature, universe_size: usize) -> Self {
        let relations = signature
            .iter()
            .map(|(_, _, arity)| Relation::new(arity))
            .collect();
        Structure {
            signature,
            universe_size,
            relations,
        }
    }

    /// The signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Universe size.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Iterator over the universe elements `0..n`.
    pub fn universe(&self) -> impl Iterator<Item = u32> {
        0..self.universe_size as u32
    }

    /// The relation of `rel`.
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.relations[rel.0 as usize]
    }

    /// Adds a tuple to `rel`'s relation (idempotent).
    ///
    /// # Panics
    /// Panics if elements are out of range or the arity mismatches.
    pub fn add_tuple(&mut self, rel: RelId, tuple: &[u32]) {
        for &e in tuple {
            assert!(
                (e as usize) < self.universe_size,
                "element {e} outside universe of size {}",
                self.universe_size
            );
        }
        self.relations[rel.0 as usize].insert(tuple);
    }

    /// Adds a tuple by relation name.
    pub fn add_tuple_named(&mut self, name: &str, tuple: &[u32]) {
        let rel = self
            .signature
            .lookup(name)
            .unwrap_or_else(|| panic!("unknown relation {name:?}"));
        self.add_tuple(rel, tuple);
    }

    /// Whether `tuple` belongs to `rel`'s relation.
    pub fn has_tuple(&self, rel: RelId, tuple: &[u32]) -> bool {
        self.relations[rel.0 as usize].contains(tuple)
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// The Gaifman graph: vertices are universe elements, with an edge
    /// between two distinct elements that co-occur in some tuple.
    ///
    /// This is the "graph of a pp-formula" from the paper (Section 2.1)
    /// when the structure is a query structure.
    pub fn gaifman_graph(&self) -> Graph {
        let mut g = Graph::new(self.universe_size);
        for rel in &self.relations {
            for tuple in rel.tuples() {
                for (i, &a) in tuple.iter().enumerate() {
                    for &b in &tuple[i + 1..] {
                        if a != b {
                            g.add_edge(a, b);
                        }
                    }
                }
            }
        }
        g
    }

    /// The substructure induced by `elements` (which may be unsorted but
    /// must be duplicate-free); also returns the map from new index to old
    /// element.
    pub fn induced_substructure(&self, elements: &[u32]) -> (Structure, Vec<u32>) {
        let mut index_of = vec![u32::MAX; self.universe_size];
        for (new, &old) in elements.iter().enumerate() {
            assert!(
                index_of[old as usize] == u32::MAX,
                "duplicate element {old} in induced_substructure"
            );
            index_of[old as usize] = new as u32;
        }
        let mut sub = Structure::new(self.signature.clone(), elements.len());
        let mut scratch = Vec::new();
        for (rel, _, _) in self.signature.iter() {
            for tuple in self.relation(rel).tuples() {
                scratch.clear();
                if tuple.iter().all(|&e| index_of[e as usize] != u32::MAX) {
                    scratch.extend(tuple.iter().map(|&e| index_of[e as usize]));
                    sub.add_tuple(rel, &scratch);
                }
            }
        }
        (sub, elements.to_vec())
    }

    /// Builds per-relation hash indexes for fast membership checks during
    /// homomorphism search.
    pub fn index(&self) -> StructureIndex {
        StructureIndex {
            sets: self
                .relations
                .iter()
                .map(|r| r.tuples().map(|t| t.to_vec()).collect())
                .collect(),
        }
    }
}

/// Hash-based tuple membership index for a [`Structure`].
pub struct StructureIndex {
    sets: Vec<HashSet<Vec<u32>>>,
}

impl StructureIndex {
    /// Whether `tuple` is in relation `rel`.
    pub fn has_tuple(&self, rel: RelId, tuple: &[u32]) -> bool {
        self.sets[rel.0 as usize].contains(tuple)
    }
}

impl fmt::Debug for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "structure {{")?;
        writeln!(f, "  universe {}", self.universe_size)?;
        for (rel, name, _) in self.signature.iter() {
            write!(f, "  {} = {{", name)?;
            let mut first = true;
            for tuple in self.relation(rel).tuples() {
                if !first {
                    write!(f, ",")?;
                }
                first = false;
                write!(f, " (")?;
                for (i, e) in tuple.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")?;
            }
            writeln!(f, " }}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digraph_sig() -> Signature {
        Signature::from_symbols([("E", 2)])
    }

    #[test]
    fn signature_lookup_and_arity() {
        let sig = Signature::from_symbols([("E", 2), ("F", 3)]);
        assert_eq!(sig.lookup("E"), Some(RelId(0)));
        assert_eq!(sig.lookup("F"), Some(RelId(1)));
        assert_eq!(sig.lookup("G"), None);
        assert_eq!(sig.arity(RelId(1)), 3);
        assert_eq!(sig.max_arity(), 3);
        assert_eq!(sig.name(RelId(0)), "E");
    }

    #[test]
    #[should_panic(expected = "duplicate relation symbol")]
    fn duplicate_symbol_panics() {
        Signature::from_symbols([("E", 2), ("E", 2)]);
    }

    #[test]
    #[should_panic(expected = "arity >= 1")]
    fn zero_arity_panics() {
        Signature::from_symbols([("E", 0)]);
    }

    #[test]
    fn tuples_are_sorted_and_deduped() {
        let mut s = Structure::new(digraph_sig(), 3);
        let e = RelId(0);
        s.add_tuple(e, &[2, 1]);
        s.add_tuple(e, &[0, 1]);
        s.add_tuple(e, &[2, 1]);
        let tuples: Vec<Vec<u32>> = s.relation(e).tuples().map(|t| t.to_vec()).collect();
        assert_eq!(tuples, vec![vec![0, 1], vec![2, 1]]);
        assert!(s.has_tuple(e, &[2, 1]));
        assert!(!s.has_tuple(e, &[1, 2]));
        assert_eq!(s.tuple_count(), 2);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_range_tuple_panics() {
        let mut s = Structure::new(digraph_sig(), 2);
        s.add_tuple(RelId(0), &[0, 5]);
    }

    #[test]
    fn gaifman_graph_of_ternary_tuple() {
        let sig = Signature::from_symbols([("T", 3)]);
        let mut s = Structure::new(sig, 4);
        s.add_tuple(RelId(0), &[0, 1, 2]);
        let g = s.gaifman_graph();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn gaifman_ignores_repeated_elements() {
        let mut s = Structure::new(digraph_sig(), 2);
        s.add_tuple(RelId(0), &[1, 1]);
        assert_eq!(s.gaifman_graph().edge_count(), 0);
    }

    #[test]
    fn induced_substructure_filters_tuples() {
        let mut s = Structure::new(digraph_sig(), 4);
        let e = RelId(0);
        s.add_tuple(e, &[0, 1]);
        s.add_tuple(e, &[1, 2]);
        s.add_tuple(e, &[2, 3]);
        let (sub, map) = s.induced_substructure(&[1, 2]);
        assert_eq!(map, vec![1, 2]);
        assert_eq!(sub.universe_size(), 2);
        // Only (1,2) survives, renamed to (0,1).
        assert!(sub.has_tuple(e, &[0, 1]));
        assert_eq!(sub.tuple_count(), 1);
    }

    #[test]
    fn display_format() {
        let mut s = Structure::new(digraph_sig(), 2);
        s.add_tuple(RelId(0), &[0, 1]);
        let shown = s.to_string();
        assert!(shown.contains("universe 2"));
        assert!(shown.contains("E = { (0,1) }"));
    }

    #[test]
    fn index_membership() {
        let mut s = Structure::new(digraph_sig(), 3);
        s.add_tuple(RelId(0), &[0, 1]);
        let idx = s.index();
        assert!(idx.has_tuple(RelId(0), &[0, 1]));
        assert!(!idx.has_tuple(RelId(0), &[1, 0]));
    }
}
