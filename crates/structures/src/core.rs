//! Cores and homomorphic equivalence.
//!
//! A structure is a *core* if it is not homomorphically equivalent to a
//! proper substructure of itself; every finite structure has a core, unique
//! up to isomorphism (Section 2.1 of the paper). Cores of *augmented*
//! structures define the cores of pp-formulas, whose treewidth drives the
//! tractability condition of the trichotomy.

use crate::hom::homomorphism_exists;
use crate::structure::Structure;

/// Whether `a` and `b` are homomorphically equivalent (homomorphisms exist
/// in both directions).
pub fn homomorphically_equivalent(a: &Structure, b: &Structure) -> bool {
    homomorphism_exists(a, b) && homomorphism_exists(b, a)
}

/// Computes a core of `a`, returned together with the map from the core's
/// universe indices to the original elements of `a`.
///
/// Strategy: repeatedly look for an element `v` such that **A** maps
/// homomorphically into **A** restricted to `universe ∖ {v}` (such a map
/// witnesses hom-equivalence with the smaller induced substructure); when
/// no element can be dropped, every endomorphism is surjective and the
/// structure is a core.
pub fn core_of(a: &Structure) -> (Structure, Vec<u32>) {
    let mut current = a.clone();
    // element_of[i] = original element of `a` behind current index i.
    let mut element_of: Vec<u32> = (0..a.universe_size() as u32).collect();
    'outer: loop {
        let n = current.universe_size();
        for drop in 0..n as u32 {
            let rest: Vec<u32> = (0..n as u32).filter(|&v| v != drop).collect();
            let (candidate, map) = current.induced_substructure(&rest);
            if homomorphism_exists(&current, &candidate) {
                element_of = map.iter().map(|&m| element_of[m as usize]).collect();
                current = candidate;
                continue 'outer;
            }
        }
        return (current, element_of);
    }
}

/// Whether `a` is a core (no proper retract).
pub fn is_core(a: &Structure) -> bool {
    let n = a.universe_size();
    for drop in 0..n as u32 {
        let rest: Vec<u32> = (0..n as u32).filter(|&v| v != drop).collect();
        let (candidate, _) = a.induced_substructure(&rest);
        if homomorphism_exists(a, &candidate) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::isomorphic;
    use crate::structure::Signature;

    fn digraph(n: usize, edges: &[(u32, u32)]) -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, n);
        for &(u, v) in edges {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    fn dicycle(n: usize) -> Structure {
        let mut edges: Vec<(u32, u32)> = (1..n).map(|i| (i as u32 - 1, i as u32)).collect();
        edges.push((n as u32 - 1, 0));
        digraph(n, &edges)
    }

    #[test]
    fn directed_cycles_are_cores() {
        for n in [2, 3, 4, 5] {
            assert!(is_core(&dicycle(n)), "C_{n}");
        }
    }

    #[test]
    fn directed_path_cores_to_single_edge_structure() {
        // The core of a directed path is ... itself! Directed paths are
        // cores (no shorter path receives a hom). Verify.
        let p = digraph(3, &[(0, 1), (1, 2)]);
        assert!(is_core(&p));
    }

    #[test]
    fn core_of_two_disjoint_edges_is_one_edge() {
        let two = digraph(4, &[(0, 1), (2, 3)]);
        let (core, map) = core_of(&two);
        assert_eq!(core.universe_size(), 2);
        assert_eq!(core.tuple_count(), 1);
        assert!(is_core(&core));
        // The surviving elements are an original edge.
        let e = two.signature().lookup("E").unwrap();
        assert!(two.has_tuple(e, &[map[0], map[1]]) || two.has_tuple(e, &[map[1], map[0]]));
    }

    #[test]
    fn core_of_c6_with_loopless_vertex_absorbed() {
        // C6 + a pendant vertex hanging off: pendant retracts into the cycle;
        // C6 (directed) is a core, so the core has 6 elements.
        let mut edges: Vec<(u32, u32)> = (1..6).map(|i| (i - 1, i)).collect();
        edges.push((5, 0));
        edges.push((0, 6)); // pendant 6; can retract: 6 ↦ 1
        let g = digraph(7, &edges);
        let (core, _) = core_of(&g);
        assert_eq!(core.universe_size(), 6);
        assert!(isomorphic(&core, &dicycle(6)));
    }

    #[test]
    fn core_with_self_loop_collapses_everything() {
        // A structure with a self-loop absorbs any structure that maps into
        // it; core of (edge + loop vertex reachable) is the loop alone.
        let g = digraph(3, &[(0, 1), (1, 2), (2, 2)]);
        let (core, map) = core_of(&g);
        assert_eq!(core.universe_size(), 1);
        assert_eq!(map, vec![2]);
        let e = core.signature().lookup("E").unwrap();
        assert!(core.has_tuple(e, &[0, 0]));
    }

    #[test]
    fn hom_equivalence_examples() {
        let c3 = dicycle(3);
        let c6 = dicycle(6);
        // C6 → C3 but not back.
        assert!(!homomorphically_equivalent(&c3, &c6));
        // Two disjoint copies of C3 are hom-equivalent to C3.
        let double = {
            let mut edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
            edges.sort_unstable();
            digraph(6, &edges)
        };
        assert!(homomorphically_equivalent(&c3, &double));
        let (core, _) = core_of(&double);
        assert!(isomorphic(&core, &c3));
    }

    #[test]
    fn cores_are_isomorphic_across_equivalent_structures() {
        // Core uniqueness: core(A + core(A)) ≅ core(A).
        let g = digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 3)]);
        let (c1, _) = core_of(&g);
        let doubled = crate::ops::disjoint_union(&g, &c1);
        let (c2, _) = core_of(&doubled);
        assert!(isomorphic(&c1, &c2));
    }

    #[test]
    fn empty_structure_is_core() {
        let e = digraph(0, &[]);
        assert!(is_core(&e));
        let (core, map) = core_of(&e);
        assert_eq!(core.universe_size(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn augmented_core_keeps_pinned_elements() {
        // Aug pins survive coring: pinned elements can only map to
        // themselves, so they are never dropped.
        let g = digraph(4, &[(0, 1), (2, 3)]); // two disjoint edges
        let aug = crate::ops::augment(&g, &[0, 1]);
        let (core, map) = core_of(&aug);
        // Edge (2,3) retracts onto (0,1); pinned 0 and 1 remain.
        assert_eq!(core.universe_size(), 2);
        let mut sorted = map.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }
}
