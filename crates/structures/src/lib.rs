//! # epq-structures — finite relational structures and homomorphisms
//!
//! Substrate crate S3 of the `epq` workspace (see `DESIGN.md`).
//!
//! Chen & Mengel's development lives entirely in the world of finite
//! relational structures: queries are structures via the Chandra–Merlin
//! correspondence, satisfaction is homomorphism extension, logical
//! entailment is a homomorphism between *augmented* structures, counting
//! equivalence is decided through homomorphisms, and the oracle reductions
//! manipulate structures with direct products, powers, disjoint unions, and
//! one-point paddings. This crate provides:
//!
//! * [`Signature`] / [`Structure`] — finite τ-structures, relations stored
//!   as (sorted, deduplicated) lists of tuples, exactly the representation
//!   the paper assumes ("relations … represented as lists of tuples");
//! * [`hom`] — homomorphism existence / search / counting / enumeration with
//!   pinned partial assignments (backtracking with forward pruning);
//! * [`ops`] — direct products **A** × **B**, powers, disjoint unions,
//!   the one-point structure I_τ, the `B + k·I` padding of Theorem 5.9,
//!   and structure augmentation (the `R_a` pinning relations of aug(A, S));
//! * [`core`] — cores, homomorphic equivalence, retract computation;
//! * [`iso`] — isomorphism testing (used to compare cores);
//! * [`parse`] — a small text format for structures, round-tripping with
//!   `Display`;
//! * [`live`] — append-only tuple ingestion ([`LiveStructure`]: dirty
//!   tracking per relation, free snapshots) and the tuple-log format
//!   ([`StreamLog`]) behind the streaming counting layer.

pub mod core;
pub mod hom;
pub mod iso;
pub mod live;
pub mod ops;
pub mod parse;
pub mod structure;

pub use live::{LiveStructure, StreamLog, StreamOp};
pub use structure::{RelId, Signature, Structure};
