//! Structure isomorphism.
//!
//! Used to compare cores: pp-formulas are logically equivalent iff their
//! cores are isomorphic (Theorem 2.3 of the paper).

use crate::structure::Structure;
use std::ops::ControlFlow;

/// Whether `a` and `b` are isomorphic.
///
/// Backtracking search for a bijective homomorphism; since per-relation
/// tuple counts are checked first, a bijective homomorphism is
/// automatically an isomorphism (it maps each relation *onto* the target
/// relation).
pub fn isomorphic(a: &Structure, b: &Structure) -> bool {
    if a.signature() != b.signature() {
        return false;
    }
    if a.universe_size() != b.universe_size() {
        return false;
    }
    for (rel, _, _) in a.signature().iter() {
        if a.relation(rel).len() != b.relation(rel).len() {
            return false;
        }
    }
    // Cheap invariant: multiset of element "degrees" (occurrence counts).
    let mut deg_a = occurrence_profile(a);
    let mut deg_b = occurrence_profile(b);
    deg_a.sort_unstable();
    deg_b.sort_unstable();
    if deg_a != deg_b {
        return false;
    }

    let search = crate::hom::HomSearch::new(a, b, &[]);
    let mut found = false;
    search.for_each(|h| {
        let mut used = vec![false; b.universe_size()];
        let injective = h.iter().all(|&y| {
            if used[y as usize] {
                false
            } else {
                used[y as usize] = true;
                true
            }
        });
        if injective {
            found = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    found
}

/// Per-element total occurrence counts across all relations (an
/// isomorphism invariant).
fn occurrence_profile(s: &Structure) -> Vec<usize> {
    let mut counts = vec![0usize; s.universe_size()];
    for (rel, _, _) in s.signature().iter() {
        for t in s.relation(rel).tuples() {
            for &e in t {
                counts[e as usize] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Signature;

    fn digraph(n: usize, edges: &[(u32, u32)]) -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, n);
        for &(u, v) in edges {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    #[test]
    fn relabeled_cycles_are_isomorphic() {
        let c = digraph(3, &[(0, 1), (1, 2), (2, 0)]);
        let d = digraph(3, &[(1, 0), (0, 2), (2, 1)]);
        assert!(isomorphic(&c, &d));
    }

    #[test]
    fn direction_matters() {
        let path = digraph(3, &[(0, 1), (1, 2)]);
        let inward = digraph(3, &[(0, 1), (2, 1)]);
        assert!(!isomorphic(&path, &inward));
    }

    #[test]
    fn size_and_count_mismatch() {
        assert!(!isomorphic(&digraph(2, &[(0, 1)]), &digraph(3, &[(0, 1)])));
        assert!(!isomorphic(
            &digraph(2, &[(0, 1)]),
            &digraph(2, &[(0, 1), (1, 0)])
        ));
    }

    #[test]
    fn empty_structures_are_isomorphic() {
        assert!(isomorphic(&digraph(0, &[]), &digraph(0, &[])));
    }

    #[test]
    fn signature_mismatch_is_not_isomorphic() {
        let a = digraph(1, &[]);
        let b = Structure::new(Signature::from_symbols([("F", 2)]), 1);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn bijective_hom_that_is_not_onto_a_relation_is_rejected() {
        // a: edges (0,1); b: edges (0,1) — but also compare a variant where
        // a bijective vertex map exists yet tuple counts differ.
        let a = digraph(3, &[(0, 1), (1, 2)]);
        let b = digraph(3, &[(0, 1), (0, 2)]);
        assert!(!isomorphic(&a, &b));
    }
}
