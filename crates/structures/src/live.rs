//! Live structures: append-only tuple ingestion with dirty tracking,
//! and the tuple-log format that feeds them.
//!
//! The paper's data-complexity reading makes the query fixed and the
//! structure the moving part; a streaming deployment moves the
//! structure one tuple at a time. [`LiveStructure`] wraps a
//! [`Structure`] with exactly the bookkeeping an incremental counter
//! needs:
//!
//! * **append-only ingestion** — [`LiveStructure::insert_tuple`] adds a
//!   tuple (idempotently, like [`Structure::add_tuple`]) and reports
//!   whether it was new. The universe is fixed at construction:
//!   growing it would silently change every `|B|^k` factor of the
//!   counting algorithm, so a live structure only ever gains tuples;
//! * **per-relation dirty tracking** — every relation that gained a
//!   tuple since the last [`LiveStructure::clear_dirty`] is flagged, so
//!   a maintainer (`epq_core::incremental::LiveCount`) can recompute
//!   only the disjuncts that read a dirty relation;
//! * **cheap snapshots** — [`LiveStructure::snapshot`] borrows the
//!   underlying [`Structure`] directly (no copy); every read-only
//!   consumer of the counting stack works on it unchanged.
//!
//! [`StreamLog`] is the serialized form of an ingestion session: a
//! header fixing the signature and universe, then an ordered list of
//! [`StreamOp`]s — tuple inserts and **checkpoints**, the points where
//! a replaying consumer emits the current answer count. The text format
//! round-trips through [`StreamLog::parse`] / `Display`, and is what
//! `epq count --stream <FILE>` replays.

use crate::structure::{RelId, Signature, Structure};
use std::fmt;

/// An append-only structure with per-relation dirty tracking. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct LiveStructure {
    inner: Structure,
    /// `dirty[r]` ⇔ relation `r` gained a tuple since the last
    /// [`LiveStructure::clear_dirty`].
    dirty: Vec<bool>,
    /// Bumps on every insert that actually added a tuple.
    generation: u64,
}

impl LiveStructure {
    /// An empty live structure over `signature` with a fixed universe
    /// `{0, …, universe_size − 1}`. All relations start clean.
    pub fn new(signature: Signature, universe_size: usize) -> Self {
        let relations = signature.len();
        LiveStructure {
            inner: Structure::new(signature, universe_size),
            dirty: vec![false; relations],
            generation: 0,
        }
    }

    /// Wraps an existing structure; its relations start **dirty** (a
    /// maintainer attaching to pre-loaded data has seen none of it).
    pub fn from_structure(inner: Structure) -> Self {
        let relations = inner.signature().len();
        LiveStructure {
            inner,
            dirty: vec![true; relations],
            generation: 0,
        }
    }

    /// The signature.
    pub fn signature(&self) -> &Signature {
        self.inner.signature()
    }

    /// The fixed universe size.
    pub fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    /// The current structure, by reference — snapshots are free, and
    /// every read-only consumer of the counting stack takes
    /// `&Structure`.
    pub fn snapshot(&self) -> &Structure {
        &self.inner
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.inner.tuple_count()
    }

    /// Number of inserts that actually added a tuple.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Inserts a tuple into `rel`, returning whether it was new.
    /// Duplicate inserts are no-ops and leave the dirty flags alone.
    ///
    /// # Panics
    /// Panics if elements are out of range or the arity mismatches
    /// (same contract as [`Structure::add_tuple`]).
    pub fn insert_tuple(&mut self, rel: RelId, tuple: &[u32]) -> bool {
        // One membership probe, inside add_tuple (which is idempotent):
        // whether it inserted shows in the relation's length.
        let before = self.inner.relation(rel).len();
        self.inner.add_tuple(rel, tuple);
        if self.inner.relation(rel).len() == before {
            return false;
        }
        self.dirty[rel.0 as usize] = true;
        self.generation += 1;
        true
    }

    /// [`LiveStructure::insert_tuple`] by relation name.
    ///
    /// # Panics
    /// Panics on an unknown relation name.
    pub fn insert_tuple_named(&mut self, name: &str, tuple: &[u32]) -> bool {
        let rel = self
            .signature()
            .lookup(name)
            .unwrap_or_else(|| panic!("unknown relation {name:?}"));
        self.insert_tuple(rel, tuple)
    }

    /// Whether `rel` gained a tuple since the last
    /// [`LiveStructure::clear_dirty`].
    pub fn is_dirty(&self, rel: RelId) -> bool {
        self.dirty[rel.0 as usize]
    }

    /// The dirty relations, in signature order.
    pub fn dirty_relations(&self) -> Vec<RelId> {
        self.dirty
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| RelId(i as u32))
            .collect()
    }

    /// Whether any relation is dirty.
    pub fn any_dirty(&self) -> bool {
        self.dirty.iter().any(|&d| d)
    }

    /// Marks every relation clean (the maintainer has reconciled).
    pub fn clear_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = false);
    }
}

/// One operation of a [`StreamLog`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamOp {
    /// Insert `tuple` into relation `rel` (of the log's signature).
    Insert {
        /// Target relation.
        rel: RelId,
        /// The tuple to insert.
        tuple: Vec<u32>,
    },
    /// Emit the current answer count.
    Checkpoint,
}

/// A serialized ingestion session: signature + universe header, then
/// ordered inserts and checkpoints. See the [module docs](self) for
/// the text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamLog {
    /// The signature every insert refers into.
    pub signature: Signature,
    /// The fixed universe size.
    pub universe: usize,
    /// The ordered operations.
    pub ops: Vec<StreamOp>,
}

/// Error from [`StreamLog::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamParseError {
    /// Human-readable description with line context.
    pub message: String,
}

impl fmt::Display for StreamParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream log parse error: {}", self.message)
    }
}

impl std::error::Error for StreamParseError {}

impl StreamLog {
    /// Parses the line-oriented tuple-log format:
    ///
    /// ```text
    /// # comments run to end of line
    /// universe 4          # first directive: the fixed universe size
    /// rel E/2             # declare relations (before any insert)
    /// rel P/1
    /// insert E 0 1        # one tuple per line, elements space-separated
    /// insert P 3
    /// checkpoint          # emit the current count here
    /// insert E 1 2
    /// ```
    ///
    /// Relations must be declared before their first insert; arities
    /// and universe bounds are validated while parsing.
    pub fn parse(text: &str) -> Result<StreamLog, StreamParseError> {
        let err = |line_no: usize, message: String| StreamParseError {
            message: format!("{message} (line {})", line_no + 1),
        };
        let mut signature = Signature::new();
        let mut universe: Option<usize> = None;
        let mut ops: Vec<StreamOp> = Vec::new();
        for (line_no, raw) in text.lines().enumerate() {
            let line = match raw.split('#').next() {
                Some(content) => content.trim(),
                None => "",
            };
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let head = words.next().expect("nonempty line has a first word");
            match head {
                "universe" => {
                    if universe.is_some() {
                        return Err(err(line_no, "duplicate universe directive".into()));
                    }
                    let n = words
                        .next()
                        .and_then(|w| w.parse::<usize>().ok())
                        .ok_or_else(|| err(line_no, "universe expects a size".into()))?;
                    universe = Some(n);
                }
                "rel" => {
                    let spec = words
                        .next()
                        .ok_or_else(|| err(line_no, "rel expects NAME/ARITY".into()))?;
                    let (name, arity) = spec
                        .split_once('/')
                        .and_then(|(n, a)| a.parse::<usize>().ok().map(|a| (n, a)))
                        .ok_or_else(|| err(line_no, format!("bad relation spec {spec:?}")))?;
                    if name.is_empty() || arity == 0 {
                        return Err(err(line_no, format!("bad relation spec {spec:?}")));
                    }
                    if signature.lookup(name).is_some() {
                        return Err(err(line_no, format!("duplicate relation {name:?}")));
                    }
                    signature.add_symbol(name, arity);
                }
                "insert" => {
                    let universe = universe
                        .ok_or_else(|| err(line_no, "insert before universe directive".into()))?;
                    let name = words
                        .next()
                        .ok_or_else(|| err(line_no, "insert expects a relation name".into()))?;
                    let rel = signature
                        .lookup(name)
                        .ok_or_else(|| err(line_no, format!("undeclared relation {name:?}")))?;
                    let tuple: Vec<u32> = words
                        .map(|w| w.parse::<u32>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| err(line_no, "insert elements must be numbers".into()))?;
                    if tuple.len() != signature.arity(rel) {
                        return Err(err(
                            line_no,
                            format!(
                                "relation {name:?} has arity {}, got {} elements",
                                signature.arity(rel),
                                tuple.len()
                            ),
                        ));
                    }
                    if let Some(&e) = tuple.iter().find(|&&e| e as usize >= universe) {
                        return Err(err(
                            line_no,
                            format!("element {e} outside universe of size {universe}"),
                        ));
                    }
                    ops.push(StreamOp::Insert { rel, tuple });
                }
                "checkpoint" => ops.push(StreamOp::Checkpoint),
                other => return Err(err(line_no, format!("unknown directive {other:?}"))),
            }
        }
        let universe = universe.ok_or_else(|| err(0, "missing universe directive".into()))?;
        Ok(StreamLog {
            signature,
            universe,
            ops,
        })
    }

    /// A fresh, clean [`LiveStructure`] matching the log's header.
    pub fn open(&self) -> LiveStructure {
        LiveStructure::new(self.signature.clone(), self.universe)
    }

    /// Replays every insert (ignoring checkpoints) into the final
    /// structure.
    pub fn replay(&self) -> Structure {
        let mut live = self.open();
        for op in &self.ops {
            if let StreamOp::Insert { rel, tuple } = op {
                live.insert_tuple(*rel, tuple);
            }
        }
        let LiveStructure { inner, .. } = live;
        inner
    }

    /// Number of insert operations.
    pub fn insert_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, StreamOp::Insert { .. }))
            .count()
    }

    /// Number of checkpoints.
    pub fn checkpoint_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, StreamOp::Checkpoint))
            .count()
    }
}

impl fmt::Display for StreamLog {
    /// Renders the text format parsed by [`StreamLog::parse`]
    /// (round-trips exactly).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "universe {}", self.universe)?;
        for (_, name, arity) in self.signature.iter() {
            writeln!(f, "rel {name}/{arity}")?;
        }
        for op in &self.ops {
            match op {
                StreamOp::Insert { rel, tuple } => {
                    write!(f, "insert {}", self.signature.name(*rel))?;
                    for e in tuple {
                        write!(f, " {e}")?;
                    }
                    writeln!(f)?;
                }
                StreamOp::Checkpoint => writeln!(f, "checkpoint")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digraph_sig() -> Signature {
        Signature::from_symbols([("E", 2)])
    }

    #[test]
    fn inserts_track_dirty_and_generation() {
        let mut live = LiveStructure::new(digraph_sig(), 3);
        let e = RelId(0);
        assert!(!live.any_dirty());
        assert!(live.insert_tuple(e, &[0, 1]));
        assert!(live.is_dirty(e));
        assert_eq!(live.generation(), 1);
        // Duplicate insert: no tuple, no generation bump.
        live.clear_dirty();
        assert!(!live.insert_tuple(e, &[0, 1]));
        assert!(!live.is_dirty(e));
        assert_eq!(live.generation(), 1);
        assert_eq!(live.snapshot().tuple_count(), 1);
    }

    #[test]
    fn dirty_relations_are_per_relation() {
        let sig = Signature::from_symbols([("E", 2), ("F", 1)]);
        let mut live = LiveStructure::new(sig, 4);
        live.insert_tuple_named("F", &[2]);
        assert_eq!(live.dirty_relations(), vec![RelId(1)]);
        live.insert_tuple_named("E", &[0, 1]);
        assert_eq!(live.dirty_relations(), vec![RelId(0), RelId(1)]);
        live.clear_dirty();
        assert!(live.dirty_relations().is_empty());
    }

    #[test]
    fn from_structure_starts_dirty() {
        let mut s = Structure::new(digraph_sig(), 2);
        s.add_tuple_named("E", &[0, 1]);
        let live = LiveStructure::from_structure(s);
        assert!(live.is_dirty(RelId(0)));
        assert_eq!(live.tuple_count(), 1);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_range_insert_panics() {
        let mut live = LiveStructure::new(digraph_sig(), 2);
        live.insert_tuple(RelId(0), &[0, 7]);
    }

    #[test]
    fn stream_log_parses_and_replays() {
        let log = StreamLog::parse(
            "# a session\n\
             universe 4\n\
             rel E/2\n\
             rel P/1\n\
             insert E 0 1   # first edge\n\
             checkpoint\n\
             insert P 3\n\
             insert E 0 1\n\
             checkpoint\n",
        )
        .unwrap();
        assert_eq!(log.universe, 4);
        assert_eq!(log.signature.len(), 2);
        assert_eq!(log.insert_count(), 3);
        assert_eq!(log.checkpoint_count(), 2);
        let replayed = log.replay();
        // The duplicate E insert collapses.
        assert_eq!(replayed.tuple_count(), 2);
        assert!(replayed.has_tuple(RelId(0), &[0, 1]));
        assert!(replayed.has_tuple(RelId(1), &[3]));
    }

    #[test]
    fn stream_log_round_trips_through_display() {
        let log = StreamLog::parse("universe 3\nrel E/2\ninsert E 2 0\ncheckpoint\ninsert E 1 1\n")
            .unwrap();
        let reparsed = StreamLog::parse(&log.to_string()).unwrap();
        assert_eq!(log, reparsed);
    }

    #[test]
    fn stream_log_rejects_malformed_input() {
        for (text, needle) in [
            ("rel E/2\ninsert E 0 1", "universe"),
            ("universe 2\ninsert E 0 1", "undeclared"),
            ("universe 2\nrel E/2\ninsert E 0", "arity"),
            ("universe 2\nrel E/2\ninsert E 0 5", "outside universe"),
            ("universe 2\nrel E/0", "bad relation spec"),
            ("universe 2\nrel E/2\nrel E/2", "duplicate relation"),
            ("universe 2\nuniverse 3", "duplicate universe"),
            ("universe 2\nfrobnicate", "unknown directive"),
            ("universe 2\nrel E/2\ninsert E a b", "numbers"),
        ] {
            let err = StreamLog::parse(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text:?} should fail mentioning {needle:?}, got: {}",
                err.message
            );
        }
    }

    #[test]
    fn open_matches_header() {
        let log = StreamLog::parse("universe 5\nrel E/2\n").unwrap();
        let live = log.open();
        assert_eq!(live.universe_size(), 5);
        assert_eq!(live.signature().len(), 1);
        assert!(!live.any_dirty());
    }
}
