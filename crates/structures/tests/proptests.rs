//! Property tests for the structures substrate: homomorphism counting
//! laws under products and unions, core idempotence, parse/display
//! round-trips, and augmentation pinning.

use epq_bigint::Natural;
use epq_structures::{core, hom, iso, ops, parse, Signature, Structure};
use proptest::prelude::*;

/// Strategy: a random digraph structure on up to 4 elements (an edge
/// mask over ordered pairs, loops included).
fn small_digraph() -> impl Strategy<Value = Structure> {
    (1usize..=4, any::<u32>()).prop_map(|(n, mask)| {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, n);
        let mut bit = 0;
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if mask & (1 << (bit % 32)) != 0 {
                    s.add_tuple_named("E", &[u, v]);
                }
                bit += 1;
            }
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hom_counts_multiply_over_products(
        a in small_digraph(), b in small_digraph(), c in small_digraph(),
    ) {
        // |Hom(A, B×C)| = |Hom(A,B)| · |Hom(A,C)| (universal property).
        let product = ops::direct_product(&b, &c);
        let lhs = hom::count_homomorphisms(&a, &product);
        let rhs = hom::count_homomorphisms(&a, &b) * hom::count_homomorphisms(&a, &c);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn hom_counts_add_over_unions_for_connected_sources(
        b in small_digraph(), c in small_digraph(),
    ) {
        // For a connected source with at least one atom: |Hom(A, B+C)| =
        // |Hom(A,B)| + |Hom(A,C)|. Use a fixed connected A (a 2-path).
        let sig = Signature::from_symbols([("E", 2)]);
        let mut a = Structure::new(sig, 3);
        a.add_tuple_named("E", &[0, 1]);
        a.add_tuple_named("E", &[1, 2]);
        let union = ops::disjoint_union(&b, &c);
        let lhs = hom::count_homomorphisms(&a, &union);
        let rhs = hom::count_homomorphisms(&a, &b) + hom::count_homomorphisms(&a, &c);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn every_found_hom_is_a_hom(a in small_digraph(), b in small_digraph()) {
        if let Some(h) = hom::find_homomorphism(&a, &b) {
            prop_assert!(hom::is_homomorphism(&a, &b, &h));
        } else {
            // No hom found: counting must agree.
            prop_assert_eq!(hom::count_homomorphisms(&a, &b), Natural::zero());
        }
    }

    #[test]
    fn core_is_idempotent_and_equivalent(a in small_digraph()) {
        let (core1, _) = core::core_of(&a);
        prop_assert!(core::is_core(&core1));
        prop_assert!(core::homomorphically_equivalent(&a, &core1));
        let (core2, _) = core::core_of(&core1);
        prop_assert!(iso::isomorphic(&core1, &core2));
    }

    #[test]
    fn cores_of_hom_equivalent_structures_are_isomorphic(a in small_digraph()) {
        // A and A ⊎ A are hom-equivalent; their cores must be isomorphic.
        let doubled = ops::disjoint_union(&a, &a);
        let (c1, _) = core::core_of(&a);
        let (c2, _) = core::core_of(&doubled);
        prop_assert!(iso::isomorphic(&c1, &c2));
    }

    #[test]
    fn display_parse_roundtrip(a in small_digraph()) {
        let text = a.to_string();
        let reparsed = parse::parse_structure(&text);
        // Empty relations need declared arities, which Display omits only
        // when the relation is empty — handle both outcomes.
        match reparsed {
            Ok(b) => prop_assert_eq!(a, b),
            Err(_) => {
                let e = a.signature().lookup("E").unwrap();
                prop_assert!(a.relation(e).is_empty());
            }
        }
    }

    #[test]
    fn one_point_is_terminal(a in small_digraph()) {
        let unit = ops::one_point(a.signature().clone());
        prop_assert_eq!(
            hom::count_homomorphisms(&a, &unit),
            Natural::one()
        );
    }

    #[test]
    fn padding_makes_everything_satisfiable(a in small_digraph(), b in small_digraph()) {
        let padded = ops::add_units(&b, 1);
        prop_assert!(hom::homomorphism_exists(&a, &padded));
    }

    #[test]
    fn augmentation_restricts_homs(a in small_digraph()) {
        prop_assume!(a.universe_size() >= 1);
        // Pinning all elements: the only candidate endo of aug is the identity.
        let pins: Vec<u32> = (0..a.universe_size() as u32).collect();
        let aug = ops::augment(&a, &pins);
        let count = hom::count_homomorphisms(&aug, &aug);
        prop_assert_eq!(count, Natural::one());
    }

    #[test]
    fn isomorphism_is_reflexive_and_respects_relabeling(a in small_digraph()) {
        prop_assert!(iso::isomorphic(&a, &a));
        // Relabel by reversing element order.
        let n = a.universe_size();
        let relabeled: Vec<u32> = (0..n as u32).rev().collect();
        let (b, _) = a.induced_substructure(&relabeled);
        prop_assert!(iso::isomorphic(&a, &b));
    }

    #[test]
    fn power_counts_are_powers(a in small_digraph(), b in small_digraph()) {
        let squared = ops::power(&b, 2);
        let single = hom::count_homomorphisms(&a, &b);
        let lhs = hom::count_homomorphisms(&a, &squared);
        prop_assert_eq!(lhs, &single * &single);
    }
}
