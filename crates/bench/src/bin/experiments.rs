//! Regenerates every table and series recorded in `EXPERIMENTS.md`
//! (ids `T1`, `E1`–`E6`, `F1`–`F4`, `A1`–`A3`), plus the CI
//! bench-smoke gates: `P1` (parallel engines vs sequential; writes
//! `BENCH_engines.json`), `P2` (prepared-query amortization and
//! batched counting; writes `BENCH_prepared.json`), `P3` (flat arena
//! relations vs the seed nested-`Vec` layout; writes
//! `BENCH_relalg.json`), and `P4` (incremental streaming maintenance
//! vs prepare-once/recount-each-checkpoint; writes
//! `BENCH_streaming.json`). All gates exit nonzero on any count
//! disagreement.
//!
//! ```sh
//! cargo run -p epq-bench --release --bin experiments                  # all
//! cargo run -p epq-bench --release --bin experiments -- T1 F2        # some
//! cargo run -p epq-bench --release --bin experiments -- P1 P2 P3 P4  # CI gates
//! ```

use epq_bench::{
    json_escape, p4_stream_log, pp_of, row, rule, stream_incremental, stream_recount, time_engine,
    time_us,
};
use epq_core::classify::FamilyReport;
use epq_core::count::{count_ep, count_ep_with};
use epq_core::equivalence::{counting_equivalent, empirically_counting_equivalent};
use epq_core::iex::{evaluate_signed_sum, inclusion_exclusion_terms, star};
use epq_core::oracle;
use epq_core::plus::plus_decomposition;
use epq_counting::brute;
use epq_counting::engines::{
    all_engines, BruteForceEngine, FptEngine, HomDpEngine, PpCountingEngine,
};
use epq_graph::cliques;
use epq_logic::parser::parse_query;
use epq_logic::query::infer_signature;
use epq_logic::{dnf, PpFormula, Query};
use epq_structures::{Signature, Structure};
use epq_workloads::{data, queries};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("epq experiments — Chen & Mengel (PODS 2016) reproduction\n");
    if want("T1") {
        t1_trichotomy_table();
    }
    if want("E1") {
        e1_example_4_1();
    }
    if want("E2") {
        e2_cancellation();
    }
    if want("E3") {
        e3_oracle_recovery();
    }
    if want("E4") {
        e4_theta_plus();
    }
    if want("E5") {
        e5_counting_equivalence();
    }
    if want("E6") {
        e6_general_recovery();
    }
    if want("F1") {
        f1_engine_scaling();
    }
    if want("F2") {
        f2_sharp_clique_hardness();
    }
    if want("F3") {
        f3_case_two_scaling();
    }
    if want("F4") {
        f4_random_ucq_cancellation();
    }
    if want("P1") {
        p1_parallel_engines();
    }
    if want("P2") {
        p2_prepared_queries();
    }
    if want("P3") {
        p3_relalg_layouts();
    }
    if want("P4") {
        p4_streaming();
    }
    if want("A1") {
        a1_distinguisher_ablation();
    }
    if want("A2") {
        a2_merging_ablation();
    }
    if want("A3") {
        a3_case_two_reduction();
    }
}

/// One measured configuration of the P1 parallel-engine comparison.
struct P1Row {
    family: &'static str,
    engine: String,
    n: usize,
    threads: usize,
    median_us: f64,
    count: String,
    agrees: bool,
}

/// P1 — the parallel engines (`fpt-par`, `brute-par`) against their
/// sequential counterparts: per-thread-count medians, the speedup at
/// the widest setting, and a hard agreement gate.
///
/// Writes a machine-readable report to `BENCH_engines.json` (override
/// the path with `EPQ_BENCH_JSON`); CI's `bench-smoke` job uploads it
/// as an artifact. **Exits nonzero if any parallel count disagrees
/// with the sequential one** — this is the cheap perf+correctness gate
/// that runs on every PR.
fn p1_parallel_engines() {
    println!("== P1: parallel engines — speedup and agreement vs sequential ==");
    let host = epq_counting::pool::available_threads();
    println!("  host threads: {host}");
    let thread_counts = [1usize, 2, 4];
    let mut rows: Vec<P1Row> = Vec::new();

    let widths = [14, 14, 6, 8, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "family".into(),
                "engine".into(),
                "n".into(),
                "threads".into(),
                "median us".into(),
                "count".into(),
                "agree".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));

    // One measurement sweep per (family, n): the sequential engine,
    // then its parallel variant at each thread count, with agreement
    // checked against the sequential count.
    let mut measure = |family: &'static str,
                       query: &Query,
                       sizes: &[usize],
                       density: f64,
                       seed_offset: u64,
                       seq: &dyn PpCountingEngine,
                       par_of: fn(usize) -> Box<dyn PpCountingEngine>| {
        let pp = pp_of(query);
        for &n in sizes {
            let b = data::random_digraph(
                &mut StdRng::seed_from_u64(seed_offset + n as u64),
                n,
                density,
            );
            let (seq_count, seq_us) = time_engine(seq, &pp, &b, 3);
            rows.push(P1Row {
                family,
                engine: seq.name().to_string(),
                n,
                threads: 1,
                median_us: seq_us,
                count: seq_count.clone(),
                agrees: true,
            });
            let mut widest_us = seq_us;
            for &t in &thread_counts {
                let engine = par_of(t);
                let (par_count, par_us) = time_engine(engine.as_ref(), &pp, &b, 3);
                widest_us = par_us;
                rows.push(P1Row {
                    family,
                    engine: format!("{}/{}t", engine.name(), t),
                    n,
                    threads: t,
                    median_us: par_us,
                    count: par_count.clone(),
                    agrees: par_count == seq_count,
                });
            }
            for r in &rows[rows.len() - (thread_counts.len() + 1)..] {
                println!(
                    "{}",
                    row(
                        &[
                            r.family.into(),
                            r.engine.clone(),
                            r.n.to_string(),
                            r.threads.to_string(),
                            format!("{:.0}", r.median_us),
                            r.count.clone(),
                            r.agrees.to_string()
                        ],
                        &widths
                    )
                );
            }
            println!(
                "  -> speedup at {} threads: {:.2}x{}",
                thread_counts.last().unwrap(),
                seq_us / widest_us,
                if host < 2 {
                    " (single-core host: expect ~1x)"
                } else {
                    ""
                }
            );
        }
    };

    // qpath3 is the largest `engines` bench family; path2 stresses the
    // brute enumerator's sharded assignment sweep.
    measure(
        "qpath3",
        &queries::quantified_path_query(3),
        &[48, 96],
        0.08,
        0,
        &FptEngine,
        |t| Box::new(epq_counting::engines::ParFptEngine::new(t)),
    );
    measure(
        "path2-brute",
        &queries::path_query(2),
        &[16, 24],
        0.1,
        7,
        &BruteForceEngine,
        |t| Box::new(epq_counting::engines::ParBruteForceEngine::new(t)),
    );

    let disagreements = rows.iter().filter(|r| !r.agrees).count();
    let path = std::env::var("EPQ_BENCH_JSON").unwrap_or_else(|_| "BENCH_engines.json".to_string());
    let json = p1_json(&rows, host, disagreements);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  report written to {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
    if disagreements > 0 {
        eprintln!("P1 FAILED: {disagreements} parallel count(s) disagree with sequential");
        std::process::exit(1);
    }
    println!("  all parallel counts agree with sequential ✔\n");
}

/// Renders the P1 report as JSON (by hand; the container has no serde).
fn p1_json(rows: &[P1Row], host_threads: usize, disagreements: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"P1\",\n");
    out.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    out.push_str(&format!("  \"disagreements\": {disagreements},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"engine\": \"{}\", \"n\": {}, \"threads\": {}, \
             \"median_us\": {:.1}, \"count\": \"{}\", \"agrees\": {}}}{}\n",
            json_escape(r.family),
            json_escape(&r.engine),
            r.n,
            r.threads,
            r.median_us,
            json_escape(&r.count),
            r.agrees,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One measured configuration of the P2 prepared-query comparison.
struct P2Row {
    series: &'static str,
    variant: String,
    batch: usize,
    threads: usize,
    median_us: f64,
    agrees: bool,
}

/// P2 — the prepared-query architecture: prepare-once vs
/// prepare-per-call on a 32-structure batch, batch-vs-loop fan-out at
/// 1/2/4 threads, and the classifier cache. Writes `BENCH_prepared.json`
/// (override the path with `EPQ_BENCH_PREPARED_JSON`); **exits nonzero
/// if any amortized or batched count disagrees** with the
/// prepare-per-call sequential reference — CI's second bench-smoke
/// gate.
fn p2_prepared_queries() {
    use epq_core::prepared::{classifier_cache_clear, classifier_cache_stats, PreparedQuery};

    println!("== P2: prepared queries — amortized classification and batched counting ==");
    let host = epq_counting::pool::available_threads();
    println!("  host threads: {host}");
    let query =
        parse_query("(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))")
            .unwrap();
    let sig = infer_signature([query.formula()]).unwrap();
    let batch = data::random_digraph_batch(&mut StdRng::seed_from_u64(2024), 32, 10, 0.18);
    let mut rows: Vec<P2Row> = Vec::new();

    let widths = [16, 18, 8, 8, 12, 8];
    println!(
        "{}",
        row(
            &[
                "series".into(),
                "variant".into(),
                "batch".into(),
                "threads".into(),
                "median us".into(),
                "agree".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let print_row = |r: &P2Row| {
        println!(
            "{}",
            row(
                &[
                    r.series.into(),
                    r.variant.clone(),
                    r.batch.to_string(),
                    r.threads.to_string(),
                    format!("{:.0}", r.median_us),
                    r.agrees.to_string()
                ],
                &widths
            )
        );
    };

    // The reference: the whole per-query phase redone per structure.
    let reference: Vec<String> = batch
        .iter()
        .map(|b| {
            PreparedQuery::prepare_uncached(&query, &sig)
                .unwrap()
                .count(b)
                .to_string()
        })
        .collect();
    let per_call_us = time_us(3, || {
        for b in &batch {
            let _ = PreparedQuery::prepare_uncached(&query, &sig)
                .unwrap()
                .count(b);
        }
    });
    rows.push(P2Row {
        series: "prepare",
        variant: "per-call".into(),
        batch: batch.len(),
        threads: 1,
        median_us: per_call_us,
        agrees: true,
    });
    print_row(rows.last().unwrap());

    // Prepare once, count in a sequential loop.
    let prepared = PreparedQuery::prepare_uncached(&query, &sig).unwrap();
    let once: Vec<String> = batch
        .iter()
        .map(|b| prepared.count(b).to_string())
        .collect();
    let once_us = time_us(3, || {
        let p = PreparedQuery::prepare_uncached(&query, &sig).unwrap();
        for b in &batch {
            let _ = p.count(b);
        }
    });
    rows.push(P2Row {
        series: "prepare",
        variant: "once+loop".into(),
        batch: batch.len(),
        threads: 1,
        median_us: once_us,
        agrees: once == reference,
    });
    print_row(rows.last().unwrap());
    println!(
        "  -> prepare-once speedup over prepare-per-call: {:.2}x (query-phase amortization; \
thread-count independent)",
        per_call_us / once_us
    );

    // Batched fan-out at 1/2/4 threads against the sequential loop.
    let loop_us = time_us(3, || {
        for b in &batch {
            let _ = prepared.count(b);
        }
    });
    rows.push(P2Row {
        series: "batch",
        variant: "loop".into(),
        batch: batch.len(),
        threads: 1,
        median_us: loop_us,
        agrees: true,
    });
    print_row(rows.last().unwrap());
    let mut widest_us = loop_us;
    for threads in [1usize, 2, 4] {
        let counts: Vec<String> = prepared
            .count_batch(&batch, threads)
            .iter()
            .map(|n| n.to_string())
            .collect();
        let us = time_us(3, || {
            let _ = prepared.count_batch(&batch, threads);
        });
        widest_us = us;
        rows.push(P2Row {
            series: "batch",
            variant: format!("pool/{threads}t"),
            batch: batch.len(),
            threads,
            median_us: us,
            agrees: counts == reference,
        });
        print_row(rows.last().unwrap());
    }
    println!(
        "  -> batch speedup at 4 threads: {:.2}x{}",
        loop_us / widest_us,
        if host < 2 {
            " (single-core host: expect ~1x)"
        } else {
            ""
        }
    );

    // Classifier cache: second classification of the same canonical
    // query must be a hit.
    classifier_cache_clear();
    let before = classifier_cache_stats();
    let cold_us = time_us(1, || {
        let _ = PreparedQuery::prepare(&query, &sig)
            .unwrap()
            .analysis()
            .max_core_treewidth;
    });
    let warm_us = time_us(3, || {
        let _ = PreparedQuery::prepare(&query, &sig)
            .unwrap()
            .analysis()
            .max_core_treewidth;
    });
    let after = classifier_cache_stats();
    let cache_ok = after.hits > before.hits;
    rows.push(P2Row {
        series: "classify",
        variant: "cold".into(),
        batch: 1,
        threads: 1,
        median_us: cold_us,
        agrees: true,
    });
    print_row(rows.last().unwrap());
    rows.push(P2Row {
        series: "classify",
        variant: "cached".into(),
        batch: 1,
        threads: 1,
        median_us: warm_us,
        agrees: cache_ok,
    });
    print_row(rows.last().unwrap());
    println!(
        "  -> cached classification speedup: {:.2}x (cache hits {} -> {})",
        cold_us / warm_us,
        before.hits,
        after.hits
    );

    let disagreements = rows.iter().filter(|r| !r.agrees).count();
    let path = std::env::var("EPQ_BENCH_PREPARED_JSON")
        .unwrap_or_else(|_| "BENCH_prepared.json".to_string());
    let json = p2_json(
        &rows,
        host,
        disagreements,
        per_call_us / once_us,
        loop_us / widest_us,
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  report written to {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
    if disagreements > 0 {
        eprintln!(
            "P2 FAILED: {disagreements} prepared/batched count(s) disagree with the reference"
        );
        std::process::exit(1);
    }
    println!("  all prepared and batched counts agree with the per-call reference \u{2714}\n");
}

/// Renders the P2 report as JSON (by hand; the container has no serde).
fn p2_json(
    rows: &[P2Row],
    host_threads: usize,
    disagreements: usize,
    prepare_speedup: f64,
    batch_speedup: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"P2\",\n");
    out.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    out.push_str(&format!("  \"disagreements\": {disagreements},\n"));
    out.push_str(&format!(
        "  \"prepare_once_speedup\": {prepare_speedup:.2},\n"
    ));
    out.push_str(&format!("  \"batch_speedup\": {batch_speedup:.2},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"series\": \"{}\", \"variant\": \"{}\", \"batch\": {}, \
\"threads\": {}, \"median_us\": {:.1}, \"agrees\": {}}}{}\n",
            json_escape(r.series),
            json_escape(&r.variant),
            r.batch,
            r.threads,
            r.median_us,
            r.agrees,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One measured configuration of the P3 layout comparison.
struct P3Row {
    family: &'static str,
    op: &'static str,
    n: usize,
    layout: &'static str,
    median_us: f64,
    out_rows: usize,
    agrees: bool,
}

/// P3 — the flat arena-backed `Relation` against the seed nested-`Vec`
/// layout (`epq_bench::naive`), on identical inputs, per primitive:
/// join-heavy (single joins at two cardinalities plus a three-way
/// chain), projection, and union. The "naive" rows *are* the recorded
/// seed medians — the baseline is the seed implementation, re-measured
/// on the same machine in the same run, so the speedup column compares
/// like with like.
///
/// Writes a machine-readable report to `BENCH_relalg.json` (override
/// the path with `EPQ_BENCH_RELALG_JSON`); CI's `bench-smoke` job
/// uploads it and gates on the recorded `join_speedup`. **Exits
/// nonzero if any flat result disagrees with the seed layout's** —
/// every measured operation doubles as a correctness check.
fn p3_relalg_layouts() {
    use epq_bench::naive::NaiveRelation;
    use epq_bench::{p3_join_pair, p3_rows};
    use epq_relalg::Relation;

    println!("== P3: relational-algebra data layouts — flat arena vs seed nested-Vec ==");
    let mut rows: Vec<P3Row> = Vec::new();
    let widths = [10, 9, 8, 8, 12, 10, 8];
    println!(
        "{}",
        row(
            &[
                "family".into(),
                "op".into(),
                "n".into(),
                "layout".into(),
                "median us".into(),
                "out rows".into(),
                "agree".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));

    /// Flat and naive results must be the same row set in the same
    /// canonical order.
    fn same_rows(flat: &Relation, naive: &NaiveRelation) -> bool {
        flat.schema() == naive.schema()
            && flat.len() == naive.len()
            && flat
                .rows()
                .zip(naive.rows().iter())
                .all(|(a, b)| a == b.as_slice())
    }

    let record = |family: &'static str,
                  op: &'static str,
                  n: usize,
                  flat_out: &Relation,
                  naive_out: &NaiveRelation,
                  flat_us: f64,
                  naive_us: f64,
                  rows: &mut Vec<P3Row>| {
        let agrees = same_rows(flat_out, naive_out);
        for (layout, us, out_rows) in [
            ("naive", naive_us, naive_out.len()),
            ("flat", flat_us, flat_out.len()),
        ] {
            rows.push(P3Row {
                family,
                op,
                n,
                layout,
                median_us: us,
                out_rows,
                agrees,
            });
            let r = rows.last().unwrap();
            println!(
                "{}",
                row(
                    &[
                        r.family.into(),
                        r.op.into(),
                        r.n.to_string(),
                        r.layout.into(),
                        format!("{:.0}", r.median_us),
                        r.out_rows.to_string(),
                        r.agrees.to_string()
                    ],
                    &widths
                )
            );
        }
        println!("  -> {family}/{op} n={n}: {:.2}x", naive_us / flat_us);
    };

    // Join-heavy family: R(0,1) ⋈ S(1,2) at two cardinalities, plus a
    // three-way chain — the shape every pp-formula evaluation takes.
    let mut join_speedups: Vec<f64> = Vec::new();
    for n in [2000usize, 8000] {
        let ((rs, rr), (ss, sr)) = p3_join_pair(n);
        let flat_r = Relation::new(rs.clone(), rr.clone());
        let flat_s = Relation::new(ss.clone(), sr.clone());
        let naive_r = NaiveRelation::new(rs, rr);
        let naive_s = NaiveRelation::new(ss, sr);
        let flat_out = flat_r.join(&flat_s);
        let naive_out = naive_r.join(&naive_s);
        let flat_us = time_us(5, || {
            let _ = flat_r.join(&flat_s);
        });
        let naive_us = time_us(5, || {
            let _ = naive_r.join(&naive_s);
        });
        join_speedups.push(naive_us / flat_us);
        record(
            "join-heavy",
            "join2",
            n,
            &flat_out,
            &naive_out,
            flat_us,
            naive_us,
            &mut rows,
        );
    }
    {
        let n = 4000usize;
        let ((rs, rr), (ss, sr)) = p3_join_pair(n);
        let ts = vec![2u32, 3];
        let tr = p3_rows(3000 + n as u64, n, &[61, 17]);
        let flat_r = Relation::new(rs.clone(), rr.clone());
        let flat_s = Relation::new(ss.clone(), sr.clone());
        let flat_t = Relation::new(ts.clone(), tr.clone());
        let naive_r = NaiveRelation::new(rs, rr);
        let naive_s = NaiveRelation::new(ss, sr);
        let naive_t = NaiveRelation::new(ts, tr);
        let flat_out = flat_r.join(&flat_s).join(&flat_t);
        let naive_out = naive_r.join(&naive_s).join(&naive_t);
        let flat_us = time_us(5, || {
            let _ = flat_r.join(&flat_s).join(&flat_t);
        });
        let naive_us = time_us(5, || {
            let _ = naive_r.join(&naive_s).join(&naive_t);
        });
        join_speedups.push(naive_us / flat_us);
        record(
            "join-heavy",
            "chain3",
            n,
            &flat_out,
            &naive_out,
            flat_us,
            naive_us,
            &mut rows,
        );
    }

    // Projection: arity-4 rows down to a reordered pair.
    for n in [8000usize, 32000] {
        let schema = vec![0u32, 1, 2, 3];
        let data = p3_rows(31 + n as u64, n, &[97, 89, 7, 5]);
        let flat = Relation::new(schema.clone(), data.clone());
        let naive = NaiveRelation::new(schema, data);
        let flat_out = flat.project(&[3, 1]);
        let naive_out = naive.project(&[3, 1]);
        let flat_us = time_us(5, || {
            let _ = flat.project(&[3, 1]);
        });
        let naive_us = time_us(5, || {
            let _ = naive.project(&[3, 1]);
        });
        record(
            "project", "project", n, &flat_out, &naive_out, flat_us, naive_us, &mut rows,
        );
    }

    // Union: two same-schema sides (the UCQ disjunct accumulation).
    for n in [8000usize, 32000] {
        let schema = vec![0u32, 1];
        let left = p3_rows(77 + n as u64, n, &[251, 127]);
        let right = p3_rows(78 + n as u64, n, &[251, 127]);
        let flat_l = Relation::new(schema.clone(), left.clone());
        let flat_r = Relation::new(schema.clone(), right.clone());
        let naive_l = NaiveRelation::new(schema.clone(), left);
        let naive_r = NaiveRelation::new(schema, right);
        let flat_out = flat_l.union(&flat_r);
        let naive_out = naive_l.union(&naive_r);
        let flat_us = time_us(5, || {
            let _ = flat_l.union(&flat_r);
        });
        let naive_us = time_us(5, || {
            let _ = naive_l.union(&naive_r);
        });
        record(
            "union", "union", n, &flat_out, &naive_out, flat_us, naive_us, &mut rows,
        );
    }

    // The gate statistic: the median speedup across the join-heavy
    // family (what CI's threshold check reads).
    join_speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let join_speedup = join_speedups[join_speedups.len() / 2];
    let disagreements = rows.iter().filter(|r| !r.agrees).count() / 2;
    println!("  -> join-heavy median speedup (flat over seed layout): {join_speedup:.2}x");

    let path =
        std::env::var("EPQ_BENCH_RELALG_JSON").unwrap_or_else(|_| "BENCH_relalg.json".to_string());
    let json = p3_json(&rows, disagreements, join_speedup);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  report written to {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
    if disagreements > 0 {
        eprintln!("P3 FAILED: {disagreements} flat result(s) disagree with the seed layout");
        std::process::exit(1);
    }
    println!("  all flat results agree with the seed layout \u{2714}\n");
}

/// Renders the P3 report as JSON (by hand; the container has no serde).
fn p3_json(rows: &[P3Row], disagreements: usize, join_speedup: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"P3\",\n");
    out.push_str(&format!("  \"disagreements\": {disagreements},\n"));
    out.push_str(&format!("  \"join_speedup\": {join_speedup:.2},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"op\": \"{}\", \"n\": {}, \"layout\": \"{}\", \
             \"median_us\": {:.1}, \"out_rows\": {}, \"agrees\": {}}}{}\n",
            json_escape(r.family),
            json_escape(r.op),
            r.n,
            json_escape(r.layout),
            r.median_us,
            r.out_rows,
            r.agrees,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One measured configuration of the P4 streaming comparison.
struct P4Row {
    family: &'static str,
    variant: &'static str,
    inserts: usize,
    checkpoints: usize,
    median_us: f64,
    agrees: bool,
}

/// P4 — streaming maintenance: `LiveCount` (per-disjunct read sets +
/// cached relational-algebra scans) against prepare-once/
/// recount-each-checkpoint on the same insert log. A second, smaller
/// family runs the DP-table fallback (`fpt` engine) for agreement.
///
/// Writes a machine-readable report to `BENCH_streaming.json`
/// (override the path with `EPQ_BENCH_STREAMING_JSON`); CI's
/// `bench-smoke` job uploads it and gates on the recorded
/// `incremental_speedup`. **Exits nonzero if any checkpoint count
/// disagrees** between incremental maintenance and the from-scratch
/// recount.
fn p4_streaming() {
    use epq_counting::engines::{ParRelalgEngine, RelalgEngine};

    println!("== P4: streaming — incremental maintenance vs recount-per-checkpoint ==");
    let mut rows: Vec<P4Row> = Vec::new();
    let widths = [14, 14, 9, 12, 12, 8];
    println!(
        "{}",
        row(
            &[
                "family".into(),
                "variant".into(),
                "inserts".into(),
                "checkpoints".into(),
                "median us".into(),
                "agree".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let print_row = |r: &P4Row| {
        println!(
            "{}",
            row(
                &[
                    r.family.into(),
                    r.variant.into(),
                    r.inserts.to_string(),
                    r.checkpoints.to_string(),
                    format!("{:.0}", r.median_us),
                    r.agrees.to_string()
                ],
                &widths
            )
        );
    };

    // The gate family: a large, quiet E next to a hot F stream. The
    // E-path term dominates a full recount; incremental maintenance
    // recounts only the F-reading terms at each checkpoint.
    let query = parse_query("(x,y,z) := (E(x,y) & E(y,z)) | (F(x,y) & F(y,z))").unwrap();
    let log = p4_stream_log(48, 1600, 300, 30, 41);
    let checkpoints = log.checkpoint_count();
    let inserts = log.insert_count();
    let relalg: fn() -> Box<dyn PpCountingEngine> = || Box::new(RelalgEngine);
    let reference = stream_recount(&query, &log, relalg);
    let incremental = stream_incremental(&query, &log, relalg, 1);
    let agrees = incremental == reference;
    let recount_us = time_us(3, || {
        let _ = stream_recount(&query, &log, relalg);
    });
    let incremental_us = time_us(3, || {
        let _ = stream_incremental(&query, &log, relalg, 1);
    });
    rows.push(P4Row {
        family: "skewed-feed",
        variant: "recount",
        inserts,
        checkpoints,
        median_us: recount_us,
        agrees: true,
    });
    print_row(rows.last().unwrap());
    rows.push(P4Row {
        family: "skewed-feed",
        variant: "incremental",
        inserts,
        checkpoints,
        median_us: incremental_us,
        agrees,
    });
    print_row(rows.last().unwrap());
    let incremental_speedup = recount_us / incremental_us;
    println!(
        "  -> incremental speedup over recount-per-checkpoint: {incremental_speedup:.2}x \
         (term reuse + scan caching; thread-count independent)"
    );

    // Pool-parallel maintenance: same counts, joins sharded.
    let par: fn() -> Box<dyn PpCountingEngine> = || Box::new(ParRelalgEngine::new(4));
    let par_counts = stream_incremental(&query, &log, par, 4);
    let par_us = time_us(3, || {
        let _ = stream_incremental(&query, &log, par, 4);
    });
    rows.push(P4Row {
        family: "skewed-feed",
        variant: "incr-par/4t",
        inserts,
        checkpoints,
        median_us: par_us,
        agrees: par_counts == reference,
    });
    print_row(rows.last().unwrap());

    // The DP-table fallback family (smaller: every affected term is
    // fully recounted through the fpt engine — this checks agreement,
    // not speed).
    let fallback_query = parse_query("(x,y) := (E(x,y) & E(y,x)) | F(x,y)").unwrap();
    let small = p4_stream_log(12, 60, 60, 12, 43);
    let fpt: fn() -> Box<dyn PpCountingEngine> = || Box::new(FptEngine);
    let fb_reference = stream_recount(&fallback_query, &small, fpt);
    let fb_incremental = stream_incremental(&fallback_query, &small, fpt, 1);
    let fb_us = time_us(3, || {
        let _ = stream_incremental(&fallback_query, &small, fpt, 1);
    });
    rows.push(P4Row {
        family: "fallback-fpt",
        variant: "incremental",
        inserts: small.insert_count(),
        checkpoints: small.checkpoint_count(),
        median_us: fb_us,
        agrees: fb_incremental == fb_reference,
    });
    print_row(rows.last().unwrap());

    let disagreements = rows.iter().filter(|r| !r.agrees).count();
    let path = std::env::var("EPQ_BENCH_STREAMING_JSON")
        .unwrap_or_else(|_| "BENCH_streaming.json".to_string());
    let json = p4_json(&rows, disagreements, incremental_speedup);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  report written to {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
    if disagreements > 0 {
        eprintln!(
            "P4 FAILED: {disagreements} incremental checkpoint series disagree with recounts"
        );
        std::process::exit(1);
    }
    println!("  all incremental checkpoint counts agree with from-scratch recounts \u{2714}\n");
}

/// Renders the P4 report as JSON (by hand; the container has no serde).
fn p4_json(rows: &[P4Row], disagreements: usize, incremental_speedup: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"P4\",\n");
    out.push_str(&format!("  \"disagreements\": {disagreements},\n"));
    out.push_str(&format!(
        "  \"incremental_speedup\": {incremental_speedup:.2},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"variant\": \"{}\", \"inserts\": {}, \
             \"checkpoints\": {}, \"median_us\": {:.1}, \"agrees\": {}}}{}\n",
            json_escape(r.family),
            json_escape(r.variant),
            r.inserts,
            r.checkpoints,
            r.median_us,
            r.agrees,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// A1 — ablation: Lemma 5.12's distinguishing structure, randomized
/// search vs the paper's deterministic amplification.
fn a1_distinguisher_ablation() {
    println!("== A1 (ablation): distinguishing structures — search vs amplification ==");
    let sig = data::digraph_signature();
    let make = |text: &str| PpFormula::from_query(&parse_query(text).unwrap(), &sig).unwrap();
    let f1 = make("E(x,y)");
    let f2 = make("(x, y) := E(x,y) & E(y,y)");
    let f3 = make("(x, y) := E(x,y) & E(y,x)");
    let reps = [&f1, &f2, &f3];

    let t_search = time_us(3, || {
        let _ = oracle::find_distinguishing_structure(&reps);
    });
    let c_search = oracle::find_distinguishing_structure(&reps);
    let t_amplified = time_us(1, || {
        let _ = epq_core::distinguish::amplified_distinguishing_structure(&reps);
    });
    let c_amplified = epq_core::distinguish::amplified_distinguishing_structure(&reps);
    println!(
        "  randomized search : {:>8.0} us, |C| = {:>4} elements, valid: {}",
        t_search,
        c_search.universe_size(),
        oracle::is_distinguishing(&c_search, &reps)
    );
    println!(
        "  amplification     : {:>8.0} us, |C| = {:>4} elements, valid: {}",
        t_amplified,
        c_amplified.universe_size(),
        oracle::is_distinguishing(&c_amplified, &reps)
    );
    println!("  (the proof's construction is explicit but yields larger structures)\n");
}

/// A2 — ablation: φ* merging by counting equivalence (Theorem 5.4) vs
/// merging by logical equivalence only.
fn a2_merging_ablation() {
    println!("== A2 (ablation): phi* merging — counting equivalence vs logical equivalence ==");
    let sig = data::digraph_signature();
    let mut totals = (0usize, 0usize, 0usize);
    let samples = 30;
    for seed in 0..samples as u64 {
        let q = queries::random_ucq(&mut StdRng::seed_from_u64(seed), 3, 4, 2, 0.2);
        let ds = dnf::disjuncts(&q, &sig).unwrap();
        let raw = inclusion_exclusion_terms(&ds);
        // Merge by logical equivalence only.
        let mut logical: Vec<(PpFormula, epq_bigint::Integer)> = Vec::new();
        for t in &raw {
            match logical
                .iter_mut()
                .find(|(f, _)| f.logically_equivalent(&t.formula))
            {
                Some((_, c)) => *c += &t.coefficient,
                None => logical.push((t.formula.clone(), t.coefficient.clone())),
            }
        }
        logical.retain(|(_, c)| !c.is_zero());
        let counting = star(&ds);
        totals.0 += raw.len();
        totals.1 += logical.len();
        totals.2 += counting.len();
    }
    println!(
        "  over {samples} random 3-disjunct UCQs: raw terms {}, after logical-equivalence \
         merge {}, after counting-equivalence merge {}",
        totals.0, totals.1, totals.2
    );
    println!("  (counting equivalence merges strictly more — Theorem 5.4's payoff)\n");
}

/// A3 — the case-2 reduction made concrete: counting pendant-clique
/// answers with a clique-decision oracle.
fn a3_case_two_reduction() {
    println!("== A3: case-2 counting with a clique-DECISION oracle ==");
    let widths = [6, 8, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "k".into(),
                "n".into(),
                "count".into(),
                "oracle calls".into(),
                "agree".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for k in 2..=3usize {
        for n in [12usize, 24] {
            let g = epq_graph::generators::random_gnp(
                n,
                0.35,
                &mut StdRng::seed_from_u64(50 + n as u64),
            );
            let mut calls = 0usize;
            let mut decision_oracle = |h: &epq_graph::Graph, k: usize| {
                calls += 1;
                epq_graph::cliques::has_k_clique(h, k)
            };
            let via_oracle = epq_counting::clique::count_pendant_cliques_via_decision_oracle(
                &g,
                k,
                &mut decision_oracle,
            );
            let query = queries::pendant_clique_query(k);
            let pp = pp_of(&query);
            let b = epq_counting::clique::graph_to_structure(&g);
            let via_query = FptEngine.count(&pp, &b);
            println!(
                "{}",
                row(
                    &[
                        k.to_string(),
                        n.to_string(),
                        via_oracle.to_string(),
                        calls.to_string(),
                        (via_oracle == via_query).to_string()
                    ],
                    &widths
                )
            );
        }
    }
    println!("  (a counting problem answered with |V| decision queries — Thm 3.2 case 2)\n");
}

fn family<I>(name: &str, members: I) -> FamilyReport
where
    I: IntoIterator<Item = (usize, Query)>,
{
    FamilyReport::build(
        name,
        members.into_iter().map(|(k, q)| {
            let sig = infer_signature([q.formula()]).unwrap();
            (k, q, sig)
        }),
    )
    .expect("family classifies")
}

/// T1 — the trichotomy table (Theorem 3.2).
fn t1_trichotomy_table() {
    println!("== T1: trichotomy table (Theorem 3.2) ==");
    let widths = [24, 22, 22, 26];
    println!(
        "{}",
        row(
            &[
                "family".into(),
                "core tw by k".into(),
                "contract tw by k".into(),
                "regime".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let families = vec![
        (
            "paths P_k",
            family("paths", (1..=6).map(|k| (k, queries::path_query(k)))),
        ),
        (
            "stars S_k",
            family("stars", (1..=6).map(|k| (k, queries::star_query(k)))),
        ),
        (
            "cycles C_k",
            family("cycles", (3..=6).map(|k| (k, queries::cycle_query(k)))),
        ),
        (
            "exists-paths Q_k",
            family(
                "qpaths",
                (2..=6).map(|k| (k, queries::quantified_path_query(k))),
            ),
        ),
        (
            "pendant cliques W_k",
            family(
                "pendant",
                (2..=5).map(|k| (k, queries::pendant_clique_query(k))),
            ),
        ),
        (
            "free cliques K_k",
            family("cliques", (2..=5).map(|k| (k, queries::clique_query(k)))),
        ),
        (
            "free grids G_kxk",
            family("grids", (1..=3).map(|k| (k, queries::grid_query(k, k)))),
        ),
    ];
    for (label, fam) in families {
        let cores: Vec<String> = fam.measures.iter().map(|m| m.1.to_string()).collect();
        let contracts: Vec<String> = fam.measures.iter().map(|m| m.2.to_string()).collect();
        println!(
            "{}",
            row(
                &[
                    label.into(),
                    cores.join(","),
                    contracts.join(","),
                    fam.inferred_regime().to_string()
                ],
                &widths
            )
        );
    }
    println!();
}

/// E1 — Example 4.1: the inclusion–exclusion identity.
fn e1_example_4_1() {
    println!("== E1: Example 4.1 (inclusion-exclusion identity) ==");
    let b = data::example_4_3_structure();
    let text = "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))";
    let query = parse_query(text).unwrap();
    let ds = dnf::disjuncts(&query, b.signature()).unwrap();
    let c1 = brute::count_pp_brute(&ds[0], &b);
    let c2 = brute::count_pp_brute(&ds[1], &b);
    let c12 = brute::count_pp_brute(&PpFormula::conjoin(&[&ds[0], &ds[1]]), &b);
    let whole = brute::count_ep_brute(&query, &b);
    println!("  phi = {text}");
    println!("  |phi(B)| = {whole}; |phi1| = {c1}, |phi2| = {c2}, |phi1^phi2| = {c12}");
    println!(
        "  identity |phi| = |phi1|+|phi2|-|phi1^phi2|: {} ✔\n",
        (c1 + c2).checked_sub(&c12).unwrap() == whole
    );
}

/// E2 — Examples 4.2/5.15: cancellation and its measured payoff.
fn e2_cancellation() {
    println!("== E2: Examples 4.2/5.15 (phi* cancellation) ==");
    let text = "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))";
    let query = parse_query(text).unwrap();
    let sig = data::digraph_signature();
    let ds = dnf::disjuncts(&query, &sig).unwrap();
    let raw = inclusion_exclusion_terms(&ds);
    let star_terms = star(&ds);
    let tw = |pp: &PpFormula| epq_graph::treewidth_exact(&pp.structure().gaifman_graph()).unwrap();
    println!(
        "  raw terms: {} (max tw {})",
        raw.len(),
        raw.iter().map(|t| tw(&t.formula)).max().unwrap()
    );
    println!(
        "  phi* terms: {} (max tw {}), coefficients {:?}",
        star_terms.len(),
        star_terms.iter().map(|t| tw(&t.formula)).max().unwrap(),
        star_terms
            .iter()
            .map(|t| t.coefficient.to_i64().unwrap())
            .collect::<Vec<_>>()
    );
    // Measured payoff: evaluate both signed sums on a random structure.
    let b = data::random_digraph(&mut StdRng::seed_from_u64(42), 48, 0.12);
    let raw_us = time_us(3, || {
        let _ = evaluate_signed_sum(&raw, &b, &FptEngine);
    });
    let star_us = time_us(3, || {
        let _ = evaluate_signed_sum(&star_terms, &b, &FptEngine);
    });
    let check_raw = evaluate_signed_sum(&raw, &b, &FptEngine);
    let check_star = evaluate_signed_sum(&star_terms, &b, &FptEngine);
    println!(
        "  on G(48, 0.12): raw-sum {:.0} us vs phi*-sum {:.0} us (speedup {:.1}x), counts agree: {}\n",
        raw_us,
        star_us,
        raw_us / star_us,
        check_raw == check_star
    );
}

/// E3 — Example 4.3: oracle recovery, all-free case.
fn e3_oracle_recovery() {
    println!("== E3: Example 4.3 (Vandermonde oracle recovery) ==");
    let text = "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))";
    let query = parse_query(text).unwrap();
    let sig = data::digraph_signature();
    let b = data::example_4_3_structure();
    let ds = dnf::disjuncts(&query, &sig).unwrap();
    let star_terms = star(&ds);
    let mut oracle_fn = |d: &Structure| count_ep(&query, &sig, d, &FptEngine).unwrap();
    let recovered = oracle::recover_all_free_counts(&star_terms, &b, &mut oracle_fn);
    for (i, n) in &recovered.counts {
        let direct = brute::count_pp_brute(&star_terms[*i].formula, &b);
        println!(
            "  |{}(B)| recovered = {n}, direct = {direct} {}",
            star_terms[*i].formula,
            if *n == direct { "✔" } else { "✘" }
        );
    }
    println!("  oracle queries: {}\n", recovered.oracle_queries);
}

/// E4 — Example 5.21: the theta-plus construction.
fn e4_theta_plus() {
    println!("== E4: Example 5.21 (theta-plus) ==");
    let text = "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y)) \
                | (exists a, b, c, d . E(a,b) & E(b,c) & E(c,d))";
    let query = parse_query(text).unwrap();
    let sig = data::digraph_signature();
    let dec = plus_decomposition(&query, &sig).unwrap();
    println!(
        "  normalized disjuncts {}, all-free {}, sentences {}",
        dec.disjuncts.len(),
        dec.all_free.len(),
        dec.sentences.len()
    );
    println!(
        "  theta*_af: {} terms; theta-_af: {}",
        dec.star_af.len(),
        dec.minus_af().len()
    );
    println!("  theta+ =");
    for f in &dec.plus {
        println!("    {f}");
    }
    println!("  (paper: theta+ = {{phi1, theta1}}) ✔\n");
}

/// E5 — Theorem 5.4: counting-equivalence decision.
fn e5_counting_equivalence() {
    println!("== E5: Theorem 5.4 (counting equivalence decision) ==");
    let sig = data::digraph_signature();
    let pairs = [
        ("E(x,y)", "E(w,z)", true),
        ("E(x,y) & E(y,z)", "E(a,b) & E(b,c)", true),
        ("E(x,y) & E(y,z)", "E(a,b) & E(a,c)", false),
        ("(x) := exists u . E(x,u)", "(y) := exists v . E(y,v)", true),
        (
            "(x) := exists u . E(x,u)",
            "(y) := exists v . E(v,y)",
            false,
        ),
    ];
    let widths = [30, 30, 10, 12];
    println!(
        "{}",
        row(
            &[
                "phi1".into(),
                "phi2".into(),
                "decided".into(),
                "median us".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for (ta, tb, expected) in pairs {
        let a = PpFormula::from_query(&parse_query(ta).unwrap(), &sig).unwrap();
        let b = PpFormula::from_query(&parse_query(tb).unwrap(), &sig).unwrap();
        let decided = counting_equivalent(&a, &b);
        assert_eq!(decided, expected);
        let us = time_us(5, || {
            let _ = counting_equivalent(&a, &b);
        });
        println!(
            "{}",
            row(
                &[
                    ta.into(),
                    tb.into(),
                    decided.to_string(),
                    format!("{us:.0}")
                ],
                &widths
            )
        );
    }
    // Random agreement sweep vs an empirical battery.
    let mut agree = 0usize;
    let total = 60;
    let battery: Vec<Structure> = (0..4)
        .map(|i| data::random_digraph(&mut StdRng::seed_from_u64(900 + i), 3, 0.4))
        .collect();
    for seed in 0..total as u64 {
        let qa = queries::random_cq(&mut StdRng::seed_from_u64(seed), 3, 2, 0.3);
        let qb = queries::random_cq(&mut StdRng::seed_from_u64(seed + 7000), 3, 2, 0.3);
        let a = PpFormula::from_query(&qa, &sig).unwrap();
        let b = PpFormula::from_query(&qb, &sig).unwrap();
        let decided = counting_equivalent(&a, &b);
        let empirical = empirically_counting_equivalent(&a, &b, &battery);
        // decision ⇒ empirical; ¬empirical ⇒ ¬decision.
        if !decided || empirical {
            agree += 1;
        }
    }
    println!("  random sweep: {agree}/{total} decisions consistent with empirical battery\n");
}

/// E6 — Appendix A: general-case recovery with sentence disjuncts.
fn e6_general_recovery() {
    println!("== E6: general-case oracle recovery (Appendix A) ==");
    let text = "(x, y) := E(x,y) | F(x,y) | (exists a, b . E(a,b) & F(a,b))";
    let query = parse_query(text).unwrap();
    let sig = Signature::from_symbols([("E", 2), ("F", 2)]);
    let dec = plus_decomposition(&query, &sig).unwrap();
    let mut b = Structure::new(sig.clone(), 3);
    b.add_tuple_named("E", &[0, 1]);
    b.add_tuple_named("F", &[1, 2]);
    b.add_tuple_named("F", &[0, 1]);
    let mut calls = 0usize;
    let mut oracle_fn = |d: &Structure| {
        calls += 1;
        count_ep_with(&dec, query.liberal_count(), d, &FptEngine)
    };
    let recovered = oracle::recover_plus_counts(&dec, query.liberal_count(), &b, &mut oracle_fn);
    for (formula, n) in &recovered {
        let direct = brute::count_pp_brute(formula, &b);
        println!(
            "  |{formula}(B)| recovered = {n}, direct = {direct} {}",
            if *n == direct { "✔" } else { "✘" }
        );
    }
    println!("  oracle queries: {calls}\n");
}

/// F1 — engine scaling on an FPT-family query (Theorem 3.2 case 1).
fn f1_engine_scaling() {
    println!("== F1: engine scaling, query Q_3(x,y) = ∃u,v path (FPT family) ==");
    let query = queries::quantified_path_query(3);
    let pp = pp_of(&query);
    let widths = [8, 12, 14, 14, 14, 14];
    println!(
        "{}",
        row(
            &[
                "n".into(),
                "count".into(),
                "brute us".into(),
                "relalg us".into(),
                "hom-dp us".into(),
                "fpt us".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for n in [8usize, 16, 32, 64, 128] {
        let b = data::random_digraph(&mut StdRng::seed_from_u64(n as u64), n, 0.08);
        let mut cells = vec![n.to_string()];
        let mut count = String::new();
        for engine in all_engines() {
            let runs = if engine.name() == "brute-force" && n > 64 {
                1
            } else {
                3
            };
            let (c, us) = time_engine(engine.as_ref(), &pp, &b, runs);
            count = c;
            cells.push(format!("{us:.0}"));
        }
        cells.insert(1, count);
        println!("{}", row(&cells, &widths));
    }
    println!("  (all engines agree on counts; FPT/hom-dp/relalg scale polynomially)\n");

    // F1b: the real FPT payoff is in *query-size* scaling — a free path
    // P_k has k+1 liberal variables, so brute force pays |B|^(k+1) while
    // the DP engines stay polynomial.
    println!("== F1b: query-size scaling, free paths P_k on G(8, 0.25) ==");
    let b = data::random_digraph(&mut StdRng::seed_from_u64(99), 8, 0.25);
    let widths = [6, 12, 14, 14, 14];
    println!(
        "{}",
        row(
            &[
                "k".into(),
                "count".into(),
                "brute us".into(),
                "hom-dp us".into(),
                "fpt us".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for k in [2usize, 3, 4, 5, 6] {
        let pp = pp_of(&queries::path_query(k));
        let (count, brute_us) = time_engine(&BruteForceEngine, &pp, &b, 1);
        let (_, dp_us) = time_engine(&HomDpEngine, &pp, &b, 3);
        let (_, fpt_us) = time_engine(&FptEngine, &pp, &b, 3);
        println!(
            "{}",
            row(
                &[
                    k.to_string(),
                    count,
                    format!("{brute_us:.0}"),
                    format!("{dp_us:.0}"),
                    format!("{fpt_us:.0}")
                ],
                &widths
            )
        );
    }
    println!("  (brute force pays |B|^(k+1); the DP engines stay flat — the FPT crossover)\n");
}

/// F2 — #Clique-hardness (Theorem 3.2 case 3): counting k-cliques by
/// query counting vs the direct graph algorithm.
fn f2_sharp_clique_hardness() {
    println!("== F2: k-clique counting via answer counting (case 3) ==");
    let g = epq_graph::generators::random_gnp(30, 0.4, &mut StdRng::seed_from_u64(7));
    let widths = [6, 12, 16, 16];
    println!(
        "{}",
        row(
            &[
                "k".into(),
                "#k-cliques".into(),
                "query-count us".into(),
                "graph-alg us".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for k in 2..=5usize {
        let direct = cliques::count_k_cliques(&g, k);
        let via_query = epq_counting::clique::count_cliques_via_answers(&g, k, &FptEngine);
        assert_eq!(via_query.to_u64().unwrap() as u128, direct);
        let query_us = time_us(1, || {
            let _ = epq_counting::clique::count_cliques_via_answers(&g, k, &FptEngine);
        });
        let graph_us = time_us(3, || {
            let _ = cliques::count_k_cliques(&g, k);
        });
        println!(
            "{}",
            row(
                &[
                    k.to_string(),
                    direct.to_string(),
                    format!("{query_us:.0}"),
                    format!("{graph_us:.0}")
                ],
                &widths
            )
        );
    }
    println!("  (time grows superpolynomially in k on both sides — the #W[1] wall)\n");
}

/// F3 — the Clique-equivalent regime (case 2): pendant-clique queries.
fn f3_case_two_scaling() {
    println!("== F3: pendant clique W_k(x) (case 2) — FPT in n, hard in k ==");
    let widths = [6, 8, 12, 14];
    println!(
        "{}",
        row(
            &["k".into(), "n".into(), "count".into(), "fpt us".into()],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for k in 2..=4usize {
        let query = queries::pendant_clique_query(k);
        let pp = pp_of(&query);
        for n in [10usize, 20, 40] {
            let g = epq_graph::generators::random_gnp(
                n,
                0.4,
                &mut StdRng::seed_from_u64(100 + n as u64),
            );
            let b = epq_counting::clique::graph_to_structure(&g);
            let (count, us) = time_engine(&FptEngine, &pp, &b, 1);
            println!(
                "{}",
                row(
                    &[k.to_string(), n.to_string(), count, format!("{us:.0}")],
                    &widths
                )
            );
        }
    }
    println!("  (per fixed k, time polynomial in n; the k-dependence is exponential)\n");
}

/// F4 — random UCQ cancellation statistics.
fn f4_random_ucq_cancellation() {
    println!("== F4: phi* cancellation on random UCQs (s = 3 disjuncts) ==");
    let sig = data::digraph_signature();
    let mut survivors = Vec::new();
    let mut tw_drops = 0usize;
    let samples = 40;
    for seed in 0..samples as u64 {
        let q = queries::random_ucq(&mut StdRng::seed_from_u64(seed), 3, 3, 2, 0.2);
        let ds = dnf::disjuncts(&q, &sig).unwrap();
        let raw = inclusion_exclusion_terms(&ds);
        let star_terms = star(&ds);
        survivors.push(star_terms.len());
        let tw = |pp: &PpFormula| {
            epq_graph::treewidth_exact(&pp.structure().gaifman_graph()).unwrap_or(99)
        };
        let raw_max = raw.iter().map(|t| tw(&t.formula)).max().unwrap_or(0);
        let star_max = star_terms.iter().map(|t| tw(&t.formula)).max().unwrap_or(0);
        if star_max < raw_max {
            tw_drops += 1;
        }
    }
    let avg: f64 = survivors.iter().sum::<usize>() as f64 / samples as f64;
    let min = survivors.iter().min().unwrap();
    let max = survivors.iter().max().unwrap();
    println!("  raw terms per query: 7; surviving phi* terms: avg {avg:.2}, min {min}, max {max}");
    println!("  queries where cancellation strictly lowered max treewidth: {tw_drops}/{samples}\n");
}
