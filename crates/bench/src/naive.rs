//! The seed data layout of `epq_relalg::Relation`, kept as a measured
//! baseline.
//!
//! This is the nested-`Vec` relation the workspace shipped before the
//! flat arena layout landed: `Vec<Vec<u32>>` rows (one heap allocation
//! per row), hash joins keyed on per-row `Vec<u32>` keys (one more
//! allocation per build *and* probe row), linear schema-intersection
//! scans per column, and a union that clones every row and re-sorts the
//! whole set. The `P3` experiment and the `relalg` bench suite run it
//! head-to-head against the flat layout on identical inputs: the
//! old-vs-new medians in `BENCH_relalg.json` come from here, and any
//! row-set disagreement fails the experiment — the baseline doubles as
//! a correctness oracle for the rewrite.
//!
//! Deliberately **not** optimized. Fixes belong in `epq_relalg`; this
//! module only changes if the seed semantics were wrong.

use std::collections::{BTreeSet, HashMap};

/// The seed relation: schema plus sorted, deduplicated nested-`Vec`
/// rows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaiveRelation {
    schema: Vec<u32>,
    rows: Vec<Vec<u32>>,
}

impl NaiveRelation {
    /// Builds a relation, deduplicating and sorting rows.
    ///
    /// # Panics
    /// Panics if the schema has duplicate columns or a row has the
    /// wrong width.
    pub fn new(schema: Vec<u32>, mut rows: Vec<Vec<u32>>) -> Self {
        let unique: BTreeSet<u32> = schema.iter().copied().collect();
        assert_eq!(unique.len(), schema.len(), "duplicate column in schema");
        for row in &rows {
            assert_eq!(row.len(), schema.len(), "row width mismatch");
        }
        rows.sort_unstable();
        rows.dedup();
        NaiveRelation { schema, rows }
    }

    /// Column identifiers.
    pub fn schema(&self) -> &[u32] {
        &self.schema
    }

    /// The rows (sorted, deduplicated).
    pub fn rows(&self) -> &[Vec<u32>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Natural join on shared columns — the seed hash join: per-column
    /// `contains` scans to find the shared schema, then a key `Vec`
    /// allocated per build row and per probe row, and a cloned output
    /// row per match.
    pub fn join(&self, other: &NaiveRelation) -> NaiveRelation {
        let (build, probe) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let shared: Vec<u32> = build
            .schema
            .iter()
            .copied()
            .filter(|c| probe.schema.contains(c))
            .collect();
        let build_key: Vec<usize> = shared
            .iter()
            .map(|c| build.schema.iter().position(|x| x == c).unwrap())
            .collect();
        let probe_key: Vec<usize> = shared
            .iter()
            .map(|c| probe.schema.iter().position(|x| x == c).unwrap())
            .collect();
        let probe_extra: Vec<usize> = (0..probe.schema.len())
            .filter(|&i| !shared.contains(&probe.schema[i]))
            .collect();
        let mut schema = build.schema.clone();
        schema.extend(probe_extra.iter().map(|&i| probe.schema[i]));

        let mut table: HashMap<Vec<u32>, Vec<&Vec<u32>>> = HashMap::new();
        for row in &build.rows {
            let key: Vec<u32> = build_key.iter().map(|&i| row[i]).collect();
            table.entry(key).or_default().push(row);
        }
        let mut rows = Vec::new();
        for row in &probe.rows {
            let key: Vec<u32> = probe_key.iter().map(|&i| row[i]).collect();
            if let Some(matches) = table.get(&key) {
                for b in matches {
                    let mut out = (*b).clone();
                    out.extend(probe_extra.iter().map(|&i| row[i]));
                    rows.push(out);
                }
            }
        }
        NaiveRelation::new(schema, rows)
    }

    /// Projection onto `columns` (with deduplication).
    ///
    /// # Panics
    /// Panics if a requested column is absent.
    pub fn project(&self, columns: &[u32]) -> NaiveRelation {
        let positions: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema
                    .iter()
                    .position(|x| x == c)
                    .unwrap_or_else(|| panic!("column {c} not in schema"))
            })
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|row| positions.iter().map(|&i| row[i]).collect())
            .collect();
        NaiveRelation::new(columns.to_vec(), rows)
    }

    /// Set union — the seed version: clone every row of `self`, append
    /// the reordered rows of `other`, and re-sort the whole set.
    ///
    /// # Panics
    /// Panics if a column of `self` is absent from `other`.
    pub fn union(&self, other: &NaiveRelation) -> NaiveRelation {
        let reordered = other.project(&self.schema);
        let mut rows = self.rows.clone();
        rows.extend(reordered.rows);
        NaiveRelation::new(self.schema.clone(), rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_semantics_hold() {
        let r = NaiveRelation::new(vec![0, 1], vec![vec![1, 2], vec![3, 4], vec![1, 2]]);
        assert_eq!(r.len(), 2);
        let s = NaiveRelation::new(vec![1, 2], vec![vec![2, 5], vec![2, 6]]);
        let j = r.join(&s);
        assert_eq!(j.schema(), &[0, 1, 2]);
        assert_eq!(j.rows(), &[vec![1, 2, 5], vec![1, 2, 6]]);
        assert_eq!(j.project(&[0]).rows(), &[vec![1]]);
        assert!(!j.union(&j).is_empty());
    }
}
