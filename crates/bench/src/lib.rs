//! # epq-bench — benchmark harness and experiment runner
//!
//! Crate S9 of the `epq` workspace (see `DESIGN.md`).
//!
//! Two entry points:
//!
//! * the **`experiments` binary** (`cargo run -p epq-bench --release --bin
//!   experiments -- [ids…]`) regenerates every table and series recorded
//!   in `EXPERIMENTS.md` (T1, E1–E6, F1–F4);
//! * the **Criterion benches** (`cargo bench -p epq-bench`) measure the
//!   same workloads with statistical rigor, one bench target per
//!   experiment group.
//!
//! This library holds the shared workload builders and measurement
//! helpers used by both.

pub mod naive;

use epq_counting::engines::PpCountingEngine;
use epq_logic::query::infer_signature;
use epq_logic::{PpFormula, Query};
use epq_structures::Structure;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Builds the pp view of a query against its inferred signature.
pub fn pp_of(query: &Query) -> PpFormula {
    let sig = infer_signature([query.formula()]).expect("signature infers");
    PpFormula::from_query(query, &sig).expect("query converts")
}

/// Median wall-clock microseconds over `runs` executions of `f`.
pub fn time_us(runs: usize, mut f: impl FnMut()) -> f64 {
    assert!(runs >= 1);
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Times one engine on one (query, structure) pair, returning (count,
/// median µs).
pub fn time_engine(
    engine: &dyn PpCountingEngine,
    pp: &PpFormula,
    b: &Structure,
    runs: usize,
) -> (String, f64) {
    let count = engine.count(pp, b);
    let us = time_us(runs, || {
        let _ = engine.count(pp, b);
    });
    (count.to_string(), us)
}

/// Deterministic random rows for the `P3` layout comparison: `n` rows,
/// column `c` drawn uniformly from `0..vals[c]`. Both layouts (the
/// flat arena and the [`naive`] seed baseline) are built from one call's
/// output, so they measure and agree on identical inputs.
pub fn p3_rows(seed: u64, n: usize, vals: &[u32]) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| vals.iter().map(|&v| rng.gen_range(0..v.max(1))).collect())
        .collect()
}

/// The `P3` join-heavy pair: `R(0,1) ⋈ S(1,2)` with `n` rows per side
/// and a shared-column domain of 211 values, so the expected output is
/// about `n²/211` rows — enough matches that the join inner loop, not
/// the scan, dominates.
#[allow(clippy::type_complexity)]
pub fn p3_join_pair(n: usize) -> ((Vec<u32>, Vec<Vec<u32>>), (Vec<u32>, Vec<Vec<u32>>)) {
    let wide = (n as u32 / 4).max(1);
    (
        (vec![0, 1], p3_rows(1000 + n as u64, n, &[wide, 211])),
        (vec![1, 2], p3_rows(2000 + n as u64, n, &[211, 61])),
    )
}

/// The `P4` streaming workload: a bulk seed phase into `E` (one
/// checkpoint at its end), then a hot stream into `F` with a
/// checkpoint every `checkpoint_every` inserts — the traffic shape
/// where most writes land on one relation while the query also reads
/// a large, quiet one. Shared by the `P4` experiment gate and the
/// `streaming` bench suite so both measure the same pipeline.
pub fn p4_stream_log(
    n: usize,
    seed_inserts: usize,
    stream_inserts: usize,
    checkpoint_every: usize,
    seed: u64,
) -> epq_structures::live::StreamLog {
    let sig = epq_structures::Signature::from_symbols([("E", 2), ("F", 2)]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = epq_workloads::data::random_insert_log(
        &mut rng,
        &sig,
        n,
        seed_inserts,
        seed_inserts.max(1),
        &[1, 0],
    );
    let stream = epq_workloads::data::random_insert_log(
        &mut rng,
        &sig,
        n,
        stream_inserts,
        checkpoint_every,
        &[0, 1],
    );
    log.ops.extend(stream.ops);
    log
}

/// Replays `log` through incremental maintenance
/// (`epq_core::incremental::LiveCount`, up to `threads` workers under
/// the maintainer's joins), returning the checkpoint counts.
pub fn stream_incremental(
    query: &epq_logic::Query,
    log: &epq_structures::live::StreamLog,
    engine: fn() -> Box<dyn PpCountingEngine>,
    threads: usize,
) -> Vec<epq_bigint::Natural> {
    let prepared = epq_core::prepared::PreparedQuery::prepare_uncached(query, &log.signature)
        .expect("query prepares")
        .with_engine(engine());
    let mut live = epq_core::incremental::LiveCount::new(prepared, log.open())
        .expect("signatures match")
        .with_threads(threads);
    log.ops.iter().filter_map(|op| live.apply(op)).collect()
}

/// Replays `log` with prepare-once/recount-each-checkpoint — the best
/// non-incremental pipeline available before the streaming layer —
/// returning the checkpoint counts.
pub fn stream_recount(
    query: &epq_logic::Query,
    log: &epq_structures::live::StreamLog,
    engine: fn() -> Box<dyn PpCountingEngine>,
) -> Vec<epq_bigint::Natural> {
    let prepared = epq_core::prepared::PreparedQuery::prepare_uncached(query, &log.signature)
        .expect("query prepares")
        .with_engine(engine());
    let mut live = log.open();
    let mut counts = Vec::new();
    for op in &log.ops {
        match op {
            epq_structures::live::StreamOp::Insert { rel, tuple } => {
                live.insert_tuple(*rel, tuple);
            }
            epq_structures::live::StreamOp::Checkpoint => {
                counts.push(prepared.count(live.snapshot()));
            }
        }
    }
    counts
}

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, and control characters). The experiments binary emits
/// its machine-readable reports (`BENCH_engines.json`) by hand — the
/// offline container has no serde.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<width$}", width = w))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Prints a rule line matching `widths`.
pub fn rule(widths: &[usize]) -> String {
    "-".repeat(widths.iter().sum::<usize>() + widths.len().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_workloads::{data, queries};

    #[test]
    fn timing_helpers_run() {
        let us = time_us(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(us >= 0.0);
    }

    #[test]
    fn engine_timer_returns_consistent_count() {
        let q = queries::path_query(2);
        let pp = pp_of(&q);
        let b = data::path_structure(5);
        let (count, _) = time_engine(&epq_counting::engines::FptEngine, &pp, &b, 2);
        assert_eq!(count, "3");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }

    #[test]
    fn table_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "a   bb  ");
        assert_eq!(rule(&[3, 4]).len(), 8);
    }
}
