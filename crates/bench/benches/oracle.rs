//! E3/E6 — the oracle interreductions: Vandermonde recovery of pp counts
//! from an ep oracle (Example 4.3 / Theorem 5.20 / Appendix A).

use criterion::{criterion_group, criterion_main, Criterion};
use epq_core::count::{count_ep, count_ep_with};
use epq_core::iex::star;
use epq_core::oracle::{
    find_distinguishing_structure, recover_all_free_counts, recover_plus_counts,
};
use epq_core::plus::plus_decomposition;
use epq_counting::engines::FptEngine;
use epq_logic::dnf;
use epq_logic::parser::parse_query;
use epq_structures::Structure;
use epq_workloads::data;

fn example_4_3_recovery(c: &mut Criterion) {
    let text = "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))";
    let query = parse_query(text).unwrap();
    let sig = data::digraph_signature();
    let ds = dnf::disjuncts(&query, &sig).unwrap();
    let star_terms = star(&ds);
    let b = data::example_4_3_structure();
    let mut group = c.benchmark_group("E3/example-4-3");
    group.sample_size(10);
    group.bench_function("recover-all-free", |bench| {
        bench.iter(|| {
            let mut oracle = |d: &Structure| count_ep(&query, &sig, d, &FptEngine).unwrap();
            recover_all_free_counts(&star_terms, &b, &mut oracle)
        });
    });
    group.finish();
}

fn distinguishing_structure_search(c: &mut Criterion) {
    let text = "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))";
    let query = parse_query(text).unwrap();
    let sig = data::digraph_signature();
    let ds = dnf::disjuncts(&query, &sig).unwrap();
    let star_terms = star(&ds);
    let reps: Vec<&epq_logic::PpFormula> = star_terms.iter().map(|t| &t.formula).collect();
    let mut group = c.benchmark_group("E3/lemma-5-12-search");
    group.sample_size(10);
    group.bench_function("find-distinguishing", |bench| {
        bench.iter(|| find_distinguishing_structure(&reps));
    });
    group.finish();
}

fn general_case_recovery(c: &mut Criterion) {
    let text = "(x, y) := E(x,y) | F(x,y) | (exists a, b . E(a,b) & F(a,b))";
    let query = parse_query(text).unwrap();
    let sig = epq_structures::Signature::from_symbols([("E", 2), ("F", 2)]);
    let dec = plus_decomposition(&query, &sig).unwrap();
    let mut b = Structure::new(sig.clone(), 3);
    b.add_tuple_named("E", &[0, 1]);
    b.add_tuple_named("F", &[1, 2]);
    let mut group = c.benchmark_group("E6/general-case");
    group.sample_size(10);
    group.bench_function("recover-plus", |bench| {
        bench.iter(|| {
            let mut oracle =
                |d: &Structure| count_ep_with(&dec, query.liberal_count(), d, &FptEngine);
            recover_plus_counts(&dec, query.liberal_count(), &b, &mut oracle)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    example_4_3_recovery,
    distinguishing_structure_search,
    general_case_recovery
);
criterion_main!(benches);
