//! F1 — counting-engine scaling on FPT-family queries.
//!
//! Regenerates the engine-comparison series of EXPERIMENTS.md: counting
//! time versus structure size for a fixed bounded-treewidth query, per
//! engine (brute force / relational algebra / #Hom-DP / FPT).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epq_bench::pp_of;
use epq_counting::engines::{
    BruteForceEngine, FptEngine, HomDpEngine, PpCountingEngine, RelalgEngine,
};
use epq_workloads::{data, queries};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engines_on_quantified_path(c: &mut Criterion) {
    let query = queries::quantified_path_query(3);
    let pp = pp_of(&query);
    let mut group = c.benchmark_group("F1/qpath3");
    group.sample_size(10);
    for n in [8usize, 16, 32, 64] {
        let b = data::random_digraph(&mut StdRng::seed_from_u64(n as u64), n, 0.08);
        let engines: Vec<Box<dyn PpCountingEngine>> = vec![
            Box::new(BruteForceEngine),
            Box::new(RelalgEngine),
            Box::new(HomDpEngine),
            Box::new(FptEngine),
        ];
        for engine in engines {
            if engine.name() == "brute-force" && n > 32 {
                continue; // quadratic × hom-check blowup; series recorded up to 32
            }
            group.bench_with_input(BenchmarkId::new(engine.name(), n), &n, |bencher, _| {
                bencher.iter(|| engine.count(&pp, &b));
            });
        }
    }
    group.finish();
}

fn engines_on_free_path(c: &mut Criterion) {
    // Quantifier-free path P_2 (3 liberal variables): #Hom-DP territory.
    let query = queries::path_query(2);
    let pp = pp_of(&query);
    let mut group = c.benchmark_group("F1/path2");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let b = data::random_digraph(&mut StdRng::seed_from_u64(7 + n as u64), n, 0.1);
        for engine in [
            &HomDpEngine as &dyn PpCountingEngine,
            &FptEngine,
            &RelalgEngine,
        ] {
            group.bench_with_input(BenchmarkId::new(engine.name(), n), &n, |bencher, _| {
                bencher.iter(|| engine.count(&pp, &b));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, engines_on_quantified_path, engines_on_free_path);
criterion_main!(benches);
