//! F1 — counting-engine scaling on FPT-family queries, and P1 — the
//! sequential-vs-parallel comparison.
//!
//! Regenerates the engine-comparison series of EXPERIMENTS.md: counting
//! time versus structure size for a fixed bounded-treewidth query, per
//! engine (brute force / relational algebra / #Hom-DP / FPT), plus the
//! `fpt` vs `fpt-par` and `brute-force` vs `brute-par` series at 1, 2,
//! and 4 worker threads (the one-thread parallel engines *are* the
//! sequential algorithms — their bars measure pool overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epq_bench::pp_of;
use epq_counting::engines::{
    BruteForceEngine, FptEngine, HomDpEngine, ParBruteForceEngine, ParFptEngine, PpCountingEngine,
    RelalgEngine,
};
use epq_workloads::{data, queries};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engines_on_quantified_path(c: &mut Criterion) {
    let query = queries::quantified_path_query(3);
    let pp = pp_of(&query);
    let mut group = c.benchmark_group("F1/qpath3");
    group.sample_size(10);
    for n in [8usize, 16, 32, 64] {
        let b = data::random_digraph(&mut StdRng::seed_from_u64(n as u64), n, 0.08);
        let engines: Vec<Box<dyn PpCountingEngine>> = vec![
            Box::new(BruteForceEngine),
            Box::new(RelalgEngine),
            Box::new(HomDpEngine),
            Box::new(FptEngine),
        ];
        for engine in engines {
            if engine.name() == "brute-force" && n > 32 {
                continue; // quadratic × hom-check blowup; series recorded up to 32
            }
            group.bench_with_input(BenchmarkId::new(engine.name(), n), &n, |bencher, _| {
                bencher.iter(|| engine.count(&pp, &b));
            });
        }
    }
    group.finish();
}

fn engines_on_free_path(c: &mut Criterion) {
    // Quantifier-free path P_2 (3 liberal variables): #Hom-DP territory.
    let query = queries::path_query(2);
    let pp = pp_of(&query);
    let mut group = c.benchmark_group("F1/path2");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let b = data::random_digraph(&mut StdRng::seed_from_u64(7 + n as u64), n, 0.1);
        for engine in [
            &HomDpEngine as &dyn PpCountingEngine,
            &FptEngine,
            &RelalgEngine,
        ] {
            group.bench_with_input(BenchmarkId::new(engine.name(), n), &n, |bencher, _| {
                bencher.iter(|| engine.count(&pp, &b));
            });
        }
    }
    group.finish();
}

fn parallel_vs_sequential_fpt(c: &mut Criterion) {
    // P1: the FPT engine against its work-sharded variant on the
    // largest F1 structure sizes. Expect ~linear scaling in threads on
    // multi-core runners; counts are asserted identical up front.
    let query = queries::quantified_path_query(3);
    let pp = pp_of(&query);
    let mut group = c.benchmark_group("P1/qpath3-par");
    group.sample_size(10);
    for n in [64usize, 96] {
        let b = data::random_digraph(&mut StdRng::seed_from_u64(n as u64), n, 0.08);
        let sequential = FptEngine.count(&pp, &b);
        group.bench_with_input(BenchmarkId::new("fpt", n), &n, |bencher, _| {
            bencher.iter(|| FptEngine.count(&pp, &b));
        });
        for threads in [1usize, 2, 4] {
            let engine = ParFptEngine::new(threads);
            assert_eq!(
                engine.count(&pp, &b),
                sequential,
                "fpt-par/{threads} on {n}"
            );
            let id = BenchmarkId::new(format!("fpt-par/{threads}t"), n);
            group.bench_with_input(id, &n, |bencher, _| {
                bencher.iter(|| engine.count(&pp, &b));
            });
        }
    }
    group.finish();
}

fn parallel_vs_sequential_brute(c: &mut Criterion) {
    // P1: the brute enumerator against its range-sharded variant. The
    // assignment sweep is embarrassingly parallel, so this series is
    // the cleanest speedup readout.
    let query = queries::path_query(2);
    let pp = pp_of(&query);
    let mut group = c.benchmark_group("P1/path2-brute-par");
    group.sample_size(10);
    for n in [16usize, 24] {
        let b = data::random_digraph(&mut StdRng::seed_from_u64(7 + n as u64), n, 0.1);
        let sequential = BruteForceEngine.count(&pp, &b);
        group.bench_with_input(BenchmarkId::new("brute-force", n), &n, |bencher, _| {
            bencher.iter(|| BruteForceEngine.count(&pp, &b));
        });
        for threads in [1usize, 2, 4] {
            let engine = ParBruteForceEngine::new(threads);
            assert_eq!(
                engine.count(&pp, &b),
                sequential,
                "brute-par/{threads} on {n}"
            );
            let id = BenchmarkId::new(format!("brute-par/{threads}t"), n);
            group.bench_with_input(id, &n, |bencher, _| {
                bencher.iter(|| engine.count(&pp, &b));
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    engines_on_quantified_path,
    engines_on_free_path,
    parallel_vs_sequential_fpt,
    parallel_vs_sequential_brute
);
criterion_main!(benches);
