//! P3 — relational-algebra micro-benchmarks: the flat arena-backed
//! [`epq_relalg::Relation`] against the seed nested-`Vec` layout
//! ([`epq_bench::naive::NaiveRelation`]) on identical inputs, per
//! primitive (join / project / union) and cardinality.
//!
//! The `experiments` binary's `P3` gate measures the same workloads
//! with agreement checks and writes `BENCH_relalg.json`; this suite is
//! the statistically-rigorous criterion view of the same comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epq_bench::naive::NaiveRelation;
use epq_bench::{p3_join_pair, p3_rows};
use epq_relalg::Relation;

fn join_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("P3/join");
    group.sample_size(10);
    for n in [512usize, 2048, 8192] {
        let ((rs, rr), (ss, sr)) = p3_join_pair(n);
        let flat_r = Relation::new(rs.clone(), rr.clone());
        let flat_s = Relation::new(ss.clone(), sr.clone());
        let naive_r = NaiveRelation::new(rs, rr);
        let naive_s = NaiveRelation::new(ss, sr);
        group.bench_with_input(BenchmarkId::new("flat", n), &n, |b, _| {
            b.iter(|| flat_r.join(&flat_s));
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive_r.join(&naive_s));
        });
    }
    group.finish();
}

fn project_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("P3/project");
    group.sample_size(10);
    for n in [2048usize, 8192, 32768] {
        let schema = vec![0u32, 1, 2, 3];
        let rows = p3_rows(31 + n as u64, n, &[97, 89, 7, 5]);
        let flat = Relation::new(schema.clone(), rows.clone());
        let naive = NaiveRelation::new(schema, rows);
        group.bench_with_input(BenchmarkId::new("flat", n), &n, |b, _| {
            b.iter(|| flat.project(&[3, 1]));
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive.project(&[3, 1]));
        });
    }
    group.finish();
}

fn union_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("P3/union");
    group.sample_size(10);
    for n in [2048usize, 8192, 32768] {
        let schema = vec![0u32, 1];
        let left = p3_rows(77 + n as u64, n, &[251, 127]);
        let right = p3_rows(78 + n as u64, n, &[251, 127]);
        let flat_l = Relation::new(schema.clone(), left.clone());
        let flat_r = Relation::new(schema.clone(), right.clone());
        let naive_l = NaiveRelation::new(schema.clone(), left);
        let naive_r = NaiveRelation::new(schema, right);
        group.bench_with_input(BenchmarkId::new("flat", n), &n, |b, _| {
            b.iter(|| flat_l.union(&flat_r));
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive_l.union(&naive_r));
        });
    }
    group.finish();
}

criterion_group!(benches, join_layouts, project_layouts, union_layouts);
criterion_main!(benches);
