//! T1/E4 — the trichotomy classifier: φ⁺ construction plus treewidth
//! measurement, per query family and per family size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epq_core::classify::classify_query;
use epq_core::plus::plus_decomposition;
use epq_logic::parser::parse_query;
use epq_logic::query::infer_signature;
use epq_workloads::queries;

fn classify_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("T1/classify");
    group.sample_size(10);
    let members: Vec<(&str, epq_logic::Query)> = vec![
        ("path5", queries::path_query(5)),
        ("cycle5", queries::cycle_query(5)),
        ("qpath4", queries::quantified_path_query(4)),
        ("pendant3", queries::pendant_clique_query(3)),
        ("clique4", queries::clique_query(4)),
        ("grid3x3", queries::grid_query(3, 3)),
    ];
    for (label, q) in members {
        let sig = infer_signature([q.formula()]).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| classify_query(&q, &sig).unwrap());
        });
    }
    group.finish();
}

fn plus_construction_vs_disjunct_count(c: &mut Criterion) {
    // E4: φ⁺ construction cost grows with the number of disjuncts
    // (2^s − 1 inclusion–exclusion terms before cancellation).
    let mut group = c.benchmark_group("E4/plus-vs-s");
    group.sample_size(10);
    for s in [2usize, 3, 4] {
        // s rotated path disjuncts over a shared 4-variable frame.
        let vars = ["w", "x", "y", "z"];
        let mut parts = Vec::new();
        for i in 0..s {
            let a = vars[i % 4];
            let b = vars[(i + 1) % 4];
            let c2 = vars[(i + 2) % 4];
            parts.push(format!("(E({a},{b}) & E({b},{c2}))"));
        }
        let text = format!("(w,x,y,z) := {}", parts.join(" | "));
        let q = parse_query(&text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, _| {
            b.iter(|| plus_decomposition(&q, &sig).unwrap());
        });
    }
    group.finish();
}

fn plus_with_sentences(c: &mut Criterion) {
    let text = "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y)) \
                | (exists a, b, c, d . E(a,b) & E(b,c) & E(c,d))";
    let q = parse_query(text).unwrap();
    let sig = infer_signature([q.formula()]).unwrap();
    let mut group = c.benchmark_group("E4/example-5-21");
    group.sample_size(10);
    group.bench_function("theta-plus", |b| {
        b.iter(|| plus_decomposition(&q, &sig).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    classify_families,
    plus_construction_vs_disjunct_count,
    plus_with_sentences
);
criterion_main!(benches);
