//! F2/F3 — the hardness side of the trichotomy.
//!
//! F2: counting k-cliques through answer counting (case 3 — the time
//! grows superpolynomially in k). F3: the pendant-clique family (case 2 —
//! polynomial in |B| for fixed k, exponential in k).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epq_bench::pp_of;
use epq_counting::clique::{count_cliques_via_answers, graph_to_structure};
use epq_counting::engines::FptEngine;
use epq_graph::generators::random_gnp;
use epq_workloads::queries;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn clique_counting_in_k(c: &mut Criterion) {
    let g = random_gnp(24, 0.4, &mut StdRng::seed_from_u64(7));
    let mut group = c.benchmark_group("F2/clique-count-vs-k");
    group.sample_size(10);
    for k in 2..=4usize {
        group.bench_with_input(BenchmarkId::new("via-answers", k), &k, |bencher, &k| {
            bencher.iter(|| count_cliques_via_answers(&g, k, &FptEngine));
        });
        group.bench_with_input(BenchmarkId::new("graph-alg", k), &k, |bencher, &k| {
            bencher.iter(|| epq_graph::cliques::count_k_cliques(&g, k));
        });
    }
    group.finish();
}

fn pendant_clique_in_n(c: &mut Criterion) {
    // Case 2: fixed k = 3, growing n — polynomial scaling in n.
    let query = queries::pendant_clique_query(3);
    let pp = pp_of(&query);
    let mut group = c.benchmark_group("F3/pendant-k3-vs-n");
    group.sample_size(10);
    for n in [10usize, 20, 40] {
        let g = random_gnp(n, 0.4, &mut StdRng::seed_from_u64(100 + n as u64));
        let b = graph_to_structure(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| {
                use epq_counting::engines::PpCountingEngine;
                FptEngine.count(&pp, &b)
            });
        });
    }
    group.finish();
}

fn pendant_clique_in_k(c: &mut Criterion) {
    // Case 2: fixed n, growing k — the parameter dependence.
    let g = random_gnp(16, 0.5, &mut StdRng::seed_from_u64(3));
    let b = graph_to_structure(&g);
    let mut group = c.benchmark_group("F3/pendant-n16-vs-k");
    group.sample_size(10);
    for k in 2..=4usize {
        let query = queries::pendant_clique_query(k);
        let pp = pp_of(&query);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bencher, _| {
            bencher.iter(|| {
                use epq_counting::engines::PpCountingEngine;
                FptEngine.count(&pp, &b)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    clique_counting_in_k,
    pendant_clique_in_n,
    pendant_clique_in_k
);
criterion_main!(benches);
