//! E5 — the counting-equivalence decision procedure (Theorem 5.4) and
//! semi-counting equivalence (Theorem 5.9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epq_core::equivalence::{counting_equivalent, semi_counting_equivalent};
use epq_logic::parser::parse_query;
use epq_logic::PpFormula;
use epq_workloads::{data, queries};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pp(text: &str) -> PpFormula {
    PpFormula::from_query(&parse_query(text).unwrap(), &data::digraph_signature()).unwrap()
}

fn curated_pairs(c: &mut Criterion) {
    let pairs = [
        ("equiv-rename", "E(x,y) & E(y,z)", "E(a,b) & E(b,c)"),
        ("inequiv-shape", "E(x,y) & E(y,z)", "E(a,b) & E(a,c)"),
        (
            "equiv-quantified",
            "(x) := exists u . E(x,u)",
            "(y) := exists v . E(y,v)",
        ),
    ];
    let mut group = c.benchmark_group("E5/decision");
    group.sample_size(20);
    for (label, ta, tb) in pairs {
        let a = pp(ta);
        let b = pp(tb);
        group.bench_function(label, |bench| {
            bench.iter(|| counting_equivalent(&a, &b));
        });
    }
    group.finish();
}

fn growing_liberal_sets(c: &mut Criterion) {
    // The decision enumerates liberal bijections: measure growth with k
    // on path queries (pruning keeps it tame).
    let mut group = c.benchmark_group("E5/decision-vs-k");
    group.sample_size(10);
    for k in [2usize, 4, 6] {
        let a = epq_bench::pp_of(&queries::path_query(k));
        let b = epq_bench::pp_of(&queries::path_query(k));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| counting_equivalent(&a, &b));
        });
    }
    group.finish();
}

fn semi_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5/semi-counting");
    group.sample_size(20);
    let a = pp("(x,y) := E(x,y)");
    let b = pp("(x,y) := exists p, q . E(x,y) & E(p,q)");
    group.bench_function("hat-then-decide", |bench| {
        bench.iter(|| semi_counting_equivalent(&a, &b));
    });
    group.finish();
}

fn random_pairs(c: &mut Criterion) {
    let sig = data::digraph_signature();
    let pairs: Vec<(PpFormula, PpFormula)> = (0..8u64)
        .map(|seed| {
            let qa = queries::random_cq(&mut StdRng::seed_from_u64(seed), 3, 3, 0.3);
            let qb = queries::random_cq(&mut StdRng::seed_from_u64(seed + 50), 3, 3, 0.3);
            (
                PpFormula::from_query(&qa, &sig).unwrap(),
                PpFormula::from_query(&qb, &sig).unwrap(),
            )
        })
        .collect();
    let mut group = c.benchmark_group("E5/random-batch");
    group.sample_size(10);
    group.bench_function("decide-8-pairs", |bench| {
        bench.iter(|| {
            pairs
                .iter()
                .filter(|(a, b)| counting_equivalent(a, b))
                .count()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    curated_pairs,
    growing_liberal_sets,
    semi_counting,
    random_pairs
);
criterion_main!(benches);
