//! P4 — streaming maintenance: incremental `LiveCount` vs
//! prepare-once/recount-each-checkpoint on the same insert log, plus
//! the steady-state cost of a saturated (sentence-latched) maintainer.
//!
//! The replay pipelines and the seed-then-stream workload builder are
//! shared with the `P4` experiment gate (`epq_bench::{p4_stream_log,
//! stream_incremental, stream_recount}`), so the suite and the gate
//! always measure the same thing.

use criterion::{criterion_group, criterion_main, Criterion};
use epq_bench::{p4_stream_log, stream_incremental, stream_recount};
use epq_core::incremental::LiveCount;
use epq_core::prepared::PreparedQuery;
use epq_counting::engines::{PpCountingEngine, RelalgEngine};
use epq_logic::parser::parse_query;
use epq_logic::Query;
use epq_structures::live::StreamLog;
use epq_structures::Signature;
use epq_workloads::data;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn relalg() -> Box<dyn PpCountingEngine> {
    Box::new(RelalgEngine)
}

/// The P4 workload shape at bench size: a bulk seed phase into `E`,
/// then a hot `F` stream with periodic checkpoints.
fn workload() -> (Query, StreamLog) {
    let query = parse_query("(x,y,z) := (E(x,y) & E(y,z)) | (F(x,y) & F(y,z))").unwrap();
    (query, p4_stream_log(32, 700, 120, 20, 17))
}

fn incremental_vs_recount(c: &mut Criterion) {
    let (query, log) = workload();
    let mut group = c.benchmark_group("P4/stream");
    group.sample_size(10);
    group.bench_function("incremental", |b| {
        b.iter(|| stream_incremental(&query, &log, relalg, 1));
    });
    group.bench_function("recount", |b| {
        b.iter(|| stream_recount(&query, &log, relalg));
    });
    group.finish();
}

fn saturated_steady_state(c: &mut Criterion) {
    // Once a sentence disjunct holds, reconciliation is O(1): the
    // count is pinned at |B|^s by the monotone latch.
    let query = parse_query("(x, y) := E(x,y) | (exists a . F(a,a))").unwrap();
    let sig = Signature::from_symbols([("E", 2), ("F", 2)]);
    let log = {
        let mut rng = StdRng::seed_from_u64(19);
        data::random_insert_log(&mut rng, &sig, 24, 200, 25, &[3, 1])
    };
    let mut group = c.benchmark_group("P4/saturated");
    group.sample_size(20);
    group.bench_function("latched-replay", |b| {
        b.iter(|| {
            let prepared = PreparedQuery::prepare_uncached(&query, &log.signature)
                .unwrap()
                .with_engine(relalg());
            let mut live = LiveCount::new(prepared, log.open()).unwrap();
            // The very first F loop latches the sentence; everything
            // after is the O(1) steady state.
            live.insert_tuple_named("F", &[0, 0]);
            log.ops
                .iter()
                .filter_map(|op| live.apply(op))
                .collect::<Vec<_>>()
        });
    });
    group.finish();
}

criterion_group!(benches, incremental_vs_recount, saturated_steady_state);
criterion_main!(benches);
