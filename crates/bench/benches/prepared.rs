//! P2 — the prepared-query architecture: prepare-once vs
//! prepare-per-call amortization, cached vs uncached classification,
//! and batched vs looped counting over many structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epq_core::prepared::{classifier_cache_clear, classify_query_cached, PreparedQuery};
use epq_logic::parser::parse_query;
use epq_logic::query::infer_signature;
use epq_logic::Query;
use epq_workloads::data;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Example 4.2's three-disjunct UCQ: enough `φ*` cancellation work to
/// make the per-query phase visible next to small-structure counting.
fn workload_query() -> (Query, epq_structures::Signature) {
    let q = parse_query("(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))")
        .unwrap();
    let sig = infer_signature([q.formula()]).unwrap();
    (q, sig)
}

fn prepare_once_vs_per_call(c: &mut Criterion) {
    let (q, sig) = workload_query();
    let batch = data::random_digraph_batch(&mut StdRng::seed_from_u64(11), 32, 8, 0.2);
    let mut group = c.benchmark_group("P2/prepare");
    group.sample_size(10);
    group.bench_function("per-call-32", |b| {
        b.iter(|| {
            // The un-amortized pipeline: the per-query phase rebuilt
            // for every structure (cache bypassed).
            batch
                .iter()
                .map(|s| PreparedQuery::prepare_uncached(&q, &sig).unwrap().count(s))
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("once-32", |b| {
        b.iter(|| {
            let prepared = PreparedQuery::prepare_uncached(&q, &sig).unwrap();
            batch.iter().map(|s| prepared.count(s)).collect::<Vec<_>>()
        });
    });
    group.finish();
}

fn batch_vs_loop(c: &mut Criterion) {
    let (q, sig) = workload_query();
    let batch = data::random_digraph_batch(&mut StdRng::seed_from_u64(13), 32, 12, 0.15);
    let prepared = PreparedQuery::prepare(&q, &sig).unwrap();
    let mut group = c.benchmark_group("P2/batch");
    group.sample_size(10);
    group.bench_function("loop-32", |b| {
        b.iter(|| batch.iter().map(|s| prepared.count(s)).collect::<Vec<_>>());
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("pool-32", threads),
            &threads,
            |b, &threads| {
                b.iter(|| prepared.count_batch(&batch, threads));
            },
        );
    }
    group.finish();
}

fn cached_vs_uncached_classification(c: &mut Criterion) {
    let (q, sig) = workload_query();
    let mut group = c.benchmark_group("P2/classify");
    group.sample_size(10);
    group.bench_function("uncached", |b| {
        b.iter(|| {
            classifier_cache_clear();
            classify_query_cached(&q, &sig).unwrap()
        });
    });
    // Warm the cache once, then measure the steady state.
    let _ = classify_query_cached(&q, &sig).unwrap();
    group.bench_function("cached", |b| {
        b.iter(|| classify_query_cached(&q, &sig).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    prepare_once_vs_per_call,
    batch_vs_loop,
    cached_vs_uncached_classification
);
criterion_main!(benches);
