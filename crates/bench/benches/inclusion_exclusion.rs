//! E1/E2/F4 — inclusion–exclusion: the expansion itself, the
//! counting-equivalence cancellation, and the measured payoff of
//! evaluating φ* instead of the raw term list (Examples 4.2/5.15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epq_core::iex::{evaluate_signed_sum, inclusion_exclusion_terms, star};
use epq_counting::engines::FptEngine;
use epq_logic::dnf;
use epq_logic::parser::parse_query;
use epq_workloads::{data, queries};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Example 4.2's UCQ (three rotated 2-paths over {w,x,y,z}).
fn example_4_2_disjuncts() -> Vec<epq_logic::PpFormula> {
    let q = parse_query("(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))")
        .unwrap();
    dnf::disjuncts(&q, &data::digraph_signature()).unwrap()
}

fn expansion_and_cancellation(c: &mut Criterion) {
    let ds = example_4_2_disjuncts();
    let mut group = c.benchmark_group("E2/construction");
    group.sample_size(10);
    group.bench_function("raw-expansion", |b| {
        b.iter(|| inclusion_exclusion_terms(&ds));
    });
    group.bench_function("star-with-cancellation", |b| {
        b.iter(|| star(&ds));
    });
    group.finish();
}

fn star_evaluation_payoff(c: &mut Criterion) {
    let ds = example_4_2_disjuncts();
    let raw = inclusion_exclusion_terms(&ds);
    let star_terms = star(&ds);
    let b = data::random_digraph(&mut StdRng::seed_from_u64(42), 32, 0.12);
    let mut group = c.benchmark_group("E2/evaluation-G32");
    group.sample_size(10);
    group.bench_function("raw-7-terms", |bench| {
        bench.iter(|| evaluate_signed_sum(&raw, &b, &FptEngine));
    });
    group.bench_function("star-2-terms", |bench| {
        bench.iter(|| evaluate_signed_sum(&star_terms, &b, &FptEngine));
    });
    group.finish();
}

fn random_ucq_star_construction(c: &mut Criterion) {
    let sig = data::digraph_signature();
    let mut group = c.benchmark_group("F4/star-on-random-ucqs");
    group.sample_size(10);
    for s in [2usize, 3, 4] {
        let q = queries::random_ucq(&mut StdRng::seed_from_u64(s as u64), s, 3, 2, 0.2);
        let ds = dnf::disjuncts(&q, &sig).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, _| {
            b.iter(|| star(&ds));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    expansion_and_cancellation,
    star_evaluation_payoff,
    random_ucq_star_construction
);
criterion_main!(benches);
