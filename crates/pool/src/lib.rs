//! # epq-pool — a minimal scoped work pool (std-only)
//!
//! The shared work-sharding substrate of the workspace: the parallel
//! counting engines (`epq-counting`), the pool-parallel relational
//! algebra (`epq-relalg`), and the batched counting API
//! (`epq_core::prepared`) all fan their jobs through this one pool.
//!
//! The container this workspace builds in is offline, so there is no
//! `rayon`; this crate provides the small slice of it those layers
//! need: run a vector of independent jobs on up to `threads` OS
//! threads and collect their results **in job order**. Workers pull
//! jobs from a shared atomic cursor (cheap work stealing), so uneven
//! shards still balance, but scheduling only ever decides *which
//! worker* runs a job — never which result slot it fills. Combined
//! with deterministic shard construction (see `epq_counting::csp` and
//! `epq_counting::brute`), parallel counts are reproducible run to run
//! and thread-count to thread-count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of hardware threads available, with a floor of 1.
///
/// Used as the default shard width by the parallel engines when no
/// explicit `threads` knob is given (the CLI's `--threads` flag).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `jobs` on up to `threads` scoped worker threads, returning the
/// results in job order.
///
/// With `threads <= 1` (or a single job) everything runs inline on the
/// caller's thread — the parallel engines at one thread are *exactly*
/// the sequential algorithms. A panicking job propagates the panic to
/// the caller when the scope joins.
pub fn run_jobs<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let cursor = AtomicUsize::new(0);
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job taken twice");
                let result = job();
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a job")
        })
        .collect()
}

/// Splits `0..total` into at most `shards` contiguous, non-empty,
/// near-equal ranges (deterministically: the first `total % shards`
/// ranges are one longer).
pub fn split_ranges(total: u128, shards: usize) -> Vec<(u128, u128)> {
    if total == 0 || shards == 0 {
        return Vec::new();
    }
    let shards = (shards as u128).min(total);
    let base = total / shards;
    let extra = total % shards;
    let mut out = Vec::with_capacity(shards as usize);
    let mut start = 0u128;
    for i in 0..shards {
        let len = base + u128::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_job_order() {
        for threads in [1usize, 2, 3, 8] {
            let jobs: Vec<_> = (0..17u64).map(|i| move || i * i).collect();
            let got = run_jobs(threads, jobs);
            let want: Vec<u64> = (0..17).map(|i| i * i).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_job_vectors() {
        let none: Vec<fn() -> u32> = Vec::new();
        assert!(run_jobs(4, none).is_empty());
        assert_eq!(run_jobs(4, vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn uneven_jobs_still_complete() {
        // Jobs with wildly different costs: the atomic cursor hands the
        // remaining ones to whichever worker frees up first.
        let jobs: Vec<_> = (0..9u64)
            .map(|i| {
                move || {
                    let spins = if i == 0 { 200_000 } else { 10 };
                    let mut acc = 0u64;
                    for k in 0..spins {
                        acc = acc.wrapping_add(k ^ i);
                    }
                    std::hint::black_box(acc);
                    i
                }
            })
            .collect();
        assert_eq!(run_jobs(3, jobs), (0..9).collect::<Vec<u64>>());
    }

    #[test]
    fn split_ranges_partition_the_interval() {
        for (total, shards) in [(10u128, 3usize), (7, 7), (3, 8), (100, 1), (1, 2)] {
            let ranges = split_ranges(total, shards);
            assert!(ranges.len() <= shards);
            assert_eq!(ranges.first().map(|r| r.0), Some(0));
            assert_eq!(ranges.last().map(|r| r.1), Some(total));
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
                assert!(w[0].0 < w[0].1, "non-empty");
            }
        }
        assert!(split_ranges(0, 4).is_empty());
        assert!(split_ranges(5, 0).is_empty());
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
