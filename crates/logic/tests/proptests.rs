//! Property tests for the logic substrate: parser/printer round-trips,
//! DNF semantic preservation, component/hat laws, and entailment sanity.

use epq_logic::parser::parse_query;
use epq_logic::query::infer_signature;
use epq_logic::{dnf, Atom, Formula, PpFormula, Query, Var};
use epq_structures::{Signature, Structure};
use proptest::prelude::*;
use std::collections::HashMap;

/// Strategy: a random ep-formula over variables v0..v3 and relations
/// E/2, P/1, with bounded depth.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let atom = (0u8..2, 0usize..4, 0usize..4).prop_map(|(rel, a, b)| {
        if rel == 0 {
            Formula::Atom(Atom::new(
                "E",
                vec![Var::new(format!("v{a}")), Var::new(format!("v{b}"))],
            ))
        } else {
            Formula::Atom(Atom::new("P", vec![Var::new(format!("v{a}"))]))
        }
    });
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.and(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.or(r)),
            (0usize..4, inner)
                .prop_map(|(v, f)| { Formula::Exists(Var::new(format!("v{v}")), Box::new(f)) }),
        ]
    })
}

/// Strategy: a random small digraph+unary structure.
fn small_structure() -> impl Strategy<Value = Structure> {
    (1usize..=3, any::<u32>(), any::<u8>()).prop_map(|(n, emask, pmask)| {
        let sig = Signature::from_symbols([("E", 2), ("P", 1)]);
        let mut s = Structure::new(sig, n);
        let mut bit = 0;
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if emask & (1 << (bit % 32)) != 0 {
                    s.add_tuple_named("E", &[u, v]);
                }
                bit += 1;
            }
            if pmask & (1 << u) != 0 {
                s.add_tuple_named("P", &[u]);
            }
        }
        s
    })
}

/// Builds a query when the formula is well-formed (no variable both free
/// and quantified across branches); `None` otherwise.
fn query_of(f: Formula) -> Option<Query> {
    Query::from_formula(f).ok()
}

/// All assignments in `{0..domain}^arity` (one empty assignment for
/// arity 0; none for an empty domain with positive arity).
fn all_assignments(domain: usize, arity: usize) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new()];
    for _ in 0..arity {
        let mut next = Vec::with_capacity(out.len() * domain);
        for prefix in &out {
            for x in 0..domain as u32 {
                let mut a = prefix.clone();
                a.push(x);
                next.push(a);
            }
        }
        out = next;
    }
    out
}

/// Flattens nested ∧/∨ into sorted lists so that structural comparison is
/// modulo associativity and commutativity (Display does not preserve the
/// association of parsed trees, only their meaning).
fn canon(f: &Formula) -> Formula {
    fn flatten_and(f: &Formula, out: &mut Vec<Formula>) {
        match f {
            Formula::And(l, r) => {
                flatten_and(l, out);
                flatten_and(r, out);
            }
            other => out.push(canon(other)),
        }
    }
    fn flatten_or(f: &Formula, out: &mut Vec<Formula>) {
        match f {
            Formula::Or(l, r) => {
                flatten_or(l, out);
                flatten_or(r, out);
            }
            other => out.push(canon(other)),
        }
    }
    match f {
        Formula::And(_, _) => {
            let mut parts = Vec::new();
            flatten_and(f, &mut parts);
            parts.sort_by_key(|p| format!("{p:?}"));
            Formula::conjunction(parts)
        }
        Formula::Or(_, _) => {
            let mut parts = Vec::new();
            flatten_or(f, &mut parts);
            parts.sort_by_key(|p| format!("{p:?}"));
            Formula::disjunction(parts)
        }
        Formula::Exists(v, body) => Formula::Exists(v.clone(), Box::new(canon(body))),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn display_parse_roundtrip(f in formula_strategy()) {
        let Some(q) = query_of(f) else { return Ok(()) };
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        prop_assert_eq!(q.liberal(), reparsed.liberal());
        prop_assert_eq!(canon(q.formula()), canon(reparsed.formula()));
    }

    #[test]
    fn dnf_preserves_satisfaction(f in formula_strategy(), b in small_structure()) {
        let Some(q) = query_of(f) else { return Ok(()) };
        let sig = b.signature().clone();
        if infer_signature([q.formula()]).is_err() {
            return Ok(()); // arity clash with fixed signature: skip
        }
        let ds = match dnf::disjuncts(&q, &sig) {
            Ok(ds) if ds.len() <= 16 => ds,
            _ => return Ok(()),
        };
        // Check agreement on every liberal assignment.
        let liberal = q.liberal().to_vec();
        for assignment in all_assignments(b.universe_size(), liberal.len()) {
            let env: HashMap<Var, u32> = liberal
                .iter()
                .cloned()
                .zip(assignment.iter().copied())
                .collect();
            let direct = q.formula().satisfied_by(&b, &env);
            let via_disjuncts = ds.iter().any(|d| d.satisfied_by(&b, &assignment));
            prop_assert_eq!(direct, via_disjuncts, "assignment {:?}", assignment);
        }
    }

    #[test]
    fn normalization_preserves_counts(f in formula_strategy(), b in small_structure()) {
        let Some(q) = query_of(f) else { return Ok(()) };
        let sig = b.signature().clone();
        let ds = match dnf::disjuncts(&q, &sig) {
            Ok(ds) if ds.len() <= 12 => ds,
            _ => return Ok(()),
        };
        let normalized = dnf::normalize(ds.clone());
        let minimized = dnf::minimize_ucq(ds.clone());
        let count = |set: &[PpFormula]| -> usize {
            match set.first() {
                None => 0,
                Some(first) => all_assignments(b.universe_size(), first.liberal_count())
                    .into_iter()
                    .filter(|a| set.iter().any(|d| d.satisfied_by(&b, a)))
                    .count(),
            }
        };
        let original = count(&ds);
        prop_assert_eq!(count(&normalized), original, "normalize changed the count");
        prop_assert_eq!(count(&minimized), original, "minimize changed the count");
    }

    #[test]
    fn components_cover_all_atoms(f in formula_strategy()) {
        let Some(q) = query_of(f) else { return Ok(()) };
        if !q.is_pp() {
            return Ok(());
        }
        let sig = match infer_signature([q.formula()]) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let pp = PpFormula::from_query(&q, &sig).unwrap();
        let comps = pp.components();
        let total_tuples: usize =
            comps.iter().map(|c| c.structure().tuple_count()).sum();
        prop_assert_eq!(total_tuples, pp.structure().tuple_count());
        let total_elements: usize =
            comps.iter().map(|c| c.structure().universe_size()).sum();
        prop_assert_eq!(total_elements, pp.structure().universe_size());
        let total_liberal: usize = comps.iter().map(|c| c.liberal_count()).sum();
        prop_assert_eq!(total_liberal, pp.liberal_count());
    }

    #[test]
    fn hat_keeps_liberal_components_intact(f in formula_strategy()) {
        let Some(q) = query_of(f) else { return Ok(()) };
        if !q.is_pp() {
            return Ok(());
        }
        let sig = match infer_signature([q.formula()]) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let pp = PpFormula::from_query(&q, &sig).unwrap();
        let hat = pp.hat();
        // Hat never adds tuples and keeps the universe.
        prop_assert!(hat.structure().tuple_count() <= pp.structure().tuple_count());
        prop_assert_eq!(
            hat.structure().universe_size(),
            pp.structure().universe_size()
        );
        // Hat is idempotent.
        let hat2 = hat.hat();
        prop_assert_eq!(hat2.structure(), hat.structure());
    }

    #[test]
    fn entailment_is_reflexive_and_conjunction_strengthens(f in formula_strategy()) {
        let Some(q) = query_of(f) else { return Ok(()) };
        if !q.is_pp() {
            return Ok(());
        }
        let sig = match infer_signature([q.formula()]) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let pp = PpFormula::from_query(&q, &sig).unwrap();
        prop_assert!(pp.entails(&pp));
        // φ ∧ φ ≡ φ; and any conjunction with φ entails φ.
        let doubled = PpFormula::conjoin(&[&pp, &pp]);
        prop_assert!(doubled.entails(&pp));
        prop_assert!(pp.entails(&doubled));
    }
}
