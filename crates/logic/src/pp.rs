//! Prenex primitive positive formulas in their Chandra–Merlin structure
//! view `(A, S)`.
//!
//! A [`PpFormula`] stores the structure **A** whose universe is
//! `lib(φ) ∪ vars(φ)` and whose tuples are the atoms, plus the liberal set
//! `S` (Section 2.1, Example 2.2 of the paper). The canonical layout puts
//! the liberal elements first (indices `0..s`, sorted by variable name)
//! followed by the quantified variables in prefix order — so two
//! pp-formulas over the same liberal *names* have positionally aligned
//! liberal elements, which is what logical entailment (Theorem 2.3) and
//! conjunction glueing rely on.

use crate::formula::{Atom, Formula, Var};
use crate::query::{check_against_signature, LogicError, Query};
use epq_structures::{core, hom, ops, Signature, Structure};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A prenex pp-formula as a pair `(A, S)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PpFormula {
    /// The structure **A** over the query's signature.
    structure: Structure,
    /// names[i] = variable behind universe element i.
    names: Vec<Var>,
    /// Number of liberal elements (they occupy indices `0..liberal_count`,
    /// sorted by name).
    liberal_count: usize,
}

impl PpFormula {
    /// Converts a primitive positive [`Query`] into its structure view.
    ///
    /// The formula is prenexed on the way (quantified variables are renamed
    /// apart where needed). Fails if the query uses disjunction or does not
    /// match `signature`.
    pub fn from_query(query: &Query, signature: &Signature) -> Result<Self, LogicError> {
        if !query.is_pp() {
            return Err(LogicError::new(
                "PpFormula::from_query requires a primitive positive query",
            ));
        }
        check_against_signature(query.formula(), signature)?;
        let mut fresh = FreshNames::new(query.liberal().iter().cloned());
        let mut prefix = Vec::new();
        let mut atoms = Vec::new();
        flatten_pp(
            query.formula(),
            &HashMap::new(),
            &mut fresh,
            &mut prefix,
            &mut atoms,
        );
        Self::from_parts(signature, query.liberal().to_vec(), prefix, &atoms)
    }

    /// Builds a pp-formula from prenex parts: liberal names, quantified
    /// variable names (in prefix order), and atoms.
    pub fn from_parts(
        signature: &Signature,
        liberal: Vec<Var>,
        quantified: Vec<Var>,
        atoms: &[Atom],
    ) -> Result<Self, LogicError> {
        let liberal: BTreeSet<Var> = liberal.into_iter().collect();
        for q in &quantified {
            if liberal.contains(q) {
                return Err(LogicError::new(format!(
                    "variable {q} is both liberal and quantified"
                )));
            }
        }
        let mut names: Vec<Var> = liberal.iter().cloned().collect();
        let liberal_count = names.len();
        let mut index: BTreeMap<Var, u32> = names
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        for q in quantified {
            if index.contains_key(&q) {
                return Err(LogicError::new(format!(
                    "duplicate quantified variable {q}"
                )));
            }
            index.insert(q.clone(), names.len() as u32);
            names.push(q);
        }
        let mut structure = Structure::new(signature.clone(), names.len());
        let mut tuple = Vec::new();
        for atom in atoms {
            let rel = signature.lookup(&atom.relation).ok_or_else(|| {
                LogicError::new(format!("relation {} not in signature", atom.relation))
            })?;
            if signature.arity(rel) != atom.args.len() {
                return Err(LogicError::new(format!(
                    "arity mismatch for relation {}",
                    atom.relation
                )));
            }
            tuple.clear();
            for arg in &atom.args {
                let &i = index.get(arg).ok_or_else(|| {
                    LogicError::new(format!(
                        "atom variable {arg} is neither liberal nor quantified"
                    ))
                })?;
                tuple.push(i);
            }
            structure.add_tuple(rel, &tuple);
        }
        Ok(PpFormula {
            structure,
            names,
            liberal_count,
        })
    }

    /// The underlying structure **A**.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// The signature.
    pub fn signature(&self) -> &Signature {
        self.structure.signature()
    }

    /// Variable name behind universe element `i`.
    pub fn name(&self, i: u32) -> &Var {
        &self.names[i as usize]
    }

    /// All element names (universe order).
    pub fn names(&self) -> &[Var] {
        &self.names
    }

    /// Number of liberal variables.
    pub fn liberal_count(&self) -> usize {
        self.liberal_count
    }

    /// The liberal element indices: always `0..liberal_count`.
    pub fn liberal_indices(&self) -> impl Iterator<Item = u32> {
        0..self.liberal_count as u32
    }

    /// The liberal variable names, sorted.
    pub fn liberal_names(&self) -> &[Var] {
        &self.names[..self.liberal_count]
    }

    /// The quantified variable names (prefix order).
    pub fn quantified_names(&self) -> &[Var] {
        &self.names[self.liberal_count..]
    }

    /// The *free* element indices: liberal elements occurring in an atom.
    pub fn free_indices(&self) -> Vec<u32> {
        let mut occurs = vec![false; self.structure.universe_size()];
        for (rel, _, _) in self.signature().iter() {
            for t in self.structure.relation(rel).tuples() {
                for &e in t {
                    occurs[e as usize] = true;
                }
            }
        }
        (0..self.liberal_count as u32)
            .filter(|&i| occurs[i as usize])
            .collect()
    }

    /// Whether the formula is a sentence (`free(φ) = ∅`).
    pub fn is_sentence(&self) -> bool {
        self.free_indices().is_empty()
    }

    /// Whether the formula is *free* (`free(φ) ≠ ∅`).
    pub fn is_free(&self) -> bool {
        !self.is_sentence()
    }

    /// Whether the formula is *liberal* (`lib(φ) ≠ ∅`).
    pub fn is_liberal(&self) -> bool {
        self.liberal_count > 0
    }

    /// The augmented structure aug(A, S): pins liberal element `i` with the
    /// fresh unary relation `@pin{i}` (Section 2.1). Positions align across
    /// formulas with equal liberal name sets.
    pub fn augmented(&self) -> Structure {
        let pins: Vec<u32> = self.liberal_indices().collect();
        ops::augment(&self.structure, &pins)
    }

    /// The core of the pp-formula: the core of aug(A, S) with the pin
    /// relations stripped, re-canonicalized. Liberal elements always
    /// survive coring (their pins force fixpoints).
    pub fn core(&self) -> PpFormula {
        let aug = self.augmented();
        let (core_aug, map) = core::core_of(&aug);
        // Where did each liberal element land? Pins guarantee they are all
        // present exactly once.
        let mut liberal_new = vec![u32::MAX; self.liberal_count];
        for (new, &old) in map.iter().enumerate() {
            if (old as usize) < self.liberal_count {
                liberal_new[old as usize] = new as u32;
            }
        }
        debug_assert!(liberal_new.iter().all(|&x| x != u32::MAX));
        // Canonical order: liberal (by old order = name order), then rest.
        let mut order: Vec<u32> = liberal_new.clone();
        for new in 0..core_aug.universe_size() as u32 {
            if !liberal_new.contains(&new) {
                order.push(new);
            }
        }
        let (permuted_aug, perm_map) = core_aug.induced_substructure(&order);
        // Strip pin relations: rebuild over the original signature.
        let mut structure = Structure::new(self.signature().clone(), permuted_aug.universe_size());
        for (rel, name, _) in permuted_aug.signature().iter() {
            if name.starts_with(ops::PIN_PREFIX) {
                continue;
            }
            let target = self.signature().lookup(name).expect("same base signature");
            for t in permuted_aug.relation(rel).tuples() {
                structure.add_tuple(target, t);
            }
        }
        let names: Vec<Var> = perm_map
            .iter()
            .map(|&new| self.names[map[new as usize] as usize].clone())
            .collect();
        PpFormula {
            structure,
            names,
            liberal_count: self.liberal_count,
        }
    }

    /// The components of the formula (Section 2.1 "Graphs"): one
    /// pp-formula per connected component of the Gaifman graph of **A**
    /// (isolated liberal variables yield `⊤`-components). For any finite
    /// structure **B**, `|φ(B)| = Π |φᵢ(B)|`.
    pub fn components(&self) -> Vec<PpFormula> {
        let gaifman = self.structure.gaifman_graph();
        gaifman
            .connected_components()
            .into_iter()
            .map(|comp| self.restrict_to(&comp))
            .collect()
    }

    /// The liberal part `φ̂` (Section 5.2): drops every atom lying in a
    /// component without liberal variables, keeping the universe (dangling
    /// quantified variables remain, exactly as in Example 5.8).
    pub fn hat(&self) -> PpFormula {
        let gaifman = self.structure.gaifman_graph();
        let mut keep = vec![false; self.structure.universe_size()];
        for comp in gaifman.connected_components() {
            if comp.iter().any(|&v| (v as usize) < self.liberal_count) {
                for &v in &comp {
                    keep[v as usize] = true;
                }
            }
        }
        let mut structure =
            Structure::new(self.signature().clone(), self.structure.universe_size());
        for (rel, _, _) in self.signature().iter() {
            for t in self.structure.relation(rel).tuples() {
                if t.iter().all(|&e| keep[e as usize]) {
                    structure.add_tuple(rel, t);
                }
            }
        }
        PpFormula {
            structure,
            names: self.names.clone(),
            liberal_count: self.liberal_count,
        }
    }

    /// Restricts to a component `comp` (sorted element indices): liberal
    /// set becomes `S ∩ comp`.
    fn restrict_to(&self, comp: &[u32]) -> PpFormula {
        let (structure, map) = self.structure.induced_substructure(comp);
        let names = map
            .iter()
            .map(|&old| self.names[old as usize].clone())
            .collect();
        let liberal_count = map
            .iter()
            .filter(|&&old| (old as usize) < self.liberal_count)
            .count();
        // `comp` is sorted, and liberal elements have the smallest indices,
        // so the canonical layout is preserved.
        PpFormula {
            structure,
            names,
            liberal_count,
        }
    }

    /// Conjunction of pp-formulas sharing the same liberal name set:
    /// liberal variables are glued by name; quantified variables are
    /// renamed apart. This is the `φ_J = ⋀_{j∈J} φ_j` of the
    /// inclusion–exclusion argument (Section 5.3).
    ///
    /// # Panics
    /// Panics on an empty slice or mismatched liberal sets/signatures.
    pub fn conjoin(parts: &[&PpFormula]) -> PpFormula {
        assert!(!parts.is_empty(), "conjunction of no pp-formulas");
        let first = parts[0];
        for p in &parts[1..] {
            assert_eq!(
                p.liberal_names(),
                first.liberal_names(),
                "conjoin requires equal liberal variable sets"
            );
            assert_eq!(
                p.signature(),
                first.signature(),
                "conjoin requires equal signatures"
            );
        }
        let liberal_count = first.liberal_count;
        let mut names: Vec<Var> = first.liberal_names().to_vec();
        let mut fresh = FreshNames::new(names.iter().cloned());
        // Per part, the universe remap: liberal i ↦ i; quantified ↦ fresh slot.
        let mut total_tuples: Vec<(String, Vec<u32>)> = Vec::new();
        for part in parts {
            let mut remap: Vec<u32> = (0..part.structure.universe_size() as u32).collect();
            for q in part.liberal_count as u32..part.structure.universe_size() as u32 {
                let fresh_name = fresh.fresh(part.name(q));
                remap[q as usize] = names.len() as u32;
                names.push(fresh_name);
            }
            for (rel, rel_name, _) in part.signature().iter() {
                for t in part.structure.relation(rel).tuples() {
                    total_tuples.push((
                        rel_name.to_string(),
                        t.iter().map(|&e| remap[e as usize]).collect(),
                    ));
                }
            }
        }
        let mut structure = Structure::new(first.signature().clone(), names.len());
        for (rel_name, tuple) in &total_tuples {
            structure.add_tuple_named(rel_name, tuple);
        }
        PpFormula {
            structure,
            names,
            liberal_count,
        }
    }

    /// Logical entailment `self ⊨ other` for formulas over the same
    /// liberal variable set: holds iff there is a homomorphism
    /// aug(other) → aug(self) (Theorem 2.3).
    ///
    /// # Panics
    /// Panics if the liberal name sets differ.
    pub fn entails(&self, other: &PpFormula) -> bool {
        assert_eq!(
            self.liberal_names(),
            other.liberal_names(),
            "entailment requires equal liberal variable sets"
        );
        hom::homomorphism_exists(&other.augmented(), &self.augmented())
    }

    /// Logical equivalence over the same liberal variable set
    /// (Theorem 2.3: homomorphic equivalence of augmented structures).
    pub fn logically_equivalent(&self, other: &PpFormula) -> bool {
        self.entails(other) && other.entails(self)
    }

    /// Reconstructs the prenex query: `∃ quantified . ⋀ atoms` with the
    /// stored liberal variables.
    pub fn to_query(&self) -> Query {
        let mut atoms = Vec::new();
        for (rel, name, _) in self.signature().iter() {
            for t in self.structure.relation(rel).tuples() {
                atoms.push(Formula::Atom(Atom::new(
                    name,
                    t.iter().map(|&e| self.names[e as usize].clone()).collect(),
                )));
            }
        }
        let matrix = Formula::conjunction(atoms);
        let formula = self
            .quantified_names()
            .iter()
            .rev()
            .fold(matrix, |acc, v| Formula::Exists(v.clone(), Box::new(acc)));
        Query::new(formula, self.liberal_names().to_vec())
            .expect("pp-formula invariants guarantee a valid query")
    }

    /// Whether an assignment of the liberal variables satisfies the
    /// formula on `b` — i.e. whether it extends to a homomorphism
    /// **A** → **B** (the Chandra–Merlin satisfaction criterion).
    ///
    /// `assignment[i]` is the image of liberal element `i`.
    pub fn satisfied_by(&self, b: &Structure, assignment: &[u32]) -> bool {
        assert_eq!(
            assignment.len(),
            self.liberal_count,
            "assignment arity mismatch"
        );
        let pins: Vec<(u32, u32)> = assignment
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as u32, x))
            .collect();
        hom::homomorphism_exists_pinned(&self.structure, b, &pins)
    }
}

impl fmt::Display for PpFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_query())
    }
}

/// Fresh-name generator avoiding a set of reserved names.
struct FreshNames {
    used: BTreeSet<Var>,
    counter: usize,
}

impl FreshNames {
    fn new(reserved: impl IntoIterator<Item = Var>) -> Self {
        FreshNames {
            used: reserved.into_iter().collect(),
            counter: 0,
        }
    }

    /// A fresh variable based on `base`'s name.
    fn fresh(&mut self, base: &Var) -> Var {
        if self.used.insert(base.clone()) {
            return base.clone();
        }
        loop {
            self.counter += 1;
            let candidate = Var::new(format!("{}~{}", base.name(), self.counter));
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

/// Flattens a pp formula tree into (quantifier prefix, atom list) with
/// capture-avoiding renaming via `subst`.
fn flatten_pp(
    f: &Formula,
    subst: &HashMap<Var, Var>,
    fresh: &mut FreshNames,
    prefix: &mut Vec<Var>,
    atoms: &mut Vec<Atom>,
) {
    match f {
        Formula::Top => {}
        Formula::Atom(a) => {
            atoms.push(Atom::new(
                a.relation.clone(),
                a.args
                    .iter()
                    .map(|v| subst.get(v).cloned().unwrap_or_else(|| v.clone()))
                    .collect(),
            ));
        }
        Formula::And(l, r) => {
            flatten_pp(l, subst, fresh, prefix, atoms);
            flatten_pp(r, subst, fresh, prefix, atoms);
        }
        Formula::Or(_, _) => unreachable!("flatten_pp called on non-pp formula"),
        Formula::Exists(v, body) => {
            let name = fresh.fresh(v);
            prefix.push(name.clone());
            let mut subst = subst.clone();
            subst.insert(v.clone(), name);
            flatten_pp(body, &subst, fresh, prefix, atoms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::infer_signature;

    fn pp(text_liberal: &[&str], formula: Formula) -> PpFormula {
        let sig = infer_signature([&formula]).unwrap();
        let q = Query::new(formula, text_liberal.iter().map(|&v| Var::new(v))).unwrap();
        PpFormula::from_query(&q, &sig).unwrap()
    }

    /// The running example of the paper (Examples 2.2 / 2.4):
    /// φ(x,x',y,z) = ∃y'∃u∃v∃w (E(x,x') ∧ E(y,y') ∧ F(u,v) ∧ G(u,w)).
    fn example_2_2() -> PpFormula {
        let f = Formula::exists(
            &["y'", "u", "v", "w"],
            Formula::conjunction([
                Formula::atom("E", &["x", "x'"]),
                Formula::atom("E", &["y", "y'"]),
                Formula::atom("F", &["u", "v"]),
                Formula::atom("G", &["u", "w"]),
            ]),
        );
        pp(&["x", "x'", "y", "z"], f)
    }

    #[test]
    fn example_2_2_structure_view() {
        let phi = example_2_2();
        // Universe: 4 liberal + 4 quantified = 8 (as in the paper).
        assert_eq!(phi.structure().universe_size(), 8);
        assert_eq!(phi.liberal_count(), 4);
        assert_eq!(
            phi.liberal_names(),
            &[Var::new("x"), Var::new("x'"), Var::new("y"), Var::new("z")]
        );
        // free(φ) = {x, x', y}: z is liberal but occurs in no atom.
        let free: Vec<&Var> = phi.free_indices().iter().map(|&i| phi.name(i)).collect();
        assert_eq!(free, vec![&Var::new("x"), &Var::new("x'"), &Var::new("y")]);
        assert!(!phi.is_sentence());
    }

    #[test]
    fn example_2_4_components() {
        let phi = example_2_2();
        let comps = phi.components();
        // Four components: {x,x'}, {y,y'}, {z}, {u,v,w} (Example 2.4).
        assert_eq!(comps.len(), 4);
        let mut liberal_sizes: Vec<(usize, usize)> = comps
            .iter()
            .map(|c| (c.liberal_count(), c.structure().universe_size()))
            .collect();
        liberal_sizes.sort_unstable();
        assert_eq!(liberal_sizes, vec![(0, 3), (1, 1), (1, 2), (2, 2)]);
        // The {z} component is ⊤ with one liberal variable.
        let z_comp = comps
            .iter()
            .find(|c| c.liberal_count() == 1 && c.structure().universe_size() == 1)
            .unwrap();
        assert_eq!(z_comp.structure().tuple_count(), 0);
        // The {u,v,w} component is a sentence but not liberal.
        let sentence = comps.iter().find(|c| c.liberal_count() == 0).unwrap();
        assert!(sentence.is_sentence());
        assert!(!sentence.is_liberal());
        assert_eq!(sentence.structure().tuple_count(), 2);
    }

    #[test]
    fn example_5_8_hat() {
        let phi = example_2_2();
        let hat = phi.hat();
        // φ̂ keeps E(x,x') and E(y,y'), drops F(u,v) and G(u,w); the
        // universe (with dangling u,v,w) stays.
        assert_eq!(hat.structure().universe_size(), 8);
        assert_eq!(hat.structure().tuple_count(), 2);
        let e = hat.signature().lookup("F").unwrap();
        assert!(hat.structure().relation(e).is_empty());
    }

    #[test]
    fn prenexing_renames_clashing_binders() {
        // (∃u E(x,u)) ∧ (∃u E(u,x)): the two u's must become distinct.
        let f = Formula::exists(&["u"], Formula::atom("E", &["x", "u"]))
            .and(Formula::exists(&["u"], Formula::atom("E", &["u", "x"])));
        let phi = pp(&["x"], f);
        assert_eq!(phi.structure().universe_size(), 3);
        assert_eq!(phi.quantified_names().len(), 2);
        assert_ne!(phi.quantified_names()[0], phi.quantified_names()[1]);
    }

    #[test]
    fn core_collapses_redundant_parts() {
        // φ(x) = ∃u,v . E(x,u) ∧ E(x,v): core is E(x,u).
        let f = Formula::exists(
            &["u", "v"],
            Formula::atom("E", &["x", "u"]).and(Formula::atom("E", &["x", "v"])),
        );
        let phi = pp(&["x"], f);
        let core = phi.core();
        assert_eq!(core.structure().universe_size(), 2);
        assert_eq!(core.structure().tuple_count(), 1);
        assert_eq!(core.liberal_count(), 1);
        assert_eq!(core.name(0), &Var::new("x"));
        // Core is logically equivalent to the original.
        assert!(core.logically_equivalent(&phi));
    }

    #[test]
    fn core_keeps_liberal_only_variables() {
        // φ(x, z) = E(x,x): z is liberal, occurs nowhere; must survive.
        let phi = pp(&["x", "z"], Formula::atom("E", &["x", "x"]));
        let core = phi.core();
        assert_eq!(core.liberal_count(), 2);
        assert!(core.names().contains(&Var::new("z")));
    }

    #[test]
    fn entailment_example() {
        // ψ(x,y) = E(x,y) ∧ E(y,x) entails φ(x,y) = E(x,y).
        let psi = pp(
            &["x", "y"],
            Formula::atom("E", &["x", "y"]).and(Formula::atom("E", &["y", "x"])),
        );
        let phi = pp(&["x", "y"], Formula::atom("E", &["x", "y"]));
        assert!(psi.entails(&phi));
        assert!(!phi.entails(&psi));
        assert!(!psi.logically_equivalent(&phi));
        assert!(phi.logically_equivalent(&phi));
    }

    #[test]
    fn entailment_distinguishes_liberal_only_variables() {
        // θ(x,y) = E(x,y) vs ψ(x,y,z) = E(x,y): different liberal sets.
        // (Example 2.1's pitfall — they are *not* comparable.)
        let theta = pp(&["x", "y"], Formula::atom("E", &["x", "y"]));
        let psi = pp(&["x", "y", "z"], Formula::atom("E", &["x", "y"]));
        assert_ne!(theta.liberal_names(), psi.liberal_names());
    }

    #[test]
    fn conjoin_glues_liberal_and_renames_quantified() {
        // φ1(x) = ∃u E(x,u), φ2(x) = ∃u E(u,x).
        let p1 = pp(
            &["x"],
            Formula::exists(&["u"], Formula::atom("E", &["x", "u"])),
        );
        let p2 = pp(
            &["x"],
            Formula::exists(&["u"], Formula::atom("E", &["u", "x"])),
        );
        let c = PpFormula::conjoin(&[&p1, &p2]);
        assert_eq!(c.liberal_count(), 1);
        assert_eq!(c.structure().universe_size(), 3); // x + two distinct u's
        assert_eq!(c.structure().tuple_count(), 2);
    }

    #[test]
    fn satisfaction_via_hom_extension() {
        // φ(x) = ∃u . E(x,u) on the path 0→1→2.
        let phi = pp(
            &["x"],
            Formula::exists(&["u"], Formula::atom("E", &["x", "u"])),
        );
        let mut b = Structure::new(phi.signature().clone(), 3);
        b.add_tuple_named("E", &[0, 1]);
        b.add_tuple_named("E", &[1, 2]);
        assert!(phi.satisfied_by(&b, &[0]));
        assert!(phi.satisfied_by(&b, &[1]));
        assert!(!phi.satisfied_by(&b, &[2]));
    }

    #[test]
    fn to_query_roundtrip() {
        let phi = example_2_2();
        let q = phi.to_query();
        let sig = phi.signature().clone();
        let back = PpFormula::from_query(&q, &sig).unwrap();
        // Structures coincide (atoms sorted; layout canonical).
        assert!(back.logically_equivalent(&phi));
        assert_eq!(back.liberal_names(), phi.liberal_names());
        assert_eq!(
            back.structure().tuple_count(),
            phi.structure().tuple_count()
        );
    }

    #[test]
    fn sentence_detection() {
        let theta = pp(
            &["x"],
            Formula::exists(&["a", "b"], Formula::atom("E", &["a", "b"])),
        );
        // x is liberal but free(θ) = ∅: a sentence with liberal variables.
        assert!(theta.is_sentence());
        assert!(theta.is_liberal());
    }
}
