//! ∃-components and the contract graph (Section 2.4 of the paper).
//!
//! For a prenex pp-formula `(A, S)` with graph `G`:
//!
//! * an **∃-component** is `G[V′]` where `V` is the vertex set of a
//!   connected component of `G[A ∖ S]` and `V′ = V ∪ {s ∈ S : s has an
//!   edge into V}`;
//! * **contract(A, S)** is the graph on `S` obtained from `G[S]` by adding
//!   an edge between any two vertices appearing together in an
//!   ∃-component.
//!
//! The paper defines these on the *core* of the formula; callers that need
//! the paper's conditions apply [`PpFormula::core`] first (the trichotomy
//! classifier in `epq-core` does). The same machinery also drives the FPT
//! counting algorithm, where each ∃-component becomes a derived constraint
//! over its boundary — a clique in the contract graph, hence of bounded
//! size whenever the contract graph has bounded treewidth.

use crate::pp::PpFormula;
use epq_graph::Graph;
use std::collections::BTreeSet;

/// An ∃-component of a pp-formula `(A, S)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExistentialComponent {
    /// The quantified (non-liberal) vertices of the component — a connected
    /// component of `G[A ∖ S]`.
    pub interior: Vec<u32>,
    /// The liberal vertices with an edge into the interior (sorted).
    pub boundary: Vec<u32>,
}

/// Computes the ∃-components of `pp` (on the formula as given — core it
/// first for the paper's definition).
pub fn existential_components(pp: &PpFormula) -> Vec<ExistentialComponent> {
    let gaifman = pp.structure().gaifman_graph();
    let s = pp.liberal_count() as u32;
    let quantified: Vec<u32> = (s..pp.structure().universe_size() as u32).collect();
    let (sub, map) = gaifman.induced_subgraph(&quantified);
    sub.connected_components()
        .into_iter()
        .map(|comp| {
            let interior: Vec<u32> = comp.iter().map(|&v| map[v as usize]).collect();
            let mut boundary: BTreeSet<u32> = BTreeSet::new();
            for &v in &interior {
                for &w in gaifman.neighbors(v) {
                    if w < s {
                        boundary.insert(w);
                    }
                }
            }
            ExistentialComponent {
                interior,
                boundary: boundary.into_iter().collect(),
            }
        })
        .collect()
}

/// Computes contract(A, S) for `pp` (on the formula as given — core it
/// first for the paper's definition). The result is a graph on the liberal
/// vertices `0..liberal_count`.
pub fn contract_graph(pp: &PpFormula) -> Graph {
    let gaifman = pp.structure().gaifman_graph();
    let s = pp.liberal_count();
    let mut g = Graph::new(s);
    // G[S] edges.
    for u in 0..s as u32 {
        for &w in gaifman.neighbors(u) {
            if (w as usize) < s && u < w {
                g.add_edge(u, w);
            }
        }
    }
    // Boundary cliques of ∃-components.
    for comp in existential_components(pp) {
        for (i, &a) in comp.boundary.iter().enumerate() {
            for &b in &comp.boundary[i + 1..] {
                g.add_edge(a, b);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Formula, Var};
    use crate::query::{infer_signature, Query};

    fn pp(liberal: &[&str], f: Formula) -> PpFormula {
        let sig = infer_signature([&f]).unwrap();
        let q = Query::new(f, liberal.iter().map(|&v| Var::new(v))).unwrap();
        PpFormula::from_query(&q, &sig).unwrap()
    }

    #[test]
    fn quantifier_free_formula_has_no_existential_components() {
        let phi = pp(
            &["x", "y", "z"],
            Formula::atom("E", &["x", "y"]).and(Formula::atom("E", &["y", "z"])),
        );
        assert!(existential_components(&phi).is_empty());
        // Contract graph = G[S]: path x-y-z.
        let g = contract_graph(&phi);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn quantified_star_contracts_to_clique() {
        // φ(x1,x2,x3) = ∃u . E(x1,u) ∧ E(x2,u) ∧ E(x3,u): the ∃-component
        // {u} has boundary {x1,x2,x3}, so contract is K3.
        let f = Formula::exists(
            &["u"],
            Formula::conjunction([
                Formula::atom("E", &["x1", "u"]),
                Formula::atom("E", &["x2", "u"]),
                Formula::atom("E", &["x3", "u"]),
            ]),
        );
        let phi = pp(&["x1", "x2", "x3"], f);
        let comps = existential_components(&phi);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].interior.len(), 1);
        assert_eq!(comps[0].boundary, vec![0, 1, 2]);
        let g = contract_graph(&phi);
        assert_eq!(g.edge_count(), 3); // triangle on the liberal vertices
    }

    #[test]
    fn separate_existential_parts_stay_separate() {
        // φ(x,y) = (∃u E(x,u)) ∧ (∃v E(y,v)): two ∃-components with
        // singleton boundaries; contract graph has no edges.
        let f = Formula::exists(&["u"], Formula::atom("E", &["x", "u"]))
            .and(Formula::exists(&["v"], Formula::atom("E", &["y", "v"])));
        let phi = pp(&["x", "y"], f);
        let comps = existential_components(&phi);
        assert_eq!(comps.len(), 2);
        for c in &comps {
            assert_eq!(c.boundary.len(), 1);
        }
        assert_eq!(contract_graph(&phi).edge_count(), 0);
    }

    #[test]
    fn quantified_path_bridges_liberal_endpoints() {
        // φ(x,y) = ∃u,v . E(x,u) ∧ E(u,v) ∧ E(v,y): one ∃-component
        // {u,v} with boundary {x,y} → contract edge x—y.
        let f = Formula::exists(
            &["u", "v"],
            Formula::conjunction([
                Formula::atom("E", &["x", "u"]),
                Formula::atom("E", &["u", "v"]),
                Formula::atom("E", &["v", "y"]),
            ]),
        );
        let phi = pp(&["x", "y"], f);
        let comps = existential_components(&phi);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].interior.len(), 2);
        assert_eq!(comps[0].boundary, vec![0, 1]);
        let g = contract_graph(&phi);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn sentence_components_have_empty_boundary() {
        // φ(x) = E(x,x) ∧ ∃a,b . F(a,b).
        let f = Formula::atom("E", &["x", "x"]).and(Formula::exists(
            &["a", "b"],
            Formula::atom("F", &["a", "b"]),
        ));
        let phi = pp(&["x"], f);
        let comps = existential_components(&phi);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].boundary.is_empty());
        assert_eq!(comps[0].interior.len(), 2);
    }

    #[test]
    fn isolated_liberal_vertices_stay_isolated_in_contract() {
        // φ(x, z) = ∃u . E(x,u): z has no edges anywhere.
        let f = Formula::exists(&["u"], Formula::atom("E", &["x", "u"]));
        let phi = pp(&["x", "z"], f);
        let g = contract_graph(&phi);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
    }
}
