//! # epq-logic — existential positive queries as syntax and as structures
//!
//! Substrate crate S4 of the `epq` workspace (see `DESIGN.md`).
//!
//! This crate implements the logical side of Chen & Mengel's paper:
//!
//! * [`formula`] — existential positive formulas (atoms, ∧, ∨, ∃, ⊤) with
//!   free/quantified variable computation and direct satisfaction
//!   evaluation;
//! * [`query`] — a formula paired with its *liberal* variables `lib(φ)`
//!   (a superset of the free variables over which answers are counted —
//!   Section 2.1), plus signature inference;
//! * [`pp`] — prenex primitive positive formulas in their Chandra–Merlin
//!   structure view `(A, S)`, with components, the liberal part `φ̂`,
//!   conjunction glueing, augmented structures, cores, and logical
//!   entailment/equivalence (Theorem 2.3);
//! * [`dnf`] — rewriting an ep-formula into a disjunction of prenex
//!   pp-formulas (the *disjunctive* form) and the paper's *normalization*;
//! * [`contract`] — ∃-components and the contract graph `contract(A, S)`
//!   (Section 2.4), the combinatorial heart of the tractability and
//!   contraction conditions;
//! * [`parser`] — a text syntax for queries.
//!
//! ## Query syntax
//!
//! ```text
//! (w, x, y, z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))
//! ```
//!
//! The head lists the liberal variables (it may be omitted, defaulting to
//! the free variables). Connectives: `&`, `|`, `exists v1, v2 . φ`,
//! parentheses, `true`.

pub mod contract;
pub mod dnf;
pub mod formula;
pub mod parser;
pub mod pp;
pub mod query;

pub use formula::{Atom, Formula, Var};
pub use pp::PpFormula;
pub use query::Query;
