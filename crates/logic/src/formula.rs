//! Existential positive formulas.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use epq_structures::Structure;

/// A variable name. `~` is reserved for internally generated fresh
/// variables (the parser rejects it in user input).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub String);

impl Var {
    /// Builds a variable from anything string-like.
    pub fn new(name: impl Into<String>) -> Self {
        Var(name.into())
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// An atom `R(v₁, …, vₖ)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Relation symbol name.
    pub relation: String,
    /// Argument variables (repetitions allowed).
    pub args: Vec<Var>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(relation: impl Into<String>, args: Vec<Var>) -> Self {
        Atom {
            relation: relation.into(),
            args,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// An existential positive formula: atoms, ∧, ∨, ∃, and the empty
/// conjunction ⊤ (Section 2.1 of the paper).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The empty conjunction (true).
    Top,
    /// A predicate application.
    Atom(Atom),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Existential quantification of a single variable.
    Exists(Var, Box<Formula>),
}

impl Formula {
    /// Convenience: an atom formula.
    pub fn atom(relation: impl Into<String>, args: &[&str]) -> Formula {
        Formula::Atom(Atom::new(
            relation,
            args.iter().map(|&a| Var::new(a)).collect(),
        ))
    }

    /// Convenience: conjunction of two formulas.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Convenience: disjunction of two formulas.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Convenience: existential quantification over several variables.
    pub fn exists(vars: &[&str], body: Formula) -> Formula {
        vars.iter()
            .rev()
            .fold(body, |acc, &v| Formula::Exists(Var::new(v), Box::new(acc)))
    }

    /// Conjunction of a list of formulas (`⊤` for the empty list).
    pub fn conjunction(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut iter = parts.into_iter();
        match iter.next() {
            None => Formula::Top,
            Some(first) => iter.fold(first, |acc, f| acc.and(f)),
        }
    }

    /// Disjunction of a non-empty list of formulas.
    ///
    /// # Panics
    /// Panics on an empty list (ep-formulas have no ⊥).
    pub fn disjunction(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut iter = parts.into_iter();
        let first = iter.next().expect("disjunction of no formulas");
        iter.fold(first, |acc, f| acc.or(f))
    }

    /// The free variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Formula::Top => BTreeSet::new(),
            Formula::Atom(a) => a.args.iter().cloned().collect(),
            Formula::And(l, r) | Formula::Or(l, r) => {
                let mut s = l.free_vars();
                s.extend(r.free_vars());
                s
            }
            Formula::Exists(v, f) => {
                let mut s = f.free_vars();
                s.remove(v);
                s
            }
        }
    }

    /// All variables bound by some quantifier (anywhere in the tree).
    pub fn quantified_vars(&self) -> BTreeSet<Var> {
        match self {
            Formula::Top | Formula::Atom(_) => BTreeSet::new(),
            Formula::And(l, r) | Formula::Or(l, r) => {
                let mut s = l.quantified_vars();
                s.extend(r.quantified_vars());
                s
            }
            Formula::Exists(v, f) => {
                let mut s = f.quantified_vars();
                s.insert(v.clone());
                s
            }
        }
    }

    /// All variables appearing in atoms.
    pub fn atom_vars(&self) -> BTreeSet<Var> {
        match self {
            Formula::Top => BTreeSet::new(),
            Formula::Atom(a) => a.args.iter().cloned().collect(),
            Formula::And(l, r) | Formula::Or(l, r) => {
                let mut s = l.atom_vars();
                s.extend(r.atom_vars());
                s
            }
            Formula::Exists(_, f) => f.atom_vars(),
        }
    }

    /// All atoms (in syntactic order).
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            Formula::Top => {}
            Formula::Atom(a) => out.push(a),
            Formula::And(l, r) | Formula::Or(l, r) => {
                l.collect_atoms(out);
                r.collect_atoms(out);
            }
            Formula::Exists(_, f) => f.collect_atoms(out),
        }
    }

    /// Whether the formula is primitive positive (no disjunction).
    pub fn is_pp(&self) -> bool {
        match self {
            Formula::Top | Formula::Atom(_) => true,
            Formula::And(l, r) => l.is_pp() && r.is_pp(),
            Formula::Or(_, _) => false,
            Formula::Exists(_, f) => f.is_pp(),
        }
    }

    /// Whether the formula is a sentence (no free variables).
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Evaluates satisfaction `B, env ⊨ φ` directly on the syntax tree.
    ///
    /// `env` must bind (at least) every free variable. Existential
    /// quantifiers range over the universe of `b`.
    ///
    /// # Panics
    /// Panics if a free variable is unbound or a relation is missing from
    /// `b`'s signature (callers validate against a signature first).
    pub fn satisfied_by(&self, b: &Structure, env: &HashMap<Var, u32>) -> bool {
        match self {
            Formula::Top => true,
            Formula::Atom(a) => {
                let rel = b
                    .signature()
                    .lookup(&a.relation)
                    .unwrap_or_else(|| panic!("unknown relation {:?}", a.relation));
                let tuple: Vec<u32> = a
                    .args
                    .iter()
                    .map(|v| *env.get(v).unwrap_or_else(|| panic!("unbound variable {v}")))
                    .collect();
                b.has_tuple(rel, &tuple)
            }
            Formula::And(l, r) => l.satisfied_by(b, env) && r.satisfied_by(b, env),
            Formula::Or(l, r) => l.satisfied_by(b, env) || r.satisfied_by(b, env),
            Formula::Exists(v, f) => {
                let mut env = env.clone();
                (0..b.universe_size() as u32).any(|e| {
                    env.insert(v.clone(), e);
                    f.satisfied_by(b, &env)
                })
            }
        }
    }

    /// Capture-avoiding renaming of free occurrences of `from` to `to`.
    pub fn rename_free(&self, from: &Var, to: &Var) -> Formula {
        match self {
            Formula::Top => Formula::Top,
            Formula::Atom(a) => Formula::Atom(Atom {
                relation: a.relation.clone(),
                args: a
                    .args
                    .iter()
                    .map(|v| if v == from { to.clone() } else { v.clone() })
                    .collect(),
            }),
            Formula::And(l, r) => Formula::And(
                Box::new(l.rename_free(from, to)),
                Box::new(r.rename_free(from, to)),
            ),
            Formula::Or(l, r) => Formula::Or(
                Box::new(l.rename_free(from, to)),
                Box::new(r.rename_free(from, to)),
            ),
            Formula::Exists(v, f) => {
                if v == from {
                    // `from` is shadowed below.
                    Formula::Exists(v.clone(), f.clone())
                } else {
                    Formula::Exists(v.clone(), Box::new(f.rename_free(from, to)))
                }
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Top => write!(f, "true"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::And(l, r) => {
                fmt_operand(f, l, Level::And)?;
                write!(f, " & ")?;
                fmt_operand(f, r, Level::And)
            }
            Formula::Or(l, r) => {
                fmt_operand(f, l, Level::Or)?;
                write!(f, " | ")?;
                fmt_operand(f, r, Level::Or)
            }
            Formula::Exists(v, body) => {
                // Merge nested quantifiers for readability.
                let mut vars = vec![v];
                let mut inner: &Formula = body;
                while let Formula::Exists(w, b) = inner {
                    vars.push(w);
                    inner = b;
                }
                write!(f, "exists ")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, " . ")?;
                fmt_operand(f, inner, Level::Exists)
            }
        }
    }
}

#[derive(PartialEq)]
enum Level {
    Or,
    And,
    Exists,
}

fn fmt_operand(f: &mut fmt::Formatter<'_>, inner: &Formula, ctx: Level) -> fmt::Result {
    let needs_parens = match (&ctx, inner) {
        (Level::And, Formula::Or(_, _)) => true,
        (Level::And, Formula::Exists(_, _)) => true,
        (Level::Or, Formula::Exists(_, _)) => true,
        (Level::Exists, _) => false,
        _ => false,
    };
    if needs_parens {
        write!(f, "({inner})")
    } else {
        write!(f, "{inner}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_structures::Signature;

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    #[test]
    fn free_vars_respect_quantifiers() {
        // exists y . E(x,y) & E(y,z)
        let f = Formula::exists(
            &["y"],
            Formula::atom("E", &["x", "y"]).and(Formula::atom("E", &["y", "z"])),
        );
        let free: Vec<Var> = f.free_vars().into_iter().collect();
        assert_eq!(free, vec![v("x"), v("z")]);
        assert_eq!(
            f.quantified_vars().into_iter().collect::<Vec<_>>(),
            vec![v("y")]
        );
    }

    #[test]
    fn shadowing_in_rename() {
        // exists x . E(x, y); renaming free x does nothing inside the binder.
        let f = Formula::exists(&["x"], Formula::atom("E", &["x", "y"]));
        let renamed = f.rename_free(&v("x"), &v("w"));
        assert_eq!(renamed, f);
        let renamed_y = f.rename_free(&v("y"), &v("w"));
        assert_eq!(
            renamed_y,
            Formula::exists(&["x"], Formula::atom("E", &["x", "w"]))
        );
    }

    #[test]
    fn pp_recognition() {
        let pp = Formula::exists(&["u"], Formula::atom("E", &["u", "u"]));
        assert!(pp.is_pp());
        let ep = pp.clone().or(Formula::atom("E", &["x", "x"]));
        assert!(!ep.is_pp());
        assert!(Formula::Top.is_pp());
    }

    #[test]
    fn satisfaction_on_small_structure() {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut b = Structure::new(sig, 3);
        b.add_tuple_named("E", &[0, 1]);
        b.add_tuple_named("E", &[1, 2]);

        // E(x,y) with x=0,y=1 holds; x=1,y=0 does not.
        let f = Formula::atom("E", &["x", "y"]);
        let mut env = HashMap::new();
        env.insert(v("x"), 0);
        env.insert(v("y"), 1);
        assert!(f.satisfied_by(&b, &env));
        env.insert(v("x"), 1);
        env.insert(v("y"), 0);
        assert!(!f.satisfied_by(&b, &env));

        // exists z . E(x, z) holds for x = 0, 1; fails for x = 2.
        let g = Formula::exists(&["z"], Formula::atom("E", &["x", "z"]));
        for (x, expect) in [(0, true), (1, true), (2, false)] {
            let mut env = HashMap::new();
            env.insert(v("x"), x);
            assert_eq!(g.satisfied_by(&b, &env), expect, "x = {x}");
        }
    }

    #[test]
    fn satisfaction_of_disjunction_and_top() {
        let sig = Signature::from_symbols([("E", 2)]);
        let b = Structure::new(sig, 2); // no edges
        let env: HashMap<Var, u32> = [(v("x"), 0), (v("y"), 1)].into_iter().collect();
        let f = Formula::atom("E", &["x", "y"]).or(Formula::Top);
        assert!(f.satisfied_by(&b, &env));
        let g = Formula::atom("E", &["x", "y"]).or(Formula::atom("E", &["y", "x"]));
        assert!(!g.satisfied_by(&b, &env));
    }

    #[test]
    fn exists_needs_nonempty_universe() {
        let sig = Signature::from_symbols([("E", 2)]);
        let empty = Structure::new(sig, 0);
        let f = Formula::exists(&["u"], Formula::Top);
        assert!(!f.satisfied_by(&empty, &HashMap::new()));
        assert!(Formula::Top.satisfied_by(&empty, &HashMap::new()));
    }

    #[test]
    fn display_roundtrip_shapes() {
        let f = Formula::atom("E", &["x", "y"]).and(
            Formula::atom("E", &["w", "x"])
                .or(Formula::atom("E", &["y", "z"]).and(Formula::atom("E", &["z", "z"]))),
        );
        assert_eq!(f.to_string(), "E(x,y) & (E(w,x) | E(y,z) & E(z,z))");
        let g = Formula::exists(&["a", "b"], Formula::atom("E", &["a", "b"]));
        assert_eq!(g.to_string(), "exists a, b . E(a,b)");
    }

    #[test]
    fn conjunction_and_disjunction_builders() {
        assert_eq!(Formula::conjunction([]), Formula::Top);
        let f = Formula::conjunction([
            Formula::atom("E", &["x", "y"]),
            Formula::atom("E", &["y", "z"]),
        ]);
        assert_eq!(f.atoms().len(), 2);
    }
}
