//! Disjunctive form and normalization of ep-formulas.
//!
//! Every ep-formula is equivalent to a *disjunctive* ep-formula — a
//! disjunction of prenex pp-formulas sharing the outer liberal set
//! (Section 2.1). [`disjuncts`] performs that rewriting; [`normalize`]
//! implements the paper's normalization (no sentence disjunct has a
//! homomorphism into any other disjunct), and [`minimize_ucq`] is the
//! classical stronger UCQ minimization (no disjunct entails another),
//! which the paper's constructions remain correct under.

use crate::formula::Formula;
use crate::pp::PpFormula;
use crate::query::{LogicError, Query};
use epq_structures::Signature;

/// Rewrites a query into its list of prenex pp disjuncts, each carrying
/// the query's full liberal variable set.
///
/// The number of disjuncts can be exponential in the nesting of ∧ over ∨;
/// this is inherent to the disjunctive form (the formula is the
/// *parameter* in the parameterized problems studied).
pub fn disjuncts(query: &Query, signature: &Signature) -> Result<Vec<PpFormula>, LogicError> {
    let pieces = dnf_pieces(query.formula());
    pieces
        .into_iter()
        .map(|piece| {
            let sub = Query::new(piece, query.liberal().to_vec())?;
            PpFormula::from_query(&sub, signature)
        })
        .collect()
}

/// Recursively lifts disjunction to the top: returns pp formula trees
/// whose disjunction is equivalent to `f`.
fn dnf_pieces(f: &Formula) -> Vec<Formula> {
    match f {
        Formula::Top | Formula::Atom(_) => vec![f.clone()],
        Formula::Or(l, r) => {
            let mut out = dnf_pieces(l);
            out.extend(dnf_pieces(r));
            out
        }
        Formula::And(l, r) => {
            let ls = dnf_pieces(l);
            let rs = dnf_pieces(r);
            let mut out = Vec::with_capacity(ls.len() * rs.len());
            for a in &ls {
                for b in &rs {
                    out.push(a.clone().and(b.clone()));
                }
            }
            out
        }
        // ∃x (α ∨ β) ≡ ∃x α ∨ ∃x β.
        Formula::Exists(v, body) => dnf_pieces(body)
            .into_iter()
            .map(|piece| Formula::Exists(v.clone(), Box::new(piece)))
            .collect(),
    }
}

/// The paper's normalization (Section 2.1): repeatedly drop any disjunct
/// that a *sentence* disjunct maps into (i.e. any disjunct entailing a
/// sentence disjunct), keeping the earliest among equivalent sentence
/// disjuncts. The result is logically equivalent to the input disjunction.
pub fn normalize(disjuncts: Vec<PpFormula>) -> Vec<PpFormula> {
    let mut kept: Vec<PpFormula> = Vec::new();
    'candidate: for candidate in disjuncts {
        // Skip the candidate if an existing sentence disjunct subsumes it.
        for existing in &kept {
            if existing.is_sentence() && candidate.entails(existing) {
                continue 'candidate;
            }
        }
        // If the candidate is a sentence, drop all existing disjuncts it
        // subsumes.
        if candidate.is_sentence() {
            kept.retain(|existing| !existing.entails(&candidate));
        }
        kept.push(candidate);
    }
    kept
}

/// Full UCQ minimization: drops every disjunct that entails another
/// (answers of an entailing disjunct are contained in the entailed one's),
/// keeping the earliest among logically equivalent disjuncts. Strictly
/// stronger than [`normalize`]; the disjunction's answer set is unchanged.
pub fn minimize_ucq(disjuncts: Vec<PpFormula>) -> Vec<PpFormula> {
    let n = disjuncts.len();
    let mut drop = vec![false; n];
    for i in 0..n {
        if drop[i] {
            continue;
        }
        for j in 0..n {
            if i == j || drop[j] {
                continue;
            }
            if disjuncts[i].entails(&disjuncts[j]) {
                // answers(i) ⊆ answers(j): i is redundant — unless they are
                // equivalent and i comes first (then drop j instead, later).
                if disjuncts[j].entails(&disjuncts[i]) && i < j {
                    continue;
                }
                drop[i] = true;
                break;
            }
        }
    }
    disjuncts
        .into_iter()
        .zip(drop)
        .filter_map(|(d, dropped)| (!dropped).then_some(d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Var;
    use crate::query::infer_signature;

    fn query(liberal: &[&str], f: Formula) -> (Query, Signature) {
        let sig = infer_signature([&f]).unwrap();
        let q = Query::new(f, liberal.iter().map(|&v| Var::new(v))).unwrap();
        (q, sig)
    }

    /// Example 4.1: φ(w,x,y,z) = E(x,y) ∧ (E(w,x) ∨ (E(y,z) ∧ E(z,z))).
    fn example_4_1() -> (Query, Signature) {
        let f = Formula::atom("E", &["x", "y"]).and(
            Formula::atom("E", &["w", "x"])
                .or(Formula::atom("E", &["y", "z"]).and(Formula::atom("E", &["z", "z"]))),
        );
        query(&["w", "x", "y", "z"], f)
    }

    #[test]
    fn example_4_1_lifts_to_two_disjuncts() {
        let (q, sig) = example_4_1();
        let ds = disjuncts(&q, &sig).unwrap();
        assert_eq!(ds.len(), 2);
        // φ1 = E(x,y) ∧ E(w,x); φ2 = E(x,y) ∧ E(y,z) ∧ E(z,z).
        assert_eq!(ds[0].structure().tuple_count(), 2);
        assert_eq!(ds[1].structure().tuple_count(), 3);
        for d in &ds {
            assert_eq!(d.liberal_count(), 4);
        }
    }

    #[test]
    fn exists_distributes_over_or() {
        // ∃u (E(x,u) ∨ E(u,x)) → two disjuncts each with the quantifier.
        let f = Formula::exists(
            &["u"],
            Formula::atom("E", &["x", "u"]).or(Formula::atom("E", &["u", "x"])),
        );
        let (q, sig) = query(&["x"], f);
        let ds = disjuncts(&q, &sig).unwrap();
        assert_eq!(ds.len(), 2);
        for d in &ds {
            assert_eq!(d.quantified_names().len(), 1);
            assert_eq!(d.structure().tuple_count(), 1);
        }
    }

    #[test]
    fn and_over_or_multiplies() {
        // (a ∨ b) ∧ (c ∨ d) → 4 disjuncts.
        let f = (Formula::atom("A", &["x"]).or(Formula::atom("B", &["x"])))
            .and(Formula::atom("C", &["x"]).or(Formula::atom("D", &["x"])));
        let (q, sig) = query(&["x"], f);
        assert_eq!(disjuncts(&q, &sig).unwrap().len(), 4);
    }

    #[test]
    fn normalization_drops_disjuncts_subsumed_by_sentences() {
        // θ1 = ∃a,b,c,d . E(a,b) ∧ E(b,c) ∧ E(c,d) (a sentence disjunct);
        // ψ = E(x,y) ∧ E(y,z) ∧ E(z,w) entails θ1 → ψ dropped.
        let sentence = Formula::exists(
            &["a", "b", "c", "d"],
            Formula::conjunction([
                Formula::atom("E", &["a", "b"]),
                Formula::atom("E", &["b", "c"]),
                Formula::atom("E", &["c", "d"]),
            ]),
        );
        let psi = Formula::conjunction([
            Formula::atom("E", &["x", "y"]),
            Formula::atom("E", &["y", "z"]),
            Formula::atom("E", &["z", "w"]),
        ]);
        let f = sentence.or(psi);
        let (q, sig) = query(&["w", "x", "y", "z"], f);
        let ds = disjuncts(&q, &sig).unwrap();
        assert_eq!(ds.len(), 2);
        let normalized = normalize(ds);
        assert_eq!(normalized.len(), 1);
        assert!(normalized[0].is_sentence());
    }

    #[test]
    fn normalization_keeps_incomparable_disjuncts() {
        // E(x,y) ∨ F(x,y): nothing to drop.
        let f = Formula::atom("E", &["x", "y"]).or(Formula::atom("F", &["x", "y"]));
        let (q, sig) = query(&["x", "y"], f);
        let ds = disjuncts(&q, &sig).unwrap();
        assert_eq!(normalize(ds).len(), 2);
    }

    #[test]
    fn normalization_dedupes_equivalent_sentences() {
        // Two logically equivalent sentence disjuncts → one survives.
        let s1 = Formula::exists(&["a", "b"], Formula::atom("E", &["a", "b"]));
        let s2 = Formula::exists(&["c", "d"], Formula::atom("E", &["c", "d"]));
        let f = s1.or(s2);
        let (q, sig) = query(&["x"], f);
        let ds = disjuncts(&q, &sig).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(normalize(ds).len(), 1);
    }

    #[test]
    fn minimize_ucq_drops_entailing_disjuncts() {
        // (E(x,y) ∧ E(y,x)) ∨ E(x,y): the first entails the second.
        let strong = Formula::atom("E", &["x", "y"]).and(Formula::atom("E", &["y", "x"]));
        let weak = Formula::atom("E", &["x", "y"]);
        let f = strong.or(weak);
        let (q, sig) = query(&["x", "y"], f);
        let ds = disjuncts(&q, &sig).unwrap();
        // normalize keeps both (no sentences); minimize drops the strong one.
        assert_eq!(normalize(ds.clone()).len(), 2);
        let minimized = minimize_ucq(ds);
        assert_eq!(minimized.len(), 1);
        assert_eq!(minimized[0].structure().tuple_count(), 1);
    }

    #[test]
    fn minimize_ucq_keeps_one_of_equivalent_pair() {
        // E(x,y) ∨ E(x,y) (syntactic duplicate).
        let f = Formula::atom("E", &["x", "y"]).or(Formula::atom("E", &["x", "y"]));
        let (q, sig) = query(&["x", "y"], f);
        let ds = disjuncts(&q, &sig).unwrap();
        assert_eq!(minimize_ucq(ds).len(), 1);
    }
}
