//! Queries: formulas with liberal variables, and signature inference.

use crate::formula::{Formula, Var};
use epq_structures::Signature;
use std::collections::BTreeSet;
use std::fmt;

/// An error raised while building or converting queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicError {
    /// Human-readable description.
    pub message: String,
}

impl LogicError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        LogicError {
            message: message.into(),
        }
    }
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "logic error: {}", self.message)
    }
}

impl std::error::Error for LogicError {}

/// An ep-formula `φ(V)` together with its liberal variables `V = lib(φ)`.
///
/// Invariants (checked at construction, per Section 2.1 of the paper):
/// `free(φ) ⊆ lib(φ)`, and no liberal variable is quantified anywhere in
/// the formula.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    formula: Formula,
    /// Sorted, duplicate-free liberal variables.
    liberal: Vec<Var>,
}

impl Query {
    /// Builds a query with explicit liberal variables.
    pub fn new(
        formula: Formula,
        liberal: impl IntoIterator<Item = Var>,
    ) -> Result<Self, LogicError> {
        let liberal_set: BTreeSet<Var> = liberal.into_iter().collect();
        let free = formula.free_vars();
        if let Some(missing) = free.iter().find(|v| !liberal_set.contains(v)) {
            return Err(LogicError::new(format!(
                "free variable {missing} is not among the liberal variables"
            )));
        }
        let quantified = formula.quantified_vars();
        if let Some(clash) = liberal_set.iter().find(|v| quantified.contains(v)) {
            return Err(LogicError::new(format!(
                "variable {clash} is both liberal and quantified"
            )));
        }
        Ok(Query {
            formula,
            liberal: liberal_set.into_iter().collect(),
        })
    }

    /// Builds a query whose liberal variables are exactly the free
    /// variables.
    pub fn from_formula(formula: Formula) -> Result<Self, LogicError> {
        let free: Vec<Var> = formula.free_vars().into_iter().collect();
        Query::new(formula, free)
    }

    /// The formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The liberal variables, sorted by name.
    pub fn liberal(&self) -> &[Var] {
        &self.liberal
    }

    /// Number of liberal variables.
    pub fn liberal_count(&self) -> usize {
        self.liberal.len()
    }

    /// Whether the formula is primitive positive.
    pub fn is_pp(&self) -> bool {
        self.formula.is_pp()
    }

    /// Whether the formula is a sentence (`free(φ) = ∅`; it may still have
    /// liberal variables).
    pub fn is_sentence(&self) -> bool {
        self.formula.is_sentence()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.liberal.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") := {}", self.formula)
    }
}

/// Infers a [`Signature`] covering all atoms in the given formulas.
///
/// Fails when a relation name is used with inconsistent arities.
pub fn infer_signature<'a>(
    formulas: impl IntoIterator<Item = &'a Formula>,
) -> Result<Signature, LogicError> {
    let mut seen: Vec<(String, usize)> = Vec::new();
    for formula in formulas {
        for atom in formula.atoms() {
            match seen.iter().find(|(n, _)| *n == atom.relation) {
                Some((_, arity)) if *arity != atom.args.len() => {
                    return Err(LogicError::new(format!(
                        "relation {} used with arities {} and {}",
                        atom.relation,
                        arity,
                        atom.args.len()
                    )));
                }
                Some(_) => {}
                None => {
                    if atom.args.is_empty() {
                        return Err(LogicError::new(format!(
                            "relation {} has arity 0 (arities must be >= 1)",
                            atom.relation
                        )));
                    }
                    seen.push((atom.relation.clone(), atom.args.len()));
                }
            }
        }
    }
    Ok(Signature::from_symbols(seen))
}

/// Validates that every atom of `formula` matches `signature`.
pub fn check_against_signature(formula: &Formula, signature: &Signature) -> Result<(), LogicError> {
    for atom in formula.atoms() {
        match signature.lookup(&atom.relation) {
            None => {
                return Err(LogicError::new(format!(
                    "relation {} not in signature",
                    atom.relation
                )))
            }
            Some(rel) if signature.arity(rel) != atom.args.len() => {
                return Err(LogicError::new(format!(
                    "relation {} has arity {} but is used with {} arguments",
                    atom.relation,
                    signature.arity(rel),
                    atom.args.len()
                )))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liberal_must_cover_free() {
        let f = Formula::atom("E", &["x", "y"]);
        assert!(Query::new(f.clone(), [Var::new("x")]).is_err());
        let q = Query::new(f, [Var::new("x"), Var::new("y"), Var::new("z")]).unwrap();
        assert_eq!(q.liberal_count(), 3);
    }

    #[test]
    fn liberal_cannot_be_quantified() {
        let f = Formula::exists(&["y"], Formula::atom("E", &["x", "y"]));
        assert!(Query::new(f, [Var::new("x"), Var::new("y")]).is_err());
    }

    #[test]
    fn from_formula_defaults_to_free() {
        let f = Formula::exists(&["u"], Formula::atom("E", &["x", "u"]));
        let q = Query::from_formula(f).unwrap();
        assert_eq!(q.liberal(), &[Var::new("x")]);
    }

    #[test]
    fn liberal_vars_are_sorted_and_deduped() {
        let f = Formula::atom("E", &["x", "y"]);
        let q = Query::new(
            f,
            [Var::new("y"), Var::new("x"), Var::new("y"), Var::new("a")],
        )
        .unwrap();
        assert_eq!(q.liberal(), &[Var::new("a"), Var::new("x"), Var::new("y")]);
    }

    #[test]
    fn signature_inference_and_conflicts() {
        let f = Formula::atom("E", &["x", "y"]).and(Formula::atom("P", &["x"]));
        let sig = infer_signature([&f]).unwrap();
        assert_eq!(sig.len(), 2);
        assert_eq!(sig.arity(sig.lookup("E").unwrap()), 2);
        let g = Formula::atom("E", &["x", "y", "z"]);
        assert!(infer_signature([&f, &g]).is_err());
    }

    #[test]
    fn signature_check() {
        let sig = Signature::from_symbols([("E", 2)]);
        let ok = Formula::atom("E", &["x", "y"]);
        assert!(check_against_signature(&ok, &sig).is_ok());
        let missing = Formula::atom("F", &["x"]);
        assert!(check_against_signature(&missing, &sig).is_err());
        let wrong_arity = Formula::atom("E", &["x"]);
        assert!(check_against_signature(&wrong_arity, &sig).is_err());
    }

    #[test]
    fn display_includes_head() {
        let q = Query::from_formula(Formula::atom("E", &["x", "y"])).unwrap();
        assert_eq!(q.to_string(), "(x, y) := E(x,y)");
    }
}
