//! A text syntax for ep-queries.
//!
//! ```text
//! query   := [ '(' varlist ')' ':=' ] formula
//! formula := conj ( '|' conj )*
//! conj    := unit ( '&' unit )*
//! unit    := 'exists' varlist '.' unit
//!          | 'true'
//!          | IDENT '(' varlist ')'
//!          | '(' formula ')'
//! varlist := IDENT ( ',' IDENT )*
//! ```
//!
//! Identifiers are `[A-Za-z_][A-Za-z0-9_']*`; `#` starts a line comment.
//! `&` binds tighter than `|`; `exists` extends as far right as possible.
//! The optional head lists the liberal variables; without a head they
//! default to the free variables.

use crate::formula::{Atom, Formula, Var};
use crate::query::Query;
use std::fmt;

/// Error from [`parse_query`] / [`parse_formula`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description with offset context.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        let mut message = message.into();
        let rest: String = self.text[self.pos..].chars().take(20).collect();
        message.push_str(&format!(" (at offset {}, near {rest:?})", self.pos));
        ParseError { message }
    }

    fn skip_ws(&mut self) {
        let bytes = self.text.as_bytes();
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b'#' => {
                    while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn peek_char(&mut self) -> Option<char> {
        self.skip_ws();
        self.text[self.pos..].chars().next()
    }

    fn try_eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), ParseError> {
        if self.try_eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected {token:?}")))
        }
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let bytes = self.text.as_bytes();
        let start = self.pos;
        if self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphabetic() || bytes[self.pos] == b'_')
        {
            self.pos += 1;
            while self.pos < bytes.len()
                && (bytes[self.pos].is_ascii_alphanumeric()
                    || bytes[self.pos] == b'_'
                    || bytes[self.pos] == b'\'')
            {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(self.error("expected an identifier"));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    /// Peeks whether the next token is the keyword `kw` (not a prefix of a
    /// longer identifier).
    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        rest.starts_with(kw)
            && !rest[kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '\'')
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.text.len()
    }
}

fn varlist(c: &mut Cursor) -> Result<Vec<Var>, ParseError> {
    let mut vars = vec![Var::new(c.identifier()?)];
    while c.try_eat(",") {
        vars.push(Var::new(c.identifier()?));
    }
    Ok(vars)
}

fn unit(c: &mut Cursor) -> Result<Formula, ParseError> {
    if c.peek_keyword("exists") {
        c.eat("exists")?;
        let vars = varlist(c)?;
        c.eat(".")?;
        let body = unit_chain(c)?;
        return Ok(vars
            .into_iter()
            .rev()
            .fold(body, |acc, v| Formula::Exists(v, Box::new(acc))));
    }
    if c.peek_keyword("true") {
        c.eat("true")?;
        return Ok(Formula::Top);
    }
    if c.try_eat("(") {
        let f = formula(c)?;
        c.eat(")")?;
        return Ok(f);
    }
    let name = c.identifier()?;
    c.eat("(")?;
    let args = varlist(c)?;
    c.eat(")")?;
    Ok(Formula::Atom(Atom::new(name, args)))
}

/// `exists x . E(x,y) & F(y)` scopes the quantifier over the whole chain:
/// after `exists … .` we keep parsing conjunctions and disjunctions.
fn unit_chain(c: &mut Cursor) -> Result<Formula, ParseError> {
    formula(c)
}

fn conj(c: &mut Cursor) -> Result<Formula, ParseError> {
    let mut acc = unit(c)?;
    while c.peek_char() == Some('&') {
        c.eat("&")?;
        acc = acc.and(unit(c)?);
    }
    Ok(acc)
}

fn formula(c: &mut Cursor) -> Result<Formula, ParseError> {
    let mut acc = conj(c)?;
    while c.peek_char() == Some('|') {
        c.eat("|")?;
        acc = acc.or(conj(c)?);
    }
    Ok(acc)
}

/// Parses a bare formula (no liberal head).
pub fn parse_formula(text: &str) -> Result<Formula, ParseError> {
    let mut c = Cursor { text, pos: 0 };
    let f = formula(&mut c)?;
    if !c.at_end() {
        return Err(c.error("trailing input after formula"));
    }
    Ok(f)
}

/// Parses a query, with an optional liberal head `(v1, …, vk) :=`.
pub fn parse_query(text: &str) -> Result<Query, ParseError> {
    let mut c = Cursor { text, pos: 0 };
    // Try the head: '(' varlist ')' ':='. Backtrack if ':=' is absent.
    let saved = c.pos;
    let head = if c.try_eat("(") {
        if c.try_eat(")") && c.try_eat(":=") {
            Some(Vec::new()) // sentence head: "() :="
        } else {
            c.pos = saved;
            c.try_eat("(");
            match varlist(&mut c) {
                Ok(vars) if c.try_eat(")") && c.try_eat(":=") => Some(vars),
                _ => {
                    c.pos = saved;
                    None
                }
            }
        }
    } else {
        None
    };
    let f = formula(&mut c)?;
    if !c.at_end() {
        return Err(c.error("trailing input after query"));
    }
    let result = match head {
        Some(vars) => Query::new(f, vars),
        None => Query::from_formula(f),
    };
    result.map_err(|e| ParseError { message: e.message })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_4_1() {
        let q = parse_query("(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))").unwrap();
        assert_eq!(q.liberal_count(), 4);
        let expected = Formula::atom("E", &["x", "y"]).and(
            Formula::atom("E", &["w", "x"])
                .or(Formula::atom("E", &["y", "z"]).and(Formula::atom("E", &["z", "z"]))),
        );
        assert_eq!(q.formula(), &expected);
    }

    #[test]
    fn precedence_and_over_or() {
        let q = parse_query("A(x) & B(x) | C(x)").unwrap();
        let expected = (Formula::atom("A", &["x"]).and(Formula::atom("B", &["x"])))
            .or(Formula::atom("C", &["x"]));
        assert_eq!(q.formula(), &expected);
    }

    #[test]
    fn exists_scopes_to_the_right() {
        let q = parse_query("exists u . E(x,u) & E(u,u)").unwrap();
        let expected = Formula::exists(
            &["u"],
            Formula::atom("E", &["x", "u"]).and(Formula::atom("E", &["u", "u"])),
        );
        assert_eq!(q.formula(), &expected);
        assert_eq!(q.liberal(), &[Var::new("x")]);
    }

    #[test]
    fn multi_variable_exists() {
        let q = parse_query("exists a, b . F(a,b)").unwrap();
        assert_eq!(
            q.formula(),
            &Formula::exists(&["a", "b"], Formula::atom("F", &["a", "b"]))
        );
        assert!(q.is_sentence());
        assert_eq!(q.liberal_count(), 0);
    }

    #[test]
    fn head_defaults_to_free_variables() {
        let q = parse_query("E(x,y) & exists u . E(y,u)").unwrap();
        assert_eq!(q.liberal(), &[Var::new("x"), Var::new("y")]);
    }

    #[test]
    fn head_may_add_liberal_only_variables() {
        let q = parse_query("(x, y, z) := E(x,y)").unwrap();
        assert_eq!(q.liberal_count(), 3);
    }

    #[test]
    fn primed_identifiers() {
        let q = parse_query("E(x,x')").unwrap();
        assert_eq!(q.liberal(), &[Var::new("x"), Var::new("x'")]);
    }

    #[test]
    fn true_literal_and_parens() {
        let q = parse_query("(x) := true | E(x,x)").unwrap();
        assert_eq!(
            q.formula(),
            &Formula::Top.or(Formula::atom("E", &["x", "x"]))
        );
    }

    #[test]
    fn comments_are_skipped() {
        let q = parse_query(
            "(x) :=      # head
             E(x,x)      # an atom",
        )
        .unwrap();
        assert_eq!(q.liberal_count(), 1);
    }

    #[test]
    fn empty_head_declares_a_sentence() {
        let q = parse_query("() := exists a . E(a,a)").unwrap();
        assert_eq!(q.liberal_count(), 0);
        // Roundtrip through Display.
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("E(x,").is_err());
        assert!(parse_query("E(x,y) extra").is_err());
        assert!(parse_query("exists . E(x,y)").is_err());
        assert!(parse_query("(x) := E(x,y)").is_err()); // y free but not liberal
        assert!(parse_query("").is_err());
        assert!(parse_query("123(x)").is_err());
    }

    #[test]
    fn roundtrip_via_display() {
        for text in [
            "(w, x, y, z) := E(x,y) & (E(w,x) | E(y,z) & E(z,z))",
            "(x) := exists u . E(x,u) & E(u,u)",
            "(x, y) := E(x,y) | F(y,x)",
        ] {
            let q = parse_query(text).unwrap();
            let q2 = parse_query(&q.to_string()).unwrap();
            assert_eq!(q, q2, "roundtrip of {text}");
        }
    }

    #[test]
    fn keyword_prefix_identifiers_are_allowed() {
        // `existsX` is an identifier, not the keyword.
        let q = parse_query("existsX(x)").unwrap();
        assert_eq!(q.formula(), &Formula::atom("existsX", &["x"]));
        // `trueish` likewise.
        let q = parse_query("trueish(y)").unwrap();
        assert_eq!(q.formula(), &Formula::atom("trueish", &["y"]));
    }
}
