//! Randomized cross-checking of every counting engine, sequential and
//! parallel.
//!
//! The fixed-family agreement tests live in the workspace-level
//! `tests/engine_agreement.rs`; this suite drives the engines over
//! *random* small queries × random structures, with the parallel
//! engines exercised at 1, 2, and 4 threads — the shard boundaries of
//! the parallel #Hom DP and the brute sweep move with the thread
//! count, so agreement here checks that no assignment is dropped or
//! double-counted at any boundary.

use epq_counting::brute::{
    count_pp_brute, count_pp_brute_par, for_each_assignment, for_each_assignment_in_range,
};
use epq_counting::csp::{count_csp_brute, CspConstraint, TdCounter};
use epq_counting::engines::{all_engines_with_parallel, ParBruteForceEngine, ParFptEngine};
use epq_counting::fpt::{count_pp_fpt, count_pp_fpt_par};
use epq_logic::PpFormula;
use epq_workloads::{data, queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

fn random_pp(seed: u64, vars: usize, atoms: usize, quantify: f64) -> PpFormula {
    let q = queries::random_cq(&mut StdRng::seed_from_u64(seed), vars, atoms, quantify);
    PpFormula::from_query(&q, &data::digraph_signature()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_engine_agrees_on_random_queries(
        qseed in 0u64..10_000,
        sseed in 0u64..10_000,
        vars in 2usize..5,
        atoms in 1usize..5,
        n in 1usize..5,
    ) {
        let pp = random_pp(qseed, vars, atoms, 0.4);
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), n, 0.35);
        let reference = count_pp_brute(&pp, &b);
        for threads in [1usize, 2, 4] {
            for engine in all_engines_with_parallel(threads) {
                prop_assert_eq!(
                    engine.count(&pp, &b),
                    reference.clone(),
                    "engine {} at {} threads on {}",
                    engine.name(),
                    threads,
                    pp
                );
            }
        }
    }

    #[test]
    fn parallel_fpt_is_thread_count_invariant(
        qseed in 0u64..10_000,
        sseed in 0u64..10_000,
        n in 1usize..6,
    ) {
        // Quantifier-heavy queries push work into the boundary
        // enumeration — the FPT engine's sharded hot loop.
        let pp = random_pp(qseed, 4, 4, 0.7);
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), n, 0.3);
        let expected = count_pp_fpt(&pp, &b);
        for threads in [2usize, 3, 4, 8] {
            prop_assert_eq!(
                count_pp_fpt_par(&pp, &b, threads),
                expected.clone(),
                "{} threads on {}",
                threads,
                pp
            );
        }
    }

    #[test]
    fn parallel_brute_is_thread_count_invariant(
        qseed in 0u64..10_000,
        sseed in 0u64..10_000,
        n in 1usize..5,
    ) {
        let pp = random_pp(qseed, 3, 3, 0.3);
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), n, 0.4);
        let expected = count_pp_brute(&pp, &b);
        for threads in [2usize, 3, 4, 8] {
            prop_assert_eq!(
                count_pp_brute_par(&pp, &b, threads),
                expected.clone(),
                "{} threads",
                threads
            );
        }
    }

    #[test]
    fn parallel_csp_counter_matches_brute(
        seed in 0u64..10_000,
        variables in 1usize..5,
        domain in 1usize..4,
        constraints in 0usize..4,
    ) {
        // Random binary CSPs: the prepared TdCounter must agree with
        // plain enumeration sequentially and at every thread count.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cs = Vec::new();
        for _ in 0..constraints {
            let a = rng.gen_range(0..variables as u32);
            let b = rng.gen_range(0..variables as u32);
            if a == b {
                continue;
            }
            let mut allowed = HashSet::new();
            for x in 0..domain as u32 {
                for y in 0..domain as u32 {
                    if rng.gen_bool(0.6) {
                        allowed.insert(vec![x, y]);
                    }
                }
            }
            cs.push(CspConstraint::new(vec![a, b], allowed));
        }
        let expected = count_csp_brute(variables, domain, &cs, &[]);
        let counter = TdCounter::new(variables, domain, cs);
        prop_assert_eq!(counter.count(&[]), expected.clone());
        for threads in [2usize, 4] {
            prop_assert_eq!(counter.count_par(&[], threads), expected.clone());
        }
    }

    #[test]
    fn range_sharding_partitions_the_assignment_space(
        domain in 1usize..5,
        arity in 0usize..5,
        cut_seed in 0u64..1_000,
    ) {
        // Concatenating random contiguous ranges replays the exact
        // sequential enumeration — the invariant the parallel brute
        // engine's correctness rests on.
        let total = (domain as u128).pow(arity as u32);
        let mut rng = StdRng::seed_from_u64(cut_seed);
        let mut cuts = vec![0u128];
        while *cuts.last().unwrap() < total {
            let last = *cuts.last().unwrap();
            let step = 1 + rng.gen_range(0..(total.max(4) / 4) as u64) as u128;
            cuts.push((last + step).min(total));
        }
        let mut replayed = Vec::new();
        for w in cuts.windows(2) {
            for_each_assignment_in_range(domain, arity, w[0], w[1], &mut |v| {
                replayed.push(v.to_vec());
            });
        }
        let mut full = Vec::new();
        for_each_assignment(domain, arity, &mut |v| full.push(v.to_vec()));
        prop_assert_eq!(replayed, full);
    }
}

#[test]
fn engine_roster_is_stable() {
    let names: Vec<&str> = all_engines_with_parallel(2)
        .iter()
        .map(|e| e.name())
        .collect();
    assert_eq!(
        names,
        [
            "brute-force",
            "relalg",
            "hom-dp",
            "fpt",
            "fpt-par",
            "brute-par",
            "relalg-par"
        ]
    );
    assert_eq!(ParFptEngine::new(4).threads, 4);
    assert_eq!(ParBruteForceEngine::new(4).threads, 4);
}
