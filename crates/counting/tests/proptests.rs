//! Randomized cross-checking of every counting engine, sequential and
//! parallel.
//!
//! The fixed-family agreement tests live in the workspace-level
//! `tests/engine_agreement.rs`; this suite drives the engines over
//! *random* small queries × random structures, with the parallel
//! engines exercised at 1, 2, and 4 threads — the shard boundaries of
//! the parallel #Hom DP and the brute sweep move with the thread
//! count, so agreement here checks that no assignment is dropped or
//! double-counted at any boundary.

use epq_bigint::Natural;
use epq_counting::brute::{
    count_pp_brute, count_pp_brute_par, for_each_assignment, for_each_assignment_in_range,
};
use epq_counting::csp::{count_csp_brute, CspConstraint, TdCounter};
use epq_counting::engines::{all_engines_with_parallel, ParBruteForceEngine, ParFptEngine};
use epq_counting::fpt::{count_pp_fpt, count_pp_fpt_par};
use epq_counting::table::FlatTable;
use epq_logic::PpFormula;
use epq_workloads::{data, queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashSet};

fn random_pp(seed: u64, vars: usize, atoms: usize, quantify: f64) -> PpFormula {
    let q = queries::random_cq(&mut StdRng::seed_from_u64(seed), vars, atoms, quantify);
    PpFormula::from_query(&q, &data::digraph_signature()).unwrap()
}

/// A random DP table plus the `BTreeMap` the seed implementation kept:
/// duplicate random keys merge by summation in both.
fn random_table(
    seed: u64,
    arity: usize,
    entries: usize,
    domain: u32,
) -> (FlatTable, BTreeMap<Vec<u32>, Natural>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let raw: Vec<(Vec<u32>, Natural)> = (0..entries)
        .map(|_| {
            let key: Vec<u32> = (0..arity).map(|_| rng.gen_range(0..domain)).collect();
            (key, Natural::from(rng.gen_range(1..6u64)))
        })
        .collect();
    let mut model: BTreeMap<Vec<u32>, Natural> = BTreeMap::new();
    for (key, count) in &raw {
        *model.entry(key.clone()).or_insert_with(Natural::zero) += count;
    }
    (FlatTable::from_entries(arity, raw), model)
}

/// The packed table and the map reference must agree entry for entry,
/// in the same (sorted) order.
fn assert_table_is(
    got: &FlatTable,
    expected: &BTreeMap<Vec<u32>, Natural>,
    pass: &str,
    threads: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        got.len(),
        expected.len(),
        "{} size at {} threads",
        pass,
        threads
    );
    for ((key, count), (ekey, ecount)) in got.iter().zip(expected.iter()) {
        prop_assert_eq!(key, &ekey[..], "{} key at {} threads", pass, threads);
        prop_assert_eq!(count, ecount, "{} count at {} threads", pass, threads);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_engine_agrees_on_random_queries(
        qseed in 0u64..10_000,
        sseed in 0u64..10_000,
        vars in 2usize..5,
        atoms in 1usize..5,
        n in 1usize..5,
    ) {
        let pp = random_pp(qseed, vars, atoms, 0.4);
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), n, 0.35);
        let reference = count_pp_brute(&pp, &b);
        for threads in [1usize, 2, 4] {
            for engine in all_engines_with_parallel(threads) {
                prop_assert_eq!(
                    engine.count(&pp, &b),
                    reference.clone(),
                    "engine {} at {} threads on {}",
                    engine.name(),
                    threads,
                    pp
                );
            }
        }
    }

    #[test]
    fn parallel_fpt_is_thread_count_invariant(
        qseed in 0u64..10_000,
        sseed in 0u64..10_000,
        n in 1usize..6,
    ) {
        // Quantifier-heavy queries push work into the boundary
        // enumeration — the FPT engine's sharded hot loop.
        let pp = random_pp(qseed, 4, 4, 0.7);
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), n, 0.3);
        let expected = count_pp_fpt(&pp, &b);
        for threads in [2usize, 3, 4, 8] {
            prop_assert_eq!(
                count_pp_fpt_par(&pp, &b, threads),
                expected.clone(),
                "{} threads on {}",
                threads,
                pp
            );
        }
    }

    #[test]
    fn parallel_brute_is_thread_count_invariant(
        qseed in 0u64..10_000,
        sseed in 0u64..10_000,
        n in 1usize..5,
    ) {
        let pp = random_pp(qseed, 3, 3, 0.3);
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), n, 0.4);
        let expected = count_pp_brute(&pp, &b);
        for threads in [2usize, 3, 4, 8] {
            prop_assert_eq!(
                count_pp_brute_par(&pp, &b, threads),
                expected.clone(),
                "{} threads",
                threads
            );
        }
    }

    #[test]
    fn parallel_csp_counter_matches_brute(
        seed in 0u64..10_000,
        variables in 1usize..5,
        domain in 1usize..4,
        constraints in 0usize..4,
    ) {
        // Random binary CSPs: the prepared TdCounter must agree with
        // plain enumeration sequentially and at every thread count.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cs = Vec::new();
        for _ in 0..constraints {
            let a = rng.gen_range(0..variables as u32);
            let b = rng.gen_range(0..variables as u32);
            if a == b {
                continue;
            }
            let mut allowed = HashSet::new();
            for x in 0..domain as u32 {
                for y in 0..domain as u32 {
                    if rng.gen_bool(0.6) {
                        allowed.insert(vec![x, y]);
                    }
                }
            }
            cs.push(CspConstraint::new(vec![a, b], allowed));
        }
        let expected = count_csp_brute(variables, domain, &cs, &[]);
        let counter = TdCounter::new(variables, domain, cs);
        prop_assert_eq!(counter.count(&[]), expected.clone());
        for threads in [2usize, 4] {
            prop_assert_eq!(counter.count_par(&[], threads), expected.clone());
        }
    }

    #[test]
    fn flat_table_passes_match_btreemap_reference(
        seed in 0u64..10_000,
        arity in 0usize..=3,
        entries in 0usize..40,
        domain in 1u32..=4,
        slot_pick in 0usize..16,
        modulus in 1u32..=4,
    ) {
        // A random nice-decomposition node: a child table of `arity`-wide
        // bag assignments, put through each of the three DP passes, on
        // the packed-key arena and on the `BTreeMap` the seed DP used —
        // at 1, 2, and 4 threads.
        let (table, model) = random_table(seed, arity, entries, domain);

        // Introduce at a random slot over the full candidate range, with
        // a nontrivial filter.
        let slot = slot_pick % (arity + 1);
        let candidates: Vec<u32> = (0..domain).collect();
        let keep = |key: &[u32]| key.iter().sum::<u32>() % modulus != 0;
        let mut expected: BTreeMap<Vec<u32>, Natural> = BTreeMap::new();
        for (key, count) in &model {
            for &x in &candidates {
                let mut grown = key.clone();
                grown.insert(slot, x);
                if keep(&grown) {
                    *expected.entry(grown).or_insert_with(Natural::zero) += count;
                }
            }
        }
        for threads in [1usize, 2, 4] {
            let got = table.introduce(slot, &candidates, keep, threads);
            assert_table_is(&got, &expected, "introduce", threads)?;
        }

        // Forget each slot in turn (arity permitting).
        for slot in 0..arity {
            let mut expected: BTreeMap<Vec<u32>, Natural> = BTreeMap::new();
            for (key, count) in &model {
                let mut shrunk = key.clone();
                shrunk.remove(slot);
                *expected.entry(shrunk).or_insert_with(Natural::zero) += count;
            }
            for threads in [1usize, 2, 4] {
                let got = table.forget(slot, threads);
                assert_table_is(&got, &expected, "forget", threads)?;
            }
        }

        // Join against a second random table of the same arity.
        let (other, other_model) = random_table(seed ^ 0xbead, arity, entries / 2 + 1, domain);
        let mut expected: BTreeMap<Vec<u32>, Natural> = BTreeMap::new();
        for (key, count) in &model {
            if let Some(factor) = other_model.get(key) {
                expected.insert(key.clone(), count * factor);
            }
        }
        for threads in [1usize, 2, 4] {
            let got = table.join(&other, threads);
            assert_table_is(&got, &expected, "join", threads)?;
        }
    }

    #[test]
    fn range_sharding_partitions_the_assignment_space(
        domain in 1usize..5,
        arity in 0usize..5,
        cut_seed in 0u64..1_000,
    ) {
        // Concatenating random contiguous ranges replays the exact
        // sequential enumeration — the invariant the parallel brute
        // engine's correctness rests on.
        let total = (domain as u128).pow(arity as u32);
        let mut rng = StdRng::seed_from_u64(cut_seed);
        let mut cuts = vec![0u128];
        while *cuts.last().unwrap() < total {
            let last = *cuts.last().unwrap();
            let step = 1 + rng.gen_range(0..(total.max(4) / 4) as u64) as u128;
            cuts.push((last + step).min(total));
        }
        let mut replayed = Vec::new();
        for w in cuts.windows(2) {
            for_each_assignment_in_range(domain, arity, w[0], w[1], &mut |v| {
                replayed.push(v.to_vec());
            });
        }
        let mut full = Vec::new();
        for_each_assignment(domain, arity, &mut |v| full.push(v.to_vec()));
        prop_assert_eq!(replayed, full);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_flat_table_passes_cross_the_pool_threshold(
        seed in 0u64..10_000,
        slot_pick in 0usize..16,
        modulus in 2u32..=4,
    ) {
        // Tables above PAR_NODE_THRESHOLD: the 2/4-thread runs really
        // shard across the pool and the chunk merges really execute.
        let arity = 2usize;
        let domain = 64u32;
        let (table, model) = random_table(seed, arity, 4096, domain);
        prop_assert!(table.len() >= epq_counting::csp::PAR_NODE_THRESHOLD);

        let slot = slot_pick % (arity + 1);
        let candidates: Vec<u32> = (0..4).collect();
        let keep = |key: &[u32]| key.iter().sum::<u32>() % modulus != 0;
        let mut expected: BTreeMap<Vec<u32>, Natural> = BTreeMap::new();
        for (key, count) in &model {
            for &x in &candidates {
                let mut grown = key.clone();
                grown.insert(slot, x);
                if keep(&grown) {
                    *expected.entry(grown).or_insert_with(Natural::zero) += count;
                }
            }
        }
        for threads in [1usize, 2, 4] {
            assert_table_is(
                &table.introduce(slot, &candidates, keep, threads),
                &expected,
                "introduce",
                threads,
            )?;
        }

        let slot = slot_pick % arity;
        let mut expected: BTreeMap<Vec<u32>, Natural> = BTreeMap::new();
        for (key, count) in &model {
            let mut shrunk = key.clone();
            shrunk.remove(slot);
            *expected.entry(shrunk).or_insert_with(Natural::zero) += count;
        }
        for threads in [1usize, 2, 4] {
            assert_table_is(&table.forget(slot, threads), &expected, "forget", threads)?;
        }

        let (other, other_model) = random_table(seed ^ 0xbead, arity, 4096, domain);
        let mut expected: BTreeMap<Vec<u32>, Natural> = BTreeMap::new();
        for (key, count) in &model {
            if let Some(factor) = other_model.get(key) {
                expected.insert(key.clone(), count * factor);
            }
        }
        for threads in [1usize, 2, 4] {
            assert_table_is(&table.join(&other, threads), &expected, "join", threads)?;
        }
    }
}

#[test]
fn engine_roster_is_stable() {
    let names: Vec<&str> = all_engines_with_parallel(2)
        .iter()
        .map(|e| e.name())
        .collect();
    assert_eq!(
        names,
        [
            "brute-force",
            "relalg",
            "hom-dp",
            "fpt",
            "fpt-par",
            "brute-par",
            "relalg-par"
        ]
    );
    assert_eq!(ParFptEngine::new(4).threads, 4);
    assert_eq!(ParBruteForceEngine::new(4).threads, 4);
}
