//! The FPT counting algorithm for pp-formulas (\[CM15\], the positive side
//! of the trichotomy).
//!
//! For a pp-formula `φ = (A, S)` the paper's Theorem 2.11 (quoting
//! [CM14a/CM15]) gives fixed-parameter tractability whenever the formula
//! set satisfies the *tractability condition*: cores and contract graphs
//! of bounded treewidth. The algorithm implemented here:
//!
//! 1. replaces `φ` by its **core** (logically equivalent, hence
//!    answer-preserving);
//! 2. turns each **∃-component** into a *derived constraint* over its
//!    boundary `∂ ⊆ S`: the set of boundary assignments that extend to a
//!    homomorphism of the component into **B**, computed by enumerating
//!    `|B|^|∂|` boundary tuples (∂ is a clique of contract(A, S), so its
//!    size is at most `tw(contract) + 1`) and checking each with a
//!    bounded-treewidth homomorphism DP ([`crate::csp::TdCounter`]);
//! 3. gates on the liberal-free components (plain satisfiability checks);
//! 4. counts assignments of `S` satisfying the liberal atoms plus the
//!    derived constraints by the counting DP over a tree decomposition of
//!    **contract(A, S)** — whose primal graph is exactly the contract
//!    graph, so bounded contract treewidth keeps the tables polynomial.
//!
//! With both treewidths bounded by the condition, the running time is
//! `f(φ) · poly(|B|)` — the FPT regime of Theorem 3.2(1).

use crate::brute::{assignment_space, for_each_assignment, for_each_assignment_in_range};
use crate::csp::{hom_constraints, CspConstraint, TdCounter};
use crate::pool;
use epq_bigint::Natural;
use epq_logic::contract::existential_components;
use epq_logic::PpFormula;
use epq_structures::Structure;
use std::collections::HashSet;

/// Counts `|φ(B)|` with the FPT algorithm. Exact for *every* pp-formula;
/// fixed-parameter tractable when the tractability condition holds.
pub fn count_pp_fpt(pp: &PpFormula, b: &Structure) -> Natural {
    count_pp_fpt_threaded(pp, b, 1)
}

/// Counts `|φ(B)|` with the FPT algorithm, sharding its two hot loops
/// across up to `threads` threads:
///
/// * the per-∃-component **boundary enumeration** (`|B|^|∂|`
///   satisfiability probes against the component's homomorphism DP)
///   splits by contiguous ranges of the flat assignment order;
/// * the final **counting DP** over the contract graph shards each
///   node's table construction by sorted-order chunks of the child
///   table ([`TdCounter::count_par`]).
///
/// Both merges (set union of extendable boundary tuples; disjoint
/// unions / summed `Natural` partials) are order-insensitive, so the
/// result is identical to [`count_pp_fpt`] at every thread count.
pub fn count_pp_fpt_par(pp: &PpFormula, b: &Structure, threads: usize) -> Natural {
    count_pp_fpt_threaded(pp, b, threads)
}

fn count_pp_fpt_threaded(pp: &PpFormula, b: &Structure, threads: usize) -> Natural {
    let core = pp.core();
    let s = core.liberal_count();
    let structure = core.structure();
    let universe = structure.universe_size();

    // Derived constraints per ∃-component, plus satisfiability gates for
    // the liberal-free ones.
    let mut constraints: Vec<CspConstraint> = Vec::new();
    for comp in existential_components(&core) {
        // The component substructure: interior ∪ boundary, with the atoms
        // touching the interior.
        let mut members: Vec<u32> = comp.boundary.clone();
        members.extend(comp.interior.iter().copied());
        let in_interior: HashSet<u32> = comp.interior.iter().copied().collect();
        let index_of = |e: u32| members.iter().position(|&m| m == e).unwrap() as u32;
        let mut sub = Structure::new(structure.signature().clone(), members.len());
        let mut scratch = Vec::new();
        for (rel, _, _) in structure.signature().iter() {
            for t in structure.relation(rel).tuples() {
                if t.iter().any(|e| in_interior.contains(e)) {
                    scratch.clear();
                    scratch.extend(t.iter().map(|&e| index_of(e)));
                    sub.add_tuple(rel, &scratch);
                }
            }
        }
        let checker = TdCounter::new(
            sub.universe_size(),
            universe_size(b),
            hom_constraints(&sub, b),
        );
        if comp.boundary.is_empty() {
            // A sentence component: satisfiable or the whole count is 0.
            if !checker.satisfiable(&[]) {
                return Natural::zero();
            }
            continue;
        }
        // Enumerate boundary assignments; keep the extendable ones.
        let arity = comp.boundary.len();
        let total = assignment_space(universe_size(b), arity);
        let allowed: HashSet<Vec<u32>> = match total {
            Some(total) if threads > 1 && total > 1 => {
                // Shard the boundary sweep: each worker probes one
                // contiguous index range and returns its extendable
                // tuples; the union is order-insensitive.
                let checker = &checker;
                let jobs: Vec<_> = pool::split_ranges(total, threads.saturating_mul(4))
                    .into_iter()
                    .map(|(start, end)| {
                        move || {
                            let mut found = Vec::new();
                            let domain = universe_size(b);
                            for_each_assignment_in_range(
                                domain,
                                arity,
                                start,
                                end,
                                &mut |values| {
                                    let pins: Vec<(u32, u32)> = (0..arity as u32)
                                        .map(|i| (i, values[i as usize]))
                                        .collect();
                                    if checker.satisfiable(&pins) {
                                        found.push(values.to_vec());
                                    }
                                },
                            );
                            found
                        }
                    })
                    .collect();
                pool::run_jobs(threads, jobs)
                    .into_iter()
                    .flatten()
                    .collect()
            }
            _ => {
                let mut allowed = HashSet::new();
                for_each_assignment(universe_size(b), arity, &mut |values| {
                    let pins: Vec<(u32, u32)> =
                        (0..arity as u32).map(|i| (i, values[i as usize])).collect();
                    if checker.satisfiable(&pins) {
                        allowed.insert(values.to_vec());
                    }
                });
                allowed
            }
        };
        constraints.push(CspConstraint::new(comp.boundary.clone(), allowed));
    }

    // Liberal atoms (entirely within S) become direct constraints.
    let mut liberal_structure = Structure::new(structure.signature().clone(), s.max(1));
    if s > 0 {
        for (rel, _, _) in structure.signature().iter() {
            for t in structure.relation(rel).tuples() {
                if t.iter().all(|&e| (e as usize) < s) {
                    liberal_structure.add_tuple(rel, t);
                }
            }
        }
        constraints.extend(hom_constraints(&liberal_structure, b));
    }

    // Dangling quantified variables (no atoms at all) need a nonempty
    // universe: they are Gaifman-isolated quantified vertices.
    let gaifman = structure.gaifman_graph();
    for v in s as u32..universe as u32 {
        if gaifman.degree(v) == 0 && !in_any_tuple(structure, v) && universe_size(b) == 0 {
            return Natural::zero();
        }
    }

    // Count over S by DP on (a tree decomposition of) the contract graph.
    TdCounter::new(s, universe_size(b), constraints).count_par(&[], threads)
}

fn universe_size(b: &Structure) -> usize {
    b.universe_size()
}

fn in_any_tuple(s: &Structure, v: u32) -> bool {
    for (rel, _, _) in s.signature().iter() {
        for t in s.relation(rel).tuples() {
            if t.contains(&v) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::count_pp_brute;
    use epq_logic::parser::parse_query;
    use epq_logic::query::infer_signature;
    use epq_structures::Signature;

    fn pp_of(text: &str) -> PpFormula {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        PpFormula::from_query(&q, &sig).unwrap()
    }

    fn pp_of_with(text: &str, sig: &Signature) -> PpFormula {
        let q = parse_query(text).unwrap();
        PpFormula::from_query(&q, sig).unwrap()
    }

    fn example_c() -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 3)] {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    #[test]
    fn agrees_with_brute_force_on_basic_queries() {
        let b = example_c();
        for text in [
            "E(x,y)",
            "(x,y,z) := E(x,y)",
            "(x) := exists u . E(x,u)",
            "(x) := exists u . E(x,u) & E(u,u)",
            "E(x,y) & E(y,z)",
            "E(x,x)",
            "(x) := E(x,x) & (exists a, b . E(a,b))",
        ] {
            let pp = pp_of(text);
            assert_eq!(
                count_pp_fpt(&pp, &b),
                count_pp_brute(&pp, &b),
                "query {text}"
            );
        }
    }

    #[test]
    fn quantified_star_queries() {
        // (x1,x2) := exists u . E(x1,u) & E(x2,u): pairs with a common
        // out-neighbor.
        let b = example_c();
        let pp = pp_of("(x1,x2) := exists u . E(x1,u) & E(x2,u)");
        assert_eq!(count_pp_fpt(&pp, &b), count_pp_brute(&pp, &b));
        // Three liberal arms — boundary is a 3-clique in the contract.
        let pp3 = pp_of("(x1,x2,x3) := exists u . E(x1,u) & E(x2,u) & E(x3,u)");
        assert_eq!(count_pp_fpt(&pp3, &b), count_pp_brute(&pp3, &b));
    }

    #[test]
    fn quantified_chain_bridging() {
        // (x,y) := exists u, v . E(x,u) & E(u,v) & E(v,y).
        let b = example_c();
        let pp = pp_of("(x,y) := exists u, v . E(x,u) & E(u,v) & E(v,y)");
        assert_eq!(count_pp_fpt(&pp, &b), count_pp_brute(&pp, &b));
    }

    #[test]
    fn unsatisfiable_sentence_component_zeroes() {
        let sig = Signature::from_symbols([("E", 2), ("F", 2)]);
        let mut b = Structure::new(sig.clone(), 3);
        b.add_tuple_named("E", &[0, 1]);
        // F is empty: the sentence part kills the count.
        let pp = pp_of_with("(x) := E(x,x) & (exists a, b . F(a,b))", &sig);
        assert_eq!(count_pp_fpt(&pp, &b).to_u64(), Some(0));
    }

    #[test]
    fn empty_universe_cases() {
        let sig = Signature::from_symbols([("E", 2)]);
        let empty = Structure::new(sig, 0);
        let pp = pp_of("E(x,y)");
        assert_eq!(count_pp_fpt(&pp, &empty).to_u64(), Some(0));
        // Sentence query with liberal-free quantifier over empty universe.
        let pp2 = pp_of("exists a . E(a,a)");
        assert_eq!(count_pp_fpt(&pp2, &empty).to_u64(), Some(0));
    }

    #[test]
    fn liberal_only_variables_contribute_powers() {
        let b = example_c();
        let pp = pp_of("(x,y,z,w) := E(x,y)");
        // 4 edges × 4² for z, w.
        assert_eq!(count_pp_fpt(&pp, &b).to_u64(), Some(64));
    }

    #[test]
    fn coring_does_not_change_counts() {
        // φ(x) = ∃u,v . E(x,u) ∧ E(x,v): core is E(x,u). Count = vertices
        // with out-degree ≥ 1 = 4 on example_c.
        let b = example_c();
        let pp = pp_of("(x) := exists u, v . E(x,u) & E(x,v)");
        assert_eq!(count_pp_fpt(&pp, &b).to_u64(), Some(4));
    }

    #[test]
    fn parallel_fpt_matches_sequential() {
        let b = example_c();
        for text in [
            "E(x,y)",
            "(x,y,z) := E(x,y)",
            "(x) := exists u . E(x,u) & E(u,u)",
            "(x1,x2) := exists u . E(x1,u) & E(x2,u)",
            "(x,y) := exists u, v . E(x,u) & E(u,v) & E(v,y)",
            "(x) := E(x,x) & (exists a, b . E(a,b))",
            "exists a . E(a,a)",
        ] {
            let pp = pp_of(text);
            let expected = count_pp_fpt(&pp, &b);
            for threads in [1usize, 2, 3, 8] {
                assert_eq!(
                    count_pp_fpt_par(&pp, &b, threads),
                    expected,
                    "query {text} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_fpt_on_empty_universe() {
        let sig = Signature::from_symbols([("E", 2)]);
        let empty = Structure::new(sig, 0);
        let pp = pp_of("(x) := exists u . E(x,u)");
        assert_eq!(count_pp_fpt_par(&pp, &empty, 4).to_u64(), Some(0));
    }

    #[test]
    fn larger_structure_cross_check() {
        // Random-ish handcrafted digraph, several query shapes.
        let sig = Signature::from_symbols([("E", 2)]);
        let mut b = Structure::new(sig, 6);
        for (u, v) in [
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (1, 4),
        ] {
            b.add_tuple_named("E", &[u, v]);
        }
        for text in [
            "(x,y) := exists u . E(x,u) & E(u,y)",
            "(x) := exists u, v . E(x,u) & E(x,v) & E(u,v)",
            "E(x,y) & E(y,z) & E(z,x)",
            "(x,y) := E(x,y) & (exists w . E(y,w))",
        ] {
            let pp = pp_of(text);
            assert_eq!(
                count_pp_fpt(&pp, &b),
                count_pp_brute(&pp, &b),
                "query {text}"
            );
        }
    }
}
