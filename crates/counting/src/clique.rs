//! Clique ⇄ query encodings (the hardness anchors of Theorem 3.2).
//!
//! The k-clique query `φ_k(x₁,…,x_k) = ⋀_{i<j} E(x_i, x_j)` over the
//! signature of (symmetrically encoded) graphs has answers that are
//! exactly the ordered k-tuples of pairwise-adjacent, pairwise-distinct
//! vertices — so `|φ_k(G)| = k! · (#k-cliques of G)`. The family
//! `{φ_k : k ∈ N}` fails both the contraction and tractability conditions
//! (its cores are the k-cliques themselves, of treewidth k−1), which is
//! why counting answers for it is `#Clique`-hard: case (3) of the
//! trichotomy. The decision-flavoured variant with all variables
//! quantified (`θ_k = ∃x₁…x_k φ_k`) anchors case (2).

use epq_bigint::Natural;
use epq_graph::Graph;
use epq_logic::{Formula, PpFormula, Query};
use epq_structures::{Signature, Structure};

/// The graph signature `{E/2}`.
pub fn graph_signature() -> Signature {
    Signature::from_symbols([("E", 2)])
}

/// Encodes an undirected graph as a structure with a symmetric edge
/// relation (both orientations of every edge; no loops).
pub fn graph_to_structure(g: &Graph) -> Structure {
    let mut s = Structure::new(graph_signature(), g.vertex_count());
    for (u, v) in g.edges() {
        s.add_tuple_named("E", &[u, v]);
        s.add_tuple_named("E", &[v, u]);
    }
    s
}

/// The k-clique query `φ_k(x₁,…,x_k) = ⋀_{1≤i<j≤k} E(x_i, x_j)`.
///
/// # Panics
/// Panics for `k < 2` (the paper's reductions use k ≥ 2; for k ∈ {0, 1}
/// count vertices directly).
pub fn clique_query(k: usize) -> Query {
    assert!(k >= 2, "clique queries need k >= 2");
    let var = |i: usize| format!("x{i}");
    let mut atoms = Vec::new();
    for i in 1..=k {
        for j in i + 1..=k {
            atoms.push(Formula::atom("E", &[var(i).as_str(), var(j).as_str()]));
        }
    }
    Query::from_formula(Formula::conjunction(atoms)).expect("valid clique query")
}

/// The k-clique query as a pp-formula over the graph signature.
pub fn clique_pp(k: usize) -> PpFormula {
    PpFormula::from_query(&clique_query(k), &graph_signature()).expect("clique query converts")
}

/// The *decision*-flavoured clique query `θ_k = ∃x₁…x_k . φ_k` (all
/// variables quantified; `|θ_k(G)| ∈ {0, 1}` decides k-clique existence).
pub fn clique_sentence_pp(k: usize) -> PpFormula {
    let q = clique_query(k);
    let names: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let sentence = Formula::exists(&name_refs, q.formula().clone());
    let query = Query::from_formula(sentence).expect("valid clique sentence");
    PpFormula::from_query(&query, &graph_signature()).expect("converts")
}

/// Counts k-cliques through the answer-counting lens:
/// `#k-cliques = |φ_k(G)| / k!`.
pub fn count_cliques_via_answers(
    g: &Graph,
    k: usize,
    engine: &dyn crate::engines::PpCountingEngine,
) -> Natural {
    if k == 0 {
        return Natural::one();
    }
    if k == 1 {
        return Natural::from(g.vertex_count());
    }
    let pp = clique_pp(k);
    let b = graph_to_structure(g);
    let answers = engine.count(&pp, &b);
    let (q, r) = answers.div_rem(&factorial(k));
    debug_assert!(r.is_zero(), "answer count must be divisible by k!");
    q
}

/// `k!` as a [`Natural`].
pub fn factorial(k: usize) -> Natural {
    let mut acc = Natural::one();
    for i in 2..=k as u64 {
        acc = acc * Natural::from(i);
    }
    acc
}

/// The case-2 phenomenon made concrete: counting the answers of the
/// pendant-clique query `W_k(x) = ∃u₁…u_k . E(x,u₁) ∧ clique(u₁…u_k)`
/// using only a **clique-decision oracle** — each answer is a vertex `x`
/// whose neighborhood (unioned with vertices reachable by the pendant
/// edge pattern) contains a k-clique with a member adjacent to `x`.
///
/// `oracle(g, k)` must decide whether `g` has a k-clique. The number of
/// oracle calls is `|V(G)|` — a counting problem solved with decision
/// power, which is exactly why case-2 counting is *equivalent* to (not
/// harder than) the clique problem.
pub fn count_pendant_cliques_via_decision_oracle(
    g: &Graph,
    k: usize,
    oracle: &mut dyn FnMut(&Graph, usize) -> bool,
) -> Natural {
    let mut count = Natural::zero();
    let one = Natural::one();
    for x in 0..g.vertex_count() as u32 {
        // W_k(x) holds iff some neighbor u₁ of x lies in a k-clique.
        // Equivalently: the subgraph induced by N(x) ∪ N²-closure that a
        // clique through N(x) could use. A k-clique containing a neighbor
        // of x may include vertices not adjacent to x, so we test: does
        // the graph restricted to vertices-with-a-path-to-N(x) contain a
        // k-clique touching N(x)? Simplest sound encoding: for each
        // neighbor u of x, ask for a k-clique in the subgraph induced by
        // N(u) ∪ {u} — a k-clique containing u exists iff N(u) ∪ {u}
        // induces one containing u, and any k-clique in N(u) ∪ {u}
        // extends to one containing u (u is adjacent to all of N(u)).
        let witnessed = g.neighbors(x).iter().any(|&u| {
            let mut pool: Vec<u32> = g.neighbors(u).iter().copied().collect();
            pool.push(u);
            pool.sort_unstable();
            let (sub, _) = g.induced_subgraph(&pool);
            oracle(&sub, k)
        });
        if witnessed {
            count += &one;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::{BruteForceEngine, FptEngine};
    use epq_graph::cliques::count_k_cliques;
    use epq_graph::generators;

    #[test]
    fn clique_query_shape() {
        let q = clique_query(4);
        assert_eq!(q.formula().atoms().len(), 6);
        assert_eq!(q.liberal_count(), 4);
        let pp = clique_pp(3);
        assert_eq!(pp.structure().universe_size(), 3);
        assert_eq!(pp.structure().tuple_count(), 3);
    }

    #[test]
    fn factorials() {
        assert_eq!(factorial(0).to_u64(), Some(1));
        assert_eq!(factorial(1).to_u64(), Some(1));
        assert_eq!(factorial(5).to_u64(), Some(120));
    }

    #[test]
    fn triangle_counting_matches_graph_algorithm() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (2, 4)]);
        for k in 2..=4 {
            let via_graph = Natural::from(count_k_cliques(&g, k) as u64);
            let via_answers = count_cliques_via_answers(&g, k, &BruteForceEngine);
            assert_eq!(via_answers, via_graph, "k = {k}");
        }
    }

    #[test]
    fn complete_graph_counts() {
        let g = generators::complete_graph(6);
        let via_answers = count_cliques_via_answers(&g, 3, &FptEngine);
        assert_eq!(via_answers.to_u64(), Some(20)); // C(6,3)
    }

    #[test]
    fn clique_sentence_decides() {
        let yes = generators::complete_graph(4);
        let no = generators::cycle_graph(5);
        let theta = clique_sentence_pp(3);
        let b_yes = graph_to_structure(&yes);
        let b_no = graph_to_structure(&no);
        assert_eq!(
            crate::brute::count_pp_brute(&theta, &b_yes).to_u64(),
            Some(1)
        );
        assert_eq!(
            crate::brute::count_pp_brute(&theta, &b_no).to_u64(),
            Some(0)
        );
        // And through the FPT engine (which just runs the generic
        // algorithm — tractability is not required for correctness).
        assert_eq!(crate::fpt::count_pp_fpt(&theta, &b_yes).to_u64(), Some(1));
        assert_eq!(crate::fpt::count_pp_fpt(&theta, &b_no).to_u64(), Some(0));
    }

    #[test]
    fn symmetric_encoding() {
        let g = Graph::from_edges(3, &[(0, 2)]);
        let s = graph_to_structure(&g);
        let e = s.signature().lookup("E").unwrap();
        assert!(s.has_tuple(e, &[0, 2]) && s.has_tuple(e, &[2, 0]));
        assert_eq!(s.tuple_count(), 2);
    }

    #[test]
    fn pendant_counting_via_decision_oracle_matches_fpt() {
        use crate::engines::PpCountingEngine;
        let graphs = [
            generators::complete_graph(6),
            generators::cycle_graph(7),
            Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (1, 3), (2, 4), (3, 4), (5, 6)]),
        ];
        for g in graphs {
            for k in 2..=3usize {
                // The query-side count (the paper's problem).
                let vars: Vec<String> = (1..=k).map(|i| format!("u{i}")).collect();
                let mut atoms = vec![Formula::atom("E", &["x", vars[0].as_str()])];
                for i in 0..k {
                    for j in i + 1..k {
                        atoms.push(Formula::atom("E", &[vars[i].as_str(), vars[j].as_str()]));
                    }
                }
                let refs: Vec<&str> = vars.iter().map(|s| s.as_str()).collect();
                let q = Query::from_formula(Formula::exists(&refs, Formula::conjunction(atoms)))
                    .unwrap();
                let pp = PpFormula::from_query(&q, &graph_signature()).unwrap();
                let b = graph_to_structure(&g);
                let via_query = crate::engines::FptEngine.count(&pp, &b);
                // The decision-oracle count (case-2 reduction).
                let mut oracle_calls = 0usize;
                let mut oracle = |h: &Graph, k: usize| {
                    oracle_calls += 1;
                    epq_graph::cliques::has_k_clique(h, k)
                };
                let via_oracle = count_pendant_cliques_via_decision_oracle(&g, k, &mut oracle);
                assert_eq!(via_query, via_oracle, "k = {k}");
                assert!(oracle_calls <= g.vertex_count() * g.vertex_count());
            }
        }
    }

    #[test]
    fn zero_and_one_cliques() {
        let g = generators::path_graph(4);
        assert_eq!(
            count_cliques_via_answers(&g, 0, &BruteForceEngine).to_u64(),
            Some(1)
        );
        assert_eq!(
            count_cliques_via_answers(&g, 1, &BruteForceEngine).to_u64(),
            Some(4)
        );
    }
}
