//! Counting CSP solutions by dynamic programming over nice tree
//! decompositions, with pinning.
//!
//! This one dynamic program serves both counting algorithms the paper
//! builds on:
//!
//! * constraints taken from the atoms of a quantifier-free pp-formula give
//!   the Dalmau–Jonsson `#Hom` algorithm (the \[DJ04\] dichotomy's positive
//!   side);
//! * constraints combining liberal atoms with the derived ∃-component
//!   boundary relations give the counting stage of the \[CM15\] FPT
//!   algorithm (see [`crate::fpt`]).
//!
//! The table at a node maps assignments of the node's bag to the number of
//! extensions over the forgotten variables; introduce nodes filter against
//! every constraint that fits in the bag and mentions the new variable,
//! forget nodes sum out, join nodes multiply matching entries.
//!
//! # Data layout
//!
//! The DP tables are [`FlatTable`]s — a packed row-major key arena plus
//! an aligned `Natural` column (see [`crate::table`]) — instead of
//! `BTreeMap<Vec<u32>, Natural>`: no per-entry node allocation, no
//! per-key `Vec`, and each pass is a linear scan over contiguous
//! memory.
//!
//! # Determinism
//!
//! The flat tables keep their entries sorted by bag assignment, so
//! every traversal order in this module is a sorted order — nothing
//! iterates a `HashMap`/`HashSet` whose order could differ between runs.
//! (The `allowed` sets of [`CspConstraint`] are packed, sorted
//! [`TupleSet`]s used purely for membership tests.) This matters
//! for the parallel entry point [`TdCounter::count_par`]: its shard
//! boundaries are contiguous chunks of the sorted tables, so they are
//! identical run to run and the parallel counts are reproducible across
//! runs and thread counts.

use crate::table::FlatTable;
pub use crate::table::PAR_NODE_THRESHOLD;
use crate::tupleset::TupleSet;
use epq_bigint::Natural;
use epq_graph::{treewidth, Graph, NiceNode, NiceTreeDecomposition};
use epq_structures::Structure;

/// One constraint: an ordered scope of distinct variables and the set of
/// allowed value tuples.
#[derive(Clone, Debug)]
pub struct CspConstraint {
    /// Distinct variable indices.
    pub scope: Vec<u32>,
    /// Allowed assignments to the scope (in scope order), packed for
    /// the introduce filter's membership probes (see [`TupleSet`]).
    pub allowed: TupleSet,
}

impl CspConstraint {
    /// Builds a constraint from any tuple collection (duplicates
    /// collapse in the packed set); asserts distinct scope.
    ///
    /// # Panics
    /// Panics on a repeated scope variable or a tuple whose width
    /// differs from the scope's.
    pub fn new<I>(scope: Vec<u32>, allowed: I) -> Self
    where
        I: IntoIterator<Item = Vec<u32>>,
    {
        let mut sorted = scope.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            scope.len(),
            "constraint scope must be distinct"
        );
        let allowed = TupleSet::from_tuples(scope.len(), allowed);
        CspConstraint { scope, allowed }
    }
}

/// A prepared counting solver over a nice tree decomposition of the
/// constraint network's primal graph. Reusable across different pin sets
/// (the FPT algorithm's boundary enumeration relies on this).
pub struct TdCounter {
    variables: usize,
    domain: usize,
    constraints: Vec<CspConstraint>,
    nice: NiceTreeDecomposition,
    /// checks[node] = constraints verified at that introduce node.
    checks: Vec<Vec<usize>>,
}

impl TdCounter {
    /// Prepares the solver: builds the primal graph, a (small-exact /
    /// heuristic) tree decomposition, its nice form, and the constraint
    /// placement.
    pub fn new(variables: usize, domain: usize, constraints: Vec<CspConstraint>) -> Self {
        let mut primal = Graph::new(variables);
        for c in &constraints {
            for (i, &a) in c.scope.iter().enumerate() {
                for &b in &c.scope[i + 1..] {
                    primal.add_edge(a, b);
                }
            }
        }
        let td = treewidth::best_decomposition(&primal);
        let nice = NiceTreeDecomposition::from_tree_decomposition(&td);
        let mut checks = vec![Vec::new(); nice.len()];
        for (node_index, node) in nice.nodes().iter().enumerate() {
            if let NiceNode::Introduce { vertex, .. } = node {
                let bag = nice.bag(node_index);
                for (ci, c) in constraints.iter().enumerate() {
                    if c.scope.contains(vertex) && c.scope.iter().all(|v| bag.contains(v)) {
                        checks[node_index].push(ci);
                    }
                }
            }
        }
        TdCounter {
            variables,
            domain,
            constraints,
            nice,
            checks,
        }
    }

    /// The width of the decomposition in use.
    pub fn width(&self) -> usize {
        self.nice.width()
    }

    /// Counts satisfying assignments with the given variables pinned.
    pub fn count(&self, pins: &[(u32, u32)]) -> Natural {
        self.count_with_threads(pins, 1)
    }

    /// Whether any satisfying assignment exists under the pins.
    pub fn satisfiable(&self, pins: &[(u32, u32)]) -> bool {
        !self.count(pins).is_zero()
    }

    /// Counts satisfying assignments with the given pins, sharding the
    /// DP across up to `threads` threads.
    ///
    /// Parallelism is *within* each node of the tree-decomposition DP:
    /// a node's table is built by splitting its source table into
    /// contiguous sorted-order chunks, one partial table per worker,
    /// merged afterwards (disjoint sorted unions at introduce/join
    /// nodes — the key maps are injective — and summed `Natural`
    /// entries at forget nodes; see [`crate::table`]). Total work is
    /// therefore exactly the sequential DP's, chunk boundaries are
    /// deterministic, and the merged sums are order-insensitive, so the
    /// result equals [`TdCounter::count`] bit for bit at every thread
    /// count. Nodes whose tables are below [`PAR_NODE_THRESHOLD`] run
    /// inline — small tables are not worth a scope spawn.
    pub fn count_par(&self, pins: &[(u32, u32)], threads: usize) -> Natural {
        self.count_with_threads(pins, threads.max(1))
    }

    fn count_with_threads(&self, pins: &[(u32, u32)], threads: usize) -> Natural {
        let mut pinned: Vec<Option<u32>> = vec![None; self.variables];
        for &(v, x) in pins {
            assert!((v as usize) < self.variables, "pin variable out of range");
            assert!((x as usize) < self.domain, "pin value out of range");
            if let Some(prev) = pinned[v as usize] {
                if prev != x {
                    return Natural::zero();
                }
            }
            pinned[v as usize] = Some(x);
        }
        // tables[node]: bag assignment (sorted-bag order) → extension
        // count, as a packed-key flat table.
        let mut tables: Vec<FlatTable> = Vec::with_capacity(self.nice.len());
        for (node_index, node) in self.nice.nodes().iter().enumerate() {
            let table = match node {
                NiceNode::Leaf => FlatTable::unit(),
                NiceNode::Introduce { vertex, child } => {
                    self.introduce_table(node_index, *vertex, &tables[*child], &pinned, threads)
                }
                NiceNode::Forget { vertex, child } => {
                    let slot = self
                        .nice
                        .bag(*child)
                        .iter()
                        .position(|v| v == vertex)
                        .unwrap();
                    tables[*child].forget(slot, threads)
                }
                NiceNode::Join { left, right } => tables[*left].join(&tables[*right], threads),
            };
            tables.push(table);
        }
        let root = self.nice.root();
        std::mem::replace(&mut tables[root], FlatTable::new(0)).root_count()
    }

    fn introduce_table(
        &self,
        node_index: usize,
        vertex: u32,
        child_table: &FlatTable,
        pinned: &[Option<u32>],
        threads: usize,
    ) -> FlatTable {
        let bag: Vec<u32> = self.nice.bag(node_index).iter().copied().collect();
        let slot = bag.iter().position(|&v| v == vertex).unwrap();
        let candidates: Vec<u32> = match pinned[vertex as usize] {
            Some(x) => vec![x],
            None => (0..self.domain as u32).collect(),
        };
        // Per placed constraint, the bag positions of its scope — the
        // key-to-tuple gather is precomputed once per node, not once
        // per (entry × candidate × scope variable).
        let gathers: Vec<(&CspConstraint, Vec<usize>)> = self.checks[node_index]
            .iter()
            .map(|&ci| {
                let c = &self.constraints[ci];
                let positions = c
                    .scope
                    .iter()
                    .map(|v| bag.iter().position(|b| b == v).unwrap())
                    .collect();
                (c, positions)
            })
            .collect();
        let keep = |key: &[u32]| {
            gathers.iter().all(|(c, positions)| {
                // Scopes fit a stack buffer (they are bag-sized); the
                // heap fallback is for pathological arities only.
                let mut buf = [0u32; 16];
                if positions.len() <= buf.len() {
                    for (dst, &p) in buf[..positions.len()].iter_mut().zip(positions) {
                        *dst = key[p];
                    }
                    c.allowed.contains(&buf[..positions.len()])
                } else {
                    let tuple: Vec<u32> = positions.iter().map(|&p| key[p]).collect();
                    c.allowed.contains(tuple.as_slice())
                }
            })
        };
        child_table.introduce(slot, &candidates, keep, threads)
    }
}

/// Brute-force CSP counting (test oracle).
pub fn count_csp_brute(
    variables: usize,
    domain: usize,
    constraints: &[CspConstraint],
    pins: &[(u32, u32)],
) -> Natural {
    let mut count = Natural::zero();
    let one = Natural::one();
    crate::brute::for_each_assignment(domain, variables, &mut |values| {
        let pins_ok = pins.iter().all(|&(v, x)| values[v as usize] == x);
        if !pins_ok {
            return;
        }
        let ok = constraints.iter().all(|c| {
            let tuple: Vec<u32> = c.scope.iter().map(|&v| values[v as usize]).collect();
            c.allowed.contains(&tuple)
        });
        if ok {
            count += &one;
        }
    });
    count
}

/// Builds the atom constraints of a structure-to-structure homomorphism
/// problem: one constraint per tuple of `a`, whose allowed set is the
/// matching projection of the corresponding relation of `b` (repeated
/// elements in `a`'s tuple filter `b`'s tuples).
pub fn hom_constraints(a: &Structure, b: &Structure) -> Vec<CspConstraint> {
    assert_eq!(
        a.signature(),
        b.signature(),
        "hom constraints need equal signatures"
    );
    let mut out = Vec::new();
    for (rel, _, _) in a.signature().iter() {
        for atom in a.relation(rel).tuples() {
            // Distinct scope in order of first occurrence.
            let mut scope: Vec<u32> = Vec::new();
            for &e in atom {
                if !scope.contains(&e) {
                    scope.push(e);
                }
            }
            let positions: Vec<usize> = scope
                .iter()
                .map(|v| atom.iter().position(|e| e == v).unwrap())
                .collect();
            let mut allowed: Vec<Vec<u32>> = Vec::new();
            'tuples: for t in b.relation(rel).tuples() {
                for (i, &e) in atom.iter().enumerate() {
                    let first = atom.iter().position(|x| *x == e).unwrap();
                    if t[i] != t[first] {
                        continue 'tuples;
                    }
                }
                allowed.push(positions.iter().map(|&i| t[i]).collect());
            }
            out.push(CspConstraint::new(scope, allowed));
        }
    }
    out
}

/// Counts homomorphisms `a → b` by the tree-decomposition DP
/// (the Dalmau–Jonsson algorithm when `a`'s Gaifman graph has bounded
/// treewidth). Exact for every input; efficient when the treewidth is
/// small.
pub fn count_homs_td(a: &Structure, b: &Structure) -> Natural {
    TdCounter::new(a.universe_size(), b.universe_size(), hom_constraints(a, b)).count(&[])
}

/// Like [`count_homs_td`], but shards the DP across up to `threads`
/// threads (see [`TdCounter::count_par`]).
pub fn count_homs_td_par(a: &Structure, b: &Structure, threads: usize) -> Natural {
    TdCounter::new(a.universe_size(), b.universe_size(), hom_constraints(a, b))
        .count_par(&[], threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_structures::hom::count_homomorphisms;
    use epq_structures::Signature;
    use std::collections::HashSet;

    fn digraph(n: usize, edges: &[(u32, u32)]) -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, n);
        for &(u, v) in edges {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    fn constraint(scope: &[u32], allowed: &[&[u32]]) -> CspConstraint {
        CspConstraint::new(
            scope.to_vec(),
            allowed.iter().map(|t| t.to_vec()).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn unconstrained_counting_is_domain_power() {
        let counter = TdCounter::new(3, 4, Vec::new());
        assert_eq!(counter.count(&[]).to_u64(), Some(64));
        assert_eq!(counter.count(&[(0, 1)]).to_u64(), Some(16));
        assert_eq!(counter.count(&[(0, 1), (1, 2), (2, 3)]).to_u64(), Some(1));
    }

    #[test]
    fn contradictory_pins_give_zero() {
        let counter = TdCounter::new(2, 3, Vec::new());
        assert_eq!(counter.count(&[(0, 1), (0, 2)]).to_u64(), Some(0));
    }

    #[test]
    fn single_constraint_counts_allowed_tuples() {
        let c = constraint(&[0, 1], &[&[0, 1], &[1, 2], &[2, 0]]);
        let counter = TdCounter::new(2, 3, vec![c]);
        assert_eq!(counter.count(&[]).to_u64(), Some(3));
        assert_eq!(counter.count(&[(0, 1)]).to_u64(), Some(1));
    }

    #[test]
    fn chain_csp_matches_brute_force() {
        // A 5-variable chain of "successor mod 4" constraints.
        let succ: Vec<Vec<u32>> = (0..4u32).map(|x| vec![x, (x + 1) % 4]).collect();
        let allowed: HashSet<Vec<u32>> = succ.into_iter().collect();
        let constraints: Vec<CspConstraint> = (0..4)
            .map(|i| CspConstraint::new(vec![i, i + 1], allowed.clone()))
            .collect();
        let counter = TdCounter::new(5, 4, constraints.clone());
        assert_eq!(counter.count(&[]), count_csp_brute(5, 4, &constraints, &[]));
        assert_eq!(counter.count(&[]).to_u64(), Some(4));
        assert_eq!(
            counter.count(&[(2, 3)]),
            count_csp_brute(5, 4, &constraints, &[(2, 3)])
        );
    }

    #[test]
    fn cyclic_csp_needs_join_nodes() {
        // Triangle of difference constraints with domain 3: proper
        // 3-colorings of K3 = 6.
        let diff: HashSet<Vec<u32>> = (0..3u32)
            .flat_map(|a| (0..3u32).filter(move |&b| a != b).map(move |b| vec![a, b]))
            .collect();
        let constraints = vec![
            CspConstraint::new(vec![0, 1], diff.clone()),
            CspConstraint::new(vec![1, 2], diff.clone()),
            CspConstraint::new(vec![0, 2], diff.clone()),
        ];
        let counter = TdCounter::new(3, 3, constraints.clone());
        assert_eq!(counter.count(&[]).to_u64(), Some(6));
        assert_eq!(counter.count(&[]), count_csp_brute(3, 3, &constraints, &[]));
    }

    #[test]
    fn hom_dp_matches_backtracking_counts() {
        let c4 = digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let k3 = digraph(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]);
        let p4 = digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        for (a, b) in [(&p4, &k3), (&c4, &k3), (&p4, &c4), (&c4, &c4)] {
            assert_eq!(count_homs_td(a, b), count_homomorphisms(a, b));
        }
    }

    #[test]
    fn hom_dp_handles_repeated_elements() {
        // Loop atom E(x,x): homs into C with one loop = 1.
        let loop_a = digraph(1, &[(0, 0)]);
        let c = digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 3)]);
        assert_eq!(count_homs_td(&loop_a, &c).to_u64(), Some(1));
    }

    #[test]
    fn hom_dp_with_isolated_vertices() {
        // Edge + 2 isolated vertices into a 2-cycle: 2 · 2² = 8.
        let a = digraph(4, &[(0, 1)]);
        let b = digraph(2, &[(0, 1), (1, 0)]);
        assert_eq!(count_homs_td(&a, &b).to_u64(), Some(8));
    }

    #[test]
    fn grid_hom_counts_match_backtracking() {
        // 2×3 grid pattern (treewidth 2) into K3 — exercises join nodes.
        let mut a = digraph(6, &[]);
        let grid_edges = [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)];
        for (u, v) in grid_edges {
            a.add_tuple_named("E", &[u, v]);
        }
        let k3 = digraph(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]);
        assert_eq!(count_homs_td(&a, &k3), count_homomorphisms(&a, &k3));
    }

    #[test]
    fn empty_domain() {
        let counter = TdCounter::new(2, 0, Vec::new());
        assert_eq!(counter.count(&[]).to_u64(), Some(0));
        let trivial = TdCounter::new(0, 0, Vec::new());
        assert_eq!(trivial.count(&[]).to_u64(), Some(1));
    }

    #[test]
    fn parallel_count_matches_sequential() {
        // Chain CSP, triangle CSP, and an unconstrained space, at
        // several thread counts and with user pins in play.
        let succ: Vec<Vec<u32>> = (0..4u32).map(|x| vec![x, (x + 1) % 4]).collect();
        let allowed: HashSet<Vec<u32>> = succ.into_iter().collect();
        let chain: Vec<CspConstraint> = (0..4)
            .map(|i| CspConstraint::new(vec![i, i + 1], allowed.clone()))
            .collect();
        let diff: HashSet<Vec<u32>> = (0..3u32)
            .flat_map(|a| (0..3u32).filter(move |&b| a != b).map(move |b| vec![a, b]))
            .collect();
        let triangle = vec![
            CspConstraint::new(vec![0, 1], diff.clone()),
            CspConstraint::new(vec![1, 2], diff.clone()),
            CspConstraint::new(vec![0, 2], diff),
        ];
        let cases = [
            TdCounter::new(5, 4, chain),
            TdCounter::new(3, 3, triangle),
            TdCounter::new(4, 3, Vec::new()),
        ];
        for counter in &cases {
            for pins in [&[][..], &[(0, 1)][..], &[(1, 2), (2, 0)][..]] {
                let expected = counter.count(pins);
                for threads in [1usize, 2, 3, 8] {
                    assert_eq!(
                        counter.count_par(pins, threads),
                        expected,
                        "pins {pins:?} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_count_degenerate_domains() {
        // Domain 0 and 1, and a fully pinned instance, fall back to the
        // sequential path.
        let counter = TdCounter::new(2, 0, Vec::new());
        assert_eq!(counter.count_par(&[], 4).to_u64(), Some(0));
        let unary = TdCounter::new(3, 1, Vec::new());
        assert_eq!(unary.count_par(&[], 4).to_u64(), Some(1));
        let pinned = TdCounter::new(2, 3, Vec::new());
        assert_eq!(pinned.count_par(&[(0, 1), (1, 2)], 4).to_u64(), Some(1));
        let trivial = TdCounter::new(0, 5, Vec::new());
        assert_eq!(trivial.count_par(&[], 4).to_u64(), Some(1));
    }

    #[test]
    fn parallel_hom_counts_match() {
        let c4 = digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let k3 = digraph(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]);
        let p4 = digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        for (a, b) in [(&p4, &k3), (&c4, &k3), (&p4, &c4), (&c4, &c4)] {
            let expected = count_homs_td(a, b);
            for threads in [2usize, 4] {
                assert_eq!(count_homs_td_par(a, b, threads), expected);
            }
        }
    }

    #[test]
    fn width_is_reported() {
        let diff: HashSet<Vec<u32>> = HashSet::new();
        let constraints = vec![
            CspConstraint::new(vec![0, 1], diff.clone()),
            CspConstraint::new(vec![1, 2], diff),
        ];
        let counter = TdCounter::new(3, 2, constraints);
        assert_eq!(counter.width(), 1);
    }
}
