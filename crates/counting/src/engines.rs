//! A common interface over the pp-counting engines, for cross-checking
//! tests and the benchmark harness (experiment F1).

use epq_bigint::Natural;
use epq_logic::PpFormula;
use epq_structures::Structure;

/// An engine that computes `|φ(B)|` for prenex pp-formulas.
///
/// Engines are `Send + Sync` so that one engine instance can serve
/// counts for many structures concurrently (the batched counting API
/// in `epq_core::prepared` fans a shared `&dyn PpCountingEngine`
/// across the pool workers). All engines here are stateless or hold
/// only a thread cap, so the bound is free.
pub trait PpCountingEngine: Send + Sync {
    /// A short display name for reports.
    fn name(&self) -> &'static str;

    /// Computes `|φ(B)|`.
    fn count(&self, pp: &PpFormula, b: &Structure) -> Natural;

    /// Whether this engine evaluates by relational-algebra atom scans,
    /// so that an incremental maintainer
    /// (`epq_core::incremental::LiveCount`) can re-evaluate affected
    /// formulas through cached scan intermediates
    /// (`epq_relalg::ScanCache`). The DP-table and enumeration engines
    /// return `false`: a dirty relation invalidates their state
    /// wholesale, so incremental maintenance falls back to a full
    /// per-formula recount through the engine.
    fn scan_based(&self) -> bool {
        false
    }
}

/// Exhaustive assignment enumeration (`O(|B|^|lib|)` hom checks).
pub struct BruteForceEngine;

impl PpCountingEngine for BruteForceEngine {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn count(&self, pp: &PpFormula, b: &Structure) -> Natural {
        crate::brute::count_pp_brute(pp, b)
    }
}

/// The relational-algebra engine (scan/join/project, per component).
pub struct RelalgEngine;

impl PpCountingEngine for RelalgEngine {
    fn name(&self) -> &'static str {
        "relalg"
    }

    fn count(&self, pp: &PpFormula, b: &Structure) -> Natural {
        epq_relalg::count_pp(pp, b)
    }

    fn scan_based(&self) -> bool {
        true
    }
}

/// The `#Hom` tree-decomposition dynamic program (Dalmau–Jonsson).
///
/// Directly applicable to quantifier-free formulas, where
/// `|φ(B)| = #Hom(A, B) · |B|^(#isolated liberal variables not in atoms)`
/// — which the DP handles natively because isolated liberal variables are
/// unconstrained CSP variables. Quantified formulas delegate to the FPT
/// algorithm (homomorphism counts do not project).
pub struct HomDpEngine;

impl PpCountingEngine for HomDpEngine {
    fn name(&self) -> &'static str {
        "hom-dp"
    }

    fn count(&self, pp: &PpFormula, b: &Structure) -> Natural {
        if pp.quantified_names().is_empty() {
            crate::csp::count_homs_td(pp.structure(), b)
        } else {
            crate::fpt::count_pp_fpt(pp, b)
        }
    }
}

/// The full FPT algorithm (\[CM15\]; see [`crate::fpt`]).
pub struct FptEngine;

impl PpCountingEngine for FptEngine {
    fn name(&self) -> &'static str {
        "fpt"
    }

    fn count(&self, pp: &PpFormula, b: &Structure) -> Natural {
        crate::fpt::count_pp_fpt(pp, b)
    }
}

/// The parallel FPT engine (`fpt-par`): the \[CM15\] algorithm with its
/// boundary enumeration and counting DP sharded across a scoped thread
/// pool (see [`crate::pool`]). Counts are identical to [`FptEngine`] at
/// every thread count.
pub struct ParFptEngine {
    /// Maximum worker threads; 1 reproduces the sequential engine.
    pub threads: usize,
}

impl ParFptEngine {
    /// An engine using up to `threads` workers.
    pub fn new(threads: usize) -> Self {
        ParFptEngine {
            threads: threads.max(1),
        }
    }
}

impl Default for ParFptEngine {
    /// Uses every available hardware thread.
    fn default() -> Self {
        ParFptEngine::new(crate::pool::available_threads())
    }
}

impl PpCountingEngine for ParFptEngine {
    fn name(&self) -> &'static str {
        "fpt-par"
    }

    fn count(&self, pp: &PpFormula, b: &Structure) -> Natural {
        crate::fpt::count_pp_fpt_par(pp, b, self.threads)
    }
}

/// The parallel brute-force engine (`brute-par`): exhaustive assignment
/// enumeration with the flat index space split into contiguous shards
/// (see [`crate::brute::count_pp_brute_par`]).
pub struct ParBruteForceEngine {
    /// Maximum worker threads; 1 reproduces the sequential engine.
    pub threads: usize,
}

impl ParBruteForceEngine {
    /// An engine using up to `threads` workers.
    pub fn new(threads: usize) -> Self {
        ParBruteForceEngine {
            threads: threads.max(1),
        }
    }
}

impl Default for ParBruteForceEngine {
    /// Uses every available hardware thread.
    fn default() -> Self {
        ParBruteForceEngine::new(crate::pool::available_threads())
    }
}

impl PpCountingEngine for ParBruteForceEngine {
    fn name(&self) -> &'static str {
        "brute-par"
    }

    fn count(&self, pp: &PpFormula, b: &Structure) -> Natural {
        crate::brute::count_pp_brute_par(pp, b, self.threads)
    }
}

/// The pool-parallel relational-algebra engine (`relalg-par`): each
/// join's outer relation is partitioned across the shared `epq-pool`
/// workers (see [`epq_relalg::count_pp_par`]). Counts are identical to
/// [`RelalgEngine`] at every thread count.
pub struct ParRelalgEngine {
    /// Maximum worker threads; 1 reproduces the sequential engine.
    pub threads: usize,
}

impl ParRelalgEngine {
    /// An engine using up to `threads` workers.
    pub fn new(threads: usize) -> Self {
        ParRelalgEngine {
            threads: threads.max(1),
        }
    }
}

impl Default for ParRelalgEngine {
    /// Uses every available hardware thread.
    fn default() -> Self {
        ParRelalgEngine::new(crate::pool::available_threads())
    }
}

impl PpCountingEngine for ParRelalgEngine {
    fn name(&self) -> &'static str {
        "relalg-par"
    }

    fn count(&self, pp: &PpFormula, b: &Structure) -> Natural {
        epq_relalg::count_pp_par(pp, b, self.threads)
    }

    fn scan_based(&self) -> bool {
        true
    }
}

/// The sequential engines, for cross-checking loops.
pub fn all_engines() -> Vec<Box<dyn PpCountingEngine>> {
    vec![
        Box::new(BruteForceEngine),
        Box::new(RelalgEngine),
        Box::new(HomDpEngine),
        Box::new(FptEngine),
    ]
}

/// Every engine, sequential and parallel, the parallel ones capped at
/// `threads` workers — the full cross-checking set.
pub fn all_engines_with_parallel(threads: usize) -> Vec<Box<dyn PpCountingEngine>> {
    let mut engines = all_engines();
    engines.push(Box::new(ParFptEngine::new(threads)));
    engines.push(Box::new(ParBruteForceEngine::new(threads)));
    engines.push(Box::new(ParRelalgEngine::new(threads)));
    engines
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_logic::parser::parse_query;
    use epq_logic::query::infer_signature;
    use epq_structures::Signature;

    fn pp_of(text: &str) -> PpFormula {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        PpFormula::from_query(&q, &sig).unwrap()
    }

    fn structures() -> Vec<Structure> {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut c = Structure::new(sig.clone(), 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 3)] {
            c.add_tuple_named("E", &[u, v]);
        }
        let mut dense = Structure::new(sig.clone(), 5);
        for u in 0..5u32 {
            for v in 0..5u32 {
                if (u + 2 * v) % 3 == 0 {
                    dense.add_tuple_named("E", &[u, v]);
                }
            }
        }
        let empty = Structure::new(sig, 3);
        vec![c, dense, empty]
    }

    #[test]
    fn all_engines_agree_across_queries_and_structures() {
        let queries = [
            "E(x,y)",
            "(x,y,z) := E(x,y)",
            "E(x,y) & E(y,z)",
            "E(x,x)",
            "(x) := exists u . E(x,u)",
            "(x,y) := exists u . E(x,u) & E(y,u)",
            "(x) := exists u, v . E(x,u) & E(u,v)",
        ];
        let engines = all_engines_with_parallel(3);
        for b in structures() {
            for q in queries {
                let pp = pp_of(q);
                let reference = engines[0].count(&pp, &b);
                for e in &engines[1..] {
                    assert_eq!(
                        e.count(&pp, &b),
                        reference,
                        "engine {} disagrees on {q}",
                        e.name()
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_engines_agree_at_every_thread_count() {
        let pp = pp_of("(x,y) := exists u . E(x,u) & E(y,u)");
        for b in structures() {
            let expected = FptEngine.count(&pp, &b);
            for threads in [1usize, 2, 4] {
                assert_eq!(ParFptEngine::new(threads).count(&pp, &b), expected);
                assert_eq!(ParBruteForceEngine::new(threads).count(&pp, &b), expected);
                assert_eq!(ParRelalgEngine::new(threads).count(&pp, &b), expected);
            }
        }
    }

    #[test]
    fn parallel_engine_defaults_use_available_hardware() {
        assert!(ParFptEngine::default().threads >= 1);
        assert!(ParBruteForceEngine::default().threads >= 1);
        assert!(ParRelalgEngine::default().threads >= 1);
        // A zero request is clamped to one worker.
        assert_eq!(ParFptEngine::new(0).threads, 1);
        assert_eq!(ParBruteForceEngine::new(0).threads, 1);
        assert_eq!(ParRelalgEngine::new(0).threads, 1);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_engines_with_parallel(2)
            .iter()
            .map(|e| e.name())
            .collect();
        assert_eq!(names.len(), 7);
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
    }
}
