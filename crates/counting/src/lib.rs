//! # epq-counting — answer-counting engines
//!
//! Substrate crate S6 of the `epq` workspace (see `DESIGN.md`).
//!
//! The trichotomy theorem is about the complexity of computing `|φ(B)|`.
//! This crate implements the algorithms on both sides of the tractability
//! frontier:
//!
//! * [`brute`] — exhaustive assignment enumeration (the ground truth every
//!   other engine is tested against);
//! * [`csp`] — a counting dynamic program over *nice tree decompositions*
//!   of constraint networks, with pinning support. Instantiated on a
//!   quantifier-free pp-formula it is the Dalmau–Jonsson `#Hom` algorithm;
//!   instantiated on the contract-graph CSP it is the counting stage of
//!   the FPT algorithm;
//! * [`fpt`] — the full fixed-parameter tractable counting algorithm for
//!   pp-formulas satisfying the tractability condition \[CM15\], used as a
//!   black box by the paper's Theorem 3.2(1): core the formula, turn each
//!   ∃-component into a derived constraint over its (clique-sized)
//!   boundary via bounded-treewidth homomorphism checks, then count
//!   assignments by dynamic programming over a tree decomposition of
//!   contract(A, S);
//! * [`engines`] — a common trait over the engines (brute force, relational
//!   algebra, #Hom-DP, FPT, and the work-sharded parallel variants
//!   `fpt-par` / `brute-par`) for the cross-checking tests and benchmarks;
//! * [`pool`] — the minimal scoped thread pool (std-only; the build
//!   container is offline) backing the parallel engines;
//! * [`table`] — the packed-key flat DP tables (row-major key arena +
//!   `Natural` column) the tree-decomposition DP runs on;
//! * [`tupleset`] — packed, sorted tuple sets backing every
//!   constraint's `allowed` relation (the introduce filter's membership
//!   probes run on machine words, not hashed `Vec` keys);
//! * [`clique`] — the clique ⇄ query encodings anchoring the hardness side
//!   (cases (2) and (3) of the trichotomy);
//! * [`decision`] — answer existence / model checking (the 1-or-0
//!   counting instances the paper generalizes).

pub mod brute;
pub mod clique;
pub mod csp;
pub mod decision;
pub mod engines;
pub mod fpt;
pub mod pool;
pub mod table;
pub mod tupleset;

pub use csp::{CspConstraint, TdCounter};
pub use engines::{
    BruteForceEngine, FptEngine, HomDpEngine, ParBruteForceEngine, ParFptEngine, PpCountingEngine,
    RelalgEngine,
};
pub use table::FlatTable;
pub use tupleset::TupleSet;
