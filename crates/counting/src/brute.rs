//! Brute-force counting by assignment enumeration (ground truth).

use epq_bigint::Natural;
use epq_logic::{PpFormula, Query, Var};
use epq_structures::Structure;
use std::collections::HashMap;

/// Counts `|φ(B)|` for an arbitrary ep-query by enumerating all
/// `|B|^|lib(φ)|` assignments and evaluating the formula directly
/// (existential quantifiers scan the universe recursively).
///
/// Exponential — the reference implementation everything else is checked
/// against.
pub fn count_ep_brute(query: &Query, b: &Structure) -> Natural {
    let liberal = query.liberal();
    let mut count = Natural::zero();
    let one = Natural::one();
    for_each_assignment(b.universe_size(), liberal.len(), &mut |values| {
        let env: HashMap<Var, u32> = liberal
            .iter()
            .cloned()
            .zip(values.iter().copied())
            .collect();
        if query.formula().satisfied_by(b, &env) {
            count += &one;
        }
    });
    count
}

/// Counts `|φ(B)|` for a pp-formula by enumerating liberal assignments and
/// testing homomorphism extension (the Chandra–Merlin criterion).
pub fn count_pp_brute(pp: &PpFormula, b: &Structure) -> Natural {
    let mut count = Natural::zero();
    let one = Natural::one();
    for_each_assignment(b.universe_size(), pp.liberal_count(), &mut |values| {
        if pp.satisfied_by(b, values) {
            count += &one;
        }
    });
    count
}

/// Counts the union of disjunct answer sets by enumeration: an assignment
/// is counted once if *some* disjunct accepts it. All disjuncts must share
/// the same liberal variable set (the disjunctive-form invariant).
pub fn count_disjuncts_brute(disjuncts: &[PpFormula], b: &Structure) -> Natural {
    if disjuncts.is_empty() {
        return Natural::zero();
    }
    let s = disjuncts[0].liberal_count();
    for d in disjuncts {
        assert_eq!(
            d.liberal_names(),
            disjuncts[0].liberal_names(),
            "disjuncts must share the liberal variable set"
        );
    }
    let mut count = Natural::zero();
    let one = Natural::one();
    for_each_assignment(b.universe_size(), s, &mut |values| {
        if disjuncts.iter().any(|d| d.satisfied_by(b, values)) {
            count += &one;
        }
    });
    count
}

/// Calls `visit` on every tuple in `{0..domain}^arity` (a single empty
/// tuple for arity 0).
pub fn for_each_assignment(domain: usize, arity: usize, visit: &mut impl FnMut(&[u32])) {
    let mut values = vec![0u32; arity];
    if arity == 0 {
        visit(&values);
        return;
    }
    if domain == 0 {
        return;
    }
    loop {
        visit(&values);
        // Odometer increment.
        let mut i = 0;
        loop {
            values[i] += 1;
            if (values[i] as usize) < domain {
                break;
            }
            values[i] = 0;
            i += 1;
            if i == arity {
                return;
            }
        }
    }
}

/// The size of the assignment space `{0..domain}^arity`, or `None` on
/// `u128` overflow (such spaces are far beyond brute-force reach).
pub fn assignment_space(domain: usize, arity: usize) -> Option<u128> {
    (domain as u128).checked_pow(u32::try_from(arity).ok()?)
}

/// Calls `visit` on the assignments with flat index in `start..end`,
/// where index `i` denotes the tuple whose `j`-th coordinate is the
/// `j`-th least-significant base-`domain` digit of `i` — exactly the
/// order [`for_each_assignment`] visits, so concatenating the ranges of
/// a partition of `0..domain^arity` replays the full enumeration.
///
/// This is the sharding primitive of the parallel brute-force engine:
/// each worker sweeps one contiguous index range.
pub fn for_each_assignment_in_range(
    domain: usize,
    arity: usize,
    start: u128,
    end: u128,
    visit: &mut impl FnMut(&[u32]),
) {
    if start >= end {
        return;
    }
    if arity == 0 {
        // The single empty tuple has index 0.
        if start == 0 {
            visit(&[]);
        }
        return;
    }
    if domain == 0 {
        return;
    }
    // Decode `start` into odometer digits (variable 0 least significant).
    let mut values = vec![0u32; arity];
    let mut rest = start;
    for v in values.iter_mut() {
        *v = (rest % domain as u128) as u32;
        rest /= domain as u128;
    }
    debug_assert_eq!(rest, 0, "start index out of the assignment space");
    let mut remaining = end - start;
    loop {
        visit(&values);
        remaining -= 1;
        if remaining == 0 {
            return;
        }
        let mut i = 0;
        loop {
            values[i] += 1;
            if (values[i] as usize) < domain {
                break;
            }
            values[i] = 0;
            i += 1;
            if i == arity {
                return;
            }
        }
    }
}

/// Counts `|φ(B)|` like [`count_pp_brute`], but sweeps the assignment
/// space in parallel: the flat index range `0..|B|^|lib|` is split into
/// contiguous shards (a few per worker, so the atomic job cursor
/// balances uneven satisfiability checks) and the per-shard partial
/// counts are summed in shard order — the result is bit-identical to
/// the sequential count at every thread count.
pub fn count_pp_brute_par(pp: &PpFormula, b: &Structure, threads: usize) -> Natural {
    let arity = pp.liberal_count();
    let domain = b.universe_size();
    let total = match assignment_space(domain, arity) {
        Some(t) => t,
        None => return count_pp_brute(pp, b),
    };
    if threads <= 1 || total < 2 {
        return count_pp_brute(pp, b);
    }
    let shards = crate::pool::split_ranges(total, threads.saturating_mul(4));
    let jobs: Vec<_> = shards
        .into_iter()
        .map(|(start, end)| {
            move || {
                let mut count = Natural::zero();
                let one = Natural::one();
                for_each_assignment_in_range(domain, arity, start, end, &mut |values| {
                    if pp.satisfied_by(b, values) {
                        count += &one;
                    }
                });
                count
            }
        })
        .collect();
    let mut acc = Natural::zero();
    for partial in crate::pool::run_jobs(threads, jobs) {
        acc += &partial;
    }
    acc
}

/// Convenience: count an ep-formula given as text against `b`.
///
/// Panics on parse/validation errors — intended for tests and examples.
pub fn count_text(query_text: &str, b: &Structure) -> Natural {
    let q = epq_logic::parser::parse_query(query_text).expect("query parses");
    epq_logic::query::check_against_signature(q.formula(), b.signature())
        .expect("query matches structure signature");
    count_ep_brute(&q, b)
}

/// `|B|^k` as a [`Natural`] — the maximum possible count over `k` liberal
/// variables, used by the sentence-disjunct logic of Theorem 3.1's proof.
pub fn universe_power(b: &Structure, k: usize) -> Natural {
    Natural::from(b.universe_size()).pow(k as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_logic::parser::parse_query;
    use epq_logic::query::infer_signature;
    use epq_structures::Signature;

    fn example_c() -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 3)] {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    fn pp_of(text: &str) -> PpFormula {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        PpFormula::from_query(&q, &sig).unwrap()
    }

    #[test]
    fn assignment_enumeration_covers_cube() {
        let mut seen = Vec::new();
        for_each_assignment(3, 2, &mut |v| seen.push(v.to_vec()));
        assert_eq!(seen.len(), 9);
        assert!(seen.contains(&vec![2, 2]));
        // Arity 0: one empty assignment.
        let mut count = 0;
        for_each_assignment(5, 0, &mut |_| count += 1);
        assert_eq!(count, 1);
        // Empty domain, positive arity: nothing.
        let mut count = 0;
        for_each_assignment(0, 2, &mut |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn range_enumeration_replays_the_full_sweep() {
        let mut full = Vec::new();
        for_each_assignment(3, 3, &mut |v| full.push(v.to_vec()));
        // Any partition of 0..27 replays the full order when concatenated.
        for cuts in [vec![0u128, 27], vec![0, 5, 27], vec![0, 1, 2, 26, 27]] {
            let mut replay = Vec::new();
            for w in cuts.windows(2) {
                for_each_assignment_in_range(3, 3, w[0], w[1], &mut |v| replay.push(v.to_vec()));
            }
            assert_eq!(replay, full, "cuts {cuts:?}");
        }
        // Degenerate ranges.
        let mut seen = 0usize;
        for_each_assignment_in_range(3, 2, 4, 4, &mut |_| seen += 1);
        assert_eq!(seen, 0);
        for_each_assignment_in_range(5, 0, 0, 1, &mut |_| seen += 1);
        assert_eq!(seen, 1);
        for_each_assignment_in_range(0, 2, 0, 1, &mut |_| seen += 1);
        assert_eq!(seen, 1);
    }

    #[test]
    fn assignment_space_sizes() {
        assert_eq!(assignment_space(3, 4), Some(81));
        assert_eq!(assignment_space(0, 2), Some(0));
        assert_eq!(assignment_space(7, 0), Some(1));
        assert_eq!(assignment_space(2, 200), None);
    }

    #[test]
    fn parallel_brute_matches_sequential() {
        let b = example_c();
        for text in [
            "E(x,y)",
            "(x,y,z) := E(x,y)",
            "(x) := exists u . E(x,u) & E(u,u)",
            "E(x,y) & E(y,z)",
            "E(x,x)",
            "exists a . E(a,a)",
        ] {
            let pp = pp_of(text);
            let expected = count_pp_brute(&pp, &b);
            for threads in [1usize, 2, 3, 8] {
                assert_eq!(
                    count_pp_brute_par(&pp, &b, threads),
                    expected,
                    "query {text} at {threads} threads"
                );
            }
        }
        // Empty universe.
        let sig = Signature::from_symbols([("E", 2)]);
        let empty = Structure::new(sig, 0);
        let pp = pp_of("E(x,y)");
        assert_eq!(count_pp_brute_par(&pp, &empty, 4).to_u64(), Some(0));
    }

    #[test]
    fn ep_and_pp_brute_agree_on_pp_queries() {
        let b = example_c();
        for text in [
            "E(x,y)",
            "(x,y,z) := E(x,y)",
            "(x) := exists u . E(x,u) & E(u,u)",
            "E(x,y) & E(y,z)",
            "E(x,x)",
        ] {
            let q = parse_query(text).unwrap();
            let pp = pp_of(text);
            assert_eq!(
                count_ep_brute(&q, &b),
                count_pp_brute(&pp, &b),
                "query {text}"
            );
        }
    }

    #[test]
    fn example_2_1_union_counts() {
        // φ(x,y,z) = E(x,y) ∨ S(y,z) vs the liberal-variable pitfall.
        let sig = Signature::from_symbols([("E", 2), ("S", 2)]);
        let mut b = Structure::new(sig, 2);
        b.add_tuple_named("E", &[0, 1]);
        b.add_tuple_named("S", &[1, 0]);
        // |φ(B)|: assignments (x,y,z) with E(x,y) (2 of them: z free) or
        // S(y,z) (2: x free); overlap when E(x,y) ∧ S(y,z) = (0,1,0): 1.
        assert_eq!(
            count_text("(x,y,z) := E(x,y) | S(y,z)", &b).to_u64(),
            Some(3)
        );
    }

    #[test]
    fn counting_disjuncts_matches_formula_union() {
        let text = "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))";
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        let ds = epq_logic::dnf::disjuncts(&q, &sig).unwrap();
        let b = example_c();
        assert_eq!(count_disjuncts_brute(&ds, &b), count_ep_brute(&q, &b));
    }

    #[test]
    fn sentence_counts_are_zero_or_one() {
        let b = example_c();
        assert_eq!(count_text("exists a . E(a,a)", &b).to_u64(), Some(1));
        let sig = Signature::from_symbols([("E", 2)]);
        let edgeless = Structure::new(sig, 3);
        assert_eq!(count_text("exists a . E(a,a)", &edgeless).to_u64(), Some(0));
    }

    #[test]
    fn universe_power_matches() {
        let b = example_c();
        assert_eq!(universe_power(&b, 3).to_u64(), Some(64));
        assert_eq!(universe_power(&b, 0).to_u64(), Some(1));
    }
}
