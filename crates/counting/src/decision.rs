//! Decision problems: answer existence and model checking.
//!
//! The paper situates counting as a generalization of *model checking*
//! ("given a sentence, decide if the number of answers is 1 or 0",
//! Section 1.1), and its case-2 regime is precisely where counting
//! collapses to decision-flavoured information. This module provides the
//! decision side:
//!
//! * [`has_answer`] — does `φ(B)` have at least one answer?
//! * [`model_check`] — truth of an ep-*query* under the empty assignment
//!   policy (true iff some answer exists; for sentences this is the
//!   classical `B ⊨ φ`);
//! * [`find_answer`] — produce a witness answer, if any.
//!
//! For pp-formulas, answer existence is exactly homomorphism existence
//! (Chandra–Merlin); for ep-formulas we go through the disjunctive form.

use epq_logic::{dnf, PpFormula, Query};
use epq_structures::{hom, Structure};
use std::ops::ControlFlow;

/// Whether a pp-formula has at least one answer on `b`
/// (`|φ(B)| > 0` ⟺ a homomorphism **A** → **B** exists, with isolated
/// liberal variables demanding a nonempty universe).
pub fn pp_has_answer(pp: &PpFormula, b: &Structure) -> bool {
    if pp.structure().universe_size() > 0 && b.universe_size() == 0 {
        return false;
    }
    if pp.liberal_count() == 0 && pp.structure().universe_size() == 0 {
        return true; // the empty formula: one empty answer
    }
    hom::homomorphism_exists(pp.structure(), b)
}

/// Whether an ep-query has at least one answer on `b`.
pub fn has_answer(query: &Query, b: &Structure) -> Result<bool, epq_logic::query::LogicError> {
    let ds = dnf::disjuncts(query, b.signature())?;
    Ok(ds.iter().any(|d| pp_has_answer(d, b)))
}

/// Model checking: `B ⊨ φ` for sentences; for queries with liberal
/// variables this is answer existence (the paper's framing of model
/// checking as the 1-or-0 counting instance).
pub fn model_check(query: &Query, b: &Structure) -> Result<bool, epq_logic::query::LogicError> {
    has_answer(query, b)
}

/// Finds some answer (an assignment of the liberal variables, in
/// liberal-name order) if one exists.
pub fn find_answer(
    query: &Query,
    b: &Structure,
) -> Result<Option<Vec<u32>>, epq_logic::query::LogicError> {
    let ds = dnf::disjuncts(query, b.signature())?;
    for d in ds {
        if let Some(answer) = pp_find_answer(&d, b) {
            return Ok(Some(answer));
        }
    }
    Ok(None)
}

/// Finds some answer of a pp-formula: the restriction of any
/// homomorphism to the liberal elements.
pub fn pp_find_answer(pp: &PpFormula, b: &Structure) -> Option<Vec<u32>> {
    if pp.structure().universe_size() > 0 && b.universe_size() == 0 {
        return None;
    }
    let search = hom::HomSearch::new(pp.structure(), b, &[]);
    let mut found = None;
    search.for_each(|h| {
        found = Some(h[..pp.liberal_count()].to_vec());
        ControlFlow::Break(())
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_logic::parser::parse_query;
    use epq_logic::query::infer_signature;
    use epq_structures::Signature;

    fn example_c() -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 3)] {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    fn pp_of(text: &str) -> PpFormula {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        PpFormula::from_query(&q, &sig).unwrap()
    }

    #[test]
    fn existence_matches_counting() {
        let b = example_c();
        for text in [
            "E(x,y)",
            "E(x,x)",
            "E(x,y) & E(y,x)",
            "(x) := exists u . E(u,x) & E(x,u)",
        ] {
            let pp = pp_of(text);
            let count = crate::brute::count_pp_brute(&pp, &b);
            assert_eq!(pp_has_answer(&pp, &b), !count.is_zero(), "{text}");
        }
    }

    #[test]
    fn ep_existence_through_disjuncts() {
        let b = example_c();
        let q = parse_query("(x) := E(x,x) | (exists u . E(x,u) & E(u,x))").unwrap();
        assert!(has_answer(&q, &b).unwrap());
        let sig = Signature::from_symbols([("E", 2)]);
        let edgeless = Structure::new(sig, 2);
        assert!(!has_answer(&q, &edgeless).unwrap());
    }

    #[test]
    fn model_checking_sentences() {
        let b = example_c();
        let yes = parse_query("exists a . E(a,a)").unwrap();
        assert!(model_check(&yes, &b).unwrap());
        // a = b = 3 satisfies E(a,b) ∧ E(b,a) via the self-loop — the
        // classic non-injectivity of homomorphism semantics.
        let loop_suffices = parse_query("exists a, b . E(a,b) & E(b,a)").unwrap();
        assert!(model_check(&loop_suffices, &b).unwrap());
        // On a loop-free path the same sentence is false.
        let mut loopless = Structure::new(Signature::from_symbols([("E", 2)]), 3);
        loopless.add_tuple_named("E", &[0, 1]);
        loopless.add_tuple_named("E", &[1, 2]);
        assert!(!model_check(&loop_suffices, &loopless).unwrap());
    }

    #[test]
    fn witnesses_are_real_answers() {
        let b = example_c();
        let q = parse_query("(x, y) := E(x,y) & E(y,y)").unwrap();
        let answer = find_answer(&q, &b).unwrap().unwrap();
        // (2,3) and (3,3) are the only answers: E(x,3) with E(3,3).
        assert!(
            answer == vec![2, 3] || answer == vec![3, 3],
            "got {answer:?}"
        );
        // A genuinely unsatisfiable shape on a loop-free structure.
        let mut loopless = Structure::new(Signature::from_symbols([("E", 2)]), 3);
        loopless.add_tuple_named("E", &[0, 1]);
        let none = parse_query("(x) := E(x,x)").unwrap();
        assert!(find_answer(&none, &loopless).unwrap().is_none());
    }

    #[test]
    fn empty_universe_decisions() {
        let sig = Signature::from_symbols([("E", 2)]);
        let empty = Structure::new(sig, 0);
        let q = parse_query("E(x,y)").unwrap();
        assert!(!has_answer(&q, &empty).unwrap());
    }

    #[test]
    fn clique_sentence_decision_matches_graph_search() {
        use epq_graph::generators;
        for (g, expect) in [
            (generators::complete_graph(4), true),
            (generators::cycle_graph(6), false),
        ] {
            let theta = crate::clique::clique_sentence_pp(3);
            let b = crate::clique::graph_to_structure(&g);
            assert_eq!(pp_has_answer(&theta, &b), expect);
            assert_eq!(epq_graph::cliques::has_k_clique(&g, 3), expect);
        }
    }
}
