//! Flat, packed-key dynamic-programming tables for the counting DPs.
//!
//! A [`FlatTable`] replaces the `BTreeMap<Vec<u32>, Natural>` node
//! tables of the tree-decomposition DP ([`crate::csp::TdCounter`]) with
//! two parallel columns:
//!
//! * a **key arena** — one row-major `Vec<u32>` holding every bag
//!   assignment back-to-back (`keys[i * arity .. (i + 1) * arity]` is
//!   key `i`), sorted lexicographically and unique;
//! * a **count column** — `Vec<Natural>`, aligned entry for entry.
//!
//! Compared to the tree map this eliminates the per-entry node
//! allocation, the per-key `Vec` allocation, and the pointer-chasing
//! traversal: a DP pass is a linear scan over one contiguous buffer.
//! The sorted order is the same canonical order the `BTreeMap` gave, so
//! the determinism guarantee of [`crate::csp::TdCounter::count_par`] —
//! shard boundaries are contiguous chunks of the sorted entries,
//! partial merges are order-insensitive exact sums — carries over
//! unchanged, and every count is bit-identical to the map-based DP.
//!
//! The three node passes of the nice-decomposition DP are methods here
//! ([`FlatTable::introduce`], [`FlatTable::forget`],
//! [`FlatTable::join`]), each taking a `threads` knob that shards the
//! source entries into contiguous sorted-order chunks across the
//! workspace pool (below [`PAR_NODE_THRESHOLD`] everything runs
//! inline).

use crate::pool;
use epq_bigint::Natural;

/// Nodes whose per-table work (source entries × introduce fan-out) is
/// below this run inline even under a `threads > 1` pass; a scoped
/// spawn costs more than rebuilding a small table.
pub const PAR_NODE_THRESHOLD: usize = 2048;

/// A sorted flat DP table: a packed key arena plus an aligned `Natural`
/// column. Keys are strictly increasing in lexicographic order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatTable {
    arity: usize,
    keys: Vec<u32>,
    counts: Vec<Natural>,
}

impl FlatTable {
    /// The empty table of the given key width.
    pub fn new(arity: usize) -> Self {
        FlatTable {
            arity,
            keys: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// The leaf table: one empty key with count 1.
    pub fn unit() -> Self {
        FlatTable {
            arity: 0,
            keys: Vec::new(),
            counts: vec![Natural::one()],
        }
    }

    /// Builds a table from arbitrary entries, sorting by key and
    /// summing the counts of duplicate keys.
    ///
    /// # Panics
    /// Panics if an entry's key width differs from `arity`.
    pub fn from_entries(arity: usize, entries: Vec<(Vec<u32>, Natural)>) -> Self {
        let mut builder = Builder::new(arity, entries.len());
        for (key, count) in entries {
            assert_eq!(key.len(), arity, "key width mismatch");
            builder.push(&key, count);
        }
        builder.finish(true)
    }

    /// Key width.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Key `i` as a slice into the arena.
    pub fn key(&self, i: usize) -> &[u32] {
        &self.keys[i * self.arity..(i + 1) * self.arity]
    }

    /// Count `i`.
    pub fn count(&self, i: usize) -> &Natural {
        &self.counts[i]
    }

    /// Looks up a key by binary search.
    pub fn get(&self, key: &[u32]) -> Option<&Natural> {
        debug_assert_eq!(key.len(), self.arity);
        self.position(key).map(|i| &self.counts[i])
    }

    fn position(&self, key: &[u32]) -> Option<usize> {
        if self.arity == 0 {
            return if self.counts.is_empty() {
                None
            } else {
                Some(0)
            };
        }
        let n = self.len();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.key(mid).cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Iterates `(key, count)` entries in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], &Natural)> {
        (0..self.len()).map(|i| (self.key(i), self.count(i)))
    }

    /// Consumes an arity-0 table into its single count (the DP root
    /// extraction), or zero if empty.
    pub fn root_count(mut self) -> Natural {
        debug_assert_eq!(self.arity, 0);
        self.counts.pop().unwrap_or_else(Natural::zero)
    }

    /// The **introduce** pass: every key grows a new component at
    /// position `slot`, ranging over `candidates`; extended keys
    /// failing `keep` are dropped, surviving ones inherit the source
    /// count. `(key, candidate) ↦ extended key` is injective, so no
    /// counts merge. Sharded across up to `threads` workers by
    /// contiguous chunks of the sorted source entries; chunk partials
    /// are disjoint and merge by a sorted union, so the result is
    /// identical at every thread count.
    pub fn introduce<F>(
        &self,
        slot: usize,
        candidates: &[u32],
        keep: F,
        threads: usize,
    ) -> FlatTable
    where
        F: Fn(&[u32]) -> bool + Sync,
    {
        assert!(slot <= self.arity, "introduce slot out of range");
        debug_assert!(
            {
                let mut sorted = candidates.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.len() == candidates.len()
            },
            "introduce candidates must be distinct"
        );
        let out_arity = self.arity + 1;
        let build = |range: std::ops::Range<usize>| -> FlatTable {
            // Reserve for the pre-filter cross product only up to a cap:
            // `keep` may prune almost everything, and a huge domain ×
            // large child table must not commit memory for entries that
            // will never survive. Past the cap the push path grows
            // amortized, like any Vec.
            const RESERVE_CAP: usize = 1 << 20;
            let hint = range
                .len()
                .saturating_mul(candidates.len())
                .min(RESERVE_CAP);
            let mut builder = Builder::new(out_arity, hint);
            let mut scratch = vec![0u32; out_arity];
            for i in range {
                let key = self.key(i);
                scratch[..slot].copy_from_slice(&key[..slot]);
                scratch[slot + 1..].copy_from_slice(&key[slot..]);
                for &x in candidates {
                    scratch[slot] = x;
                    if keep(&scratch) {
                        builder.push(&scratch, self.counts[i].clone());
                    }
                }
            }
            // Appending the new component *last*, with ascending
            // candidates, keeps the generated order sorted; any earlier
            // slot needs the permutation sort.
            builder.set_sorted(slot == self.arity && strictly_ascending(candidates));
            builder.finish(false)
        };
        self.sharded(candidates.len().max(1), threads, &build, merge_disjoint)
    }

    /// The **forget** pass: position `slot` is summed out — keys that
    /// collapse to the same residual key merge by exact `Natural`
    /// addition. Sharded like [`FlatTable::introduce`]; distinct chunks
    /// may produce the same residual key, so partials merge by a
    /// summing union (order-insensitive — addition is exact).
    pub fn forget(&self, slot: usize, threads: usize) -> FlatTable {
        assert!(slot < self.arity, "forget slot out of range");
        let out_arity = self.arity - 1;
        let build = |range: std::ops::Range<usize>| -> FlatTable {
            let mut builder = Builder::new(out_arity, range.len());
            let mut scratch = vec![0u32; out_arity];
            for i in range {
                let key = self.key(i);
                scratch[..slot].copy_from_slice(&key[..slot]);
                scratch[slot..].copy_from_slice(&key[slot + 1..]);
                builder.push(&scratch, self.counts[i].clone());
            }
            // Dropping the *last* component keeps the generated order
            // sorted (with duplicates adjacent); any earlier slot needs
            // the permutation sort before merging.
            builder.set_sorted(slot == out_arity);
            builder.finish(true)
        };
        self.sharded(1, threads, &build, merge_summing)
    }

    /// The **join** pass: intersects two tables of the same arity,
    /// multiplying the counts of matching keys. Both sides are sorted,
    /// so this is a merge join — the smaller side streams, the larger
    /// side advances a cursor. Sharding splits the smaller side into
    /// contiguous sorted chunks; each chunk's output keys are a subset
    /// of the chunk's keys, so partials are disjoint, ordered, and
    /// concatenate via the same sorted union.
    pub fn join(&self, other: &FlatTable, threads: usize) -> FlatTable {
        assert_eq!(self.arity, other.arity, "join arity mismatch");
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let build = |range: std::ops::Range<usize>| -> FlatTable {
            let mut builder = Builder::new(small.arity, range.len());
            // The cursor into `large` only moves forward: both key
            // sequences are strictly increasing.
            let mut j = match range.start {
                0 => 0,
                _ => large.lower_bound(small.key(range.start)),
            };
            for i in range {
                let key = small.key(i);
                while j < large.len() && large.key(j) < key {
                    j += 1;
                }
                if j >= large.len() {
                    break;
                }
                if large.key(j) == key {
                    builder.push(key, &small.counts[i] * &large.counts[j]);
                }
            }
            builder.set_sorted(true);
            builder.finish(false)
        };
        small.sharded(1, threads, &build, merge_disjoint)
    }

    /// First index whose key is `>= key`.
    fn lower_bound(&self, key: &[u32]) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Runs `build` over the whole entry range inline, or — when
    /// `threads > 1` and `len × weight` crosses [`PAR_NODE_THRESHOLD`]
    /// — over contiguous sorted-order chunks on the pool, folding the
    /// partial tables with `merge` in chunk order.
    fn sharded<B>(
        &self,
        weight: usize,
        threads: usize,
        build: &B,
        merge: fn(FlatTable, FlatTable) -> FlatTable,
    ) -> FlatTable
    where
        B: Fn(std::ops::Range<usize>) -> FlatTable + Sync,
    {
        if threads <= 1 || self.len().saturating_mul(weight) < PAR_NODE_THRESHOLD {
            return build(0..self.len());
        }
        let jobs: Vec<_> = pool::split_ranges(self.len() as u128, threads.saturating_mul(2))
            .into_iter()
            .map(|(start, end)| move || build(start as usize..end as usize))
            .collect();
        let mut partials = pool::run_jobs(threads, jobs).into_iter();
        // A nonempty source (len ≥ threshold here) always yields at
        // least one shard.
        let first = partials.next().expect("sharded pass over empty table");
        partials.fold(first, merge)
    }
}

/// Accumulates `(key, count)` pushes into a flat table, then sorts (by
/// key permutation) unless the producer recorded the pushes as already
/// sorted, and optionally merges equal adjacent keys by summing.
struct Builder {
    arity: usize,
    keys: Vec<u32>,
    counts: Vec<Natural>,
    sorted: bool,
}

impl Builder {
    fn new(arity: usize, capacity_hint: usize) -> Self {
        Builder {
            arity,
            keys: Vec::with_capacity(capacity_hint.saturating_mul(arity)),
            counts: Vec::with_capacity(capacity_hint),
            sorted: false,
        }
    }

    fn push(&mut self, key: &[u32], count: Natural) {
        debug_assert_eq!(key.len(), self.arity);
        self.keys.extend_from_slice(key);
        self.counts.push(count);
    }

    /// Marks whether pushes arrived in (non-strictly) sorted key order,
    /// skipping the permutation sort in [`Builder::finish`].
    fn set_sorted(&mut self, sorted: bool) {
        self.sorted = sorted;
    }

    /// Finalizes into a [`FlatTable`]. With `merge_equal`, runs of
    /// equal keys collapse into one entry by exact summation; without
    /// it the keys are asserted unique (debug builds).
    fn finish(self, merge_equal: bool) -> FlatTable {
        let Builder {
            arity,
            keys,
            counts,
            sorted,
        } = self;
        let n = counts.len();
        if arity == 0 {
            // All keys are the empty tuple.
            let mut total = Natural::zero();
            let mut counts = counts;
            if !merge_equal {
                debug_assert!(n <= 1, "duplicate keys in a non-merging pass");
            }
            match n {
                0 => FlatTable::new(0),
                1 => FlatTable {
                    arity: 0,
                    keys,
                    counts,
                },
                _ => {
                    for c in counts.drain(..) {
                        total += &c;
                    }
                    FlatTable {
                        arity: 0,
                        keys,
                        counts: vec![total],
                    }
                }
            }
        } else if sorted && !merge_equal {
            debug_assert!(
                keys.chunks_exact(arity)
                    .zip(keys.chunks_exact(arity).skip(1))
                    .all(|(a, b)| a < b),
                "pushes marked sorted must be strictly increasing"
            );
            FlatTable {
                arity,
                keys,
                counts,
            }
        } else {
            let key = |i: usize| &keys[i * arity..(i + 1) * arity];
            let order: Vec<u32> = if sorted {
                (0..n as u32).collect()
            } else {
                let mut perm: Vec<u32> = (0..n as u32).collect();
                perm.sort_unstable_by(|&a, &b| key(a as usize).cmp(key(b as usize)));
                perm
            };
            let mut out_keys = Vec::with_capacity(keys.len());
            let mut out_counts: Vec<Natural> = Vec::with_capacity(n);
            let mut moved: Vec<Option<Natural>> = counts.into_iter().map(Some).collect();
            for &i in &order {
                let k = key(i as usize);
                let count = moved[i as usize].take().expect("count moved twice");
                let prev_start = out_keys.len().wrapping_sub(arity);
                if merge_equal && !out_counts.is_empty() && out_keys[prev_start..] == *k {
                    *out_counts.last_mut().expect("nonempty") += &count;
                } else {
                    debug_assert!(
                        out_counts.is_empty() || out_keys[prev_start..] != *k,
                        "duplicate keys in a non-merging pass"
                    );
                    out_keys.extend_from_slice(k);
                    out_counts.push(count);
                }
            }
            FlatTable {
                arity,
                keys: out_keys,
                counts: out_counts,
            }
        }
    }
}

/// Sorted union of two tables with disjoint key sets (introduce/join
/// partials). Equal keys would indicate a sharding bug; debug builds
/// assert against them.
fn merge_disjoint(a: FlatTable, b: FlatTable) -> FlatTable {
    merge(a, b, false)
}

/// Sorted union of two tables, summing the counts of keys present in
/// both (forget partials).
fn merge_summing(a: FlatTable, b: FlatTable) -> FlatTable {
    merge(a, b, true)
}

fn merge(a: FlatTable, b: FlatTable, sum_equal: bool) -> FlatTable {
    debug_assert_eq!(a.arity, b.arity);
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let arity = a.arity;
    if arity == 0 {
        debug_assert!(sum_equal, "nullary disjoint merge with two nonempty sides");
        let mut total = Natural::zero();
        for c in a.counts.iter().chain(b.counts.iter()) {
            total += c;
        }
        return FlatTable {
            arity: 0,
            keys: Vec::new(),
            counts: vec![total],
        };
    }
    // Fast path: the partials come from contiguous sorted chunks, so
    // they usually concatenate without interleaving.
    if a.key(a.len() - 1) < b.key(0) {
        let mut keys = a.keys;
        keys.extend_from_slice(&b.keys);
        let mut counts = a.counts;
        counts.extend(b.counts);
        return FlatTable {
            arity,
            keys,
            counts,
        };
    }
    let (a_len, b_len) = (a.len(), b.len());
    let FlatTable {
        keys: a_keys,
        counts: a_counts,
        ..
    } = a;
    let FlatTable {
        keys: b_keys,
        counts: b_counts,
        ..
    } = b;
    let key_a = |i: usize| &a_keys[i * arity..(i + 1) * arity];
    let key_b = |j: usize| &b_keys[j * arity..(j + 1) * arity];
    let mut out = Builder::new(arity, a_len + b_len);
    out.set_sorted(true);
    let mut a_counts: Vec<Option<Natural>> = a_counts.into_iter().map(Some).collect();
    let mut b_counts: Vec<Option<Natural>> = b_counts.into_iter().map(Some).collect();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_len && j < b_len {
        let (ka, kb) = (key_a(i), key_b(j));
        match ka.cmp(kb) {
            std::cmp::Ordering::Less => {
                out.push(ka, a_counts[i].take().expect("moved"));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(kb, b_counts[j].take().expect("moved"));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                debug_assert!(sum_equal, "equal keys across disjoint partials");
                let mut c = a_counts[i].take().expect("moved");
                c += &b_counts[j].take().expect("moved");
                out.push(ka, c);
                i += 1;
                j += 1;
            }
        }
    }
    while i < a_len {
        out.push(key_a(i), a_counts[i].take().expect("moved"));
        i += 1;
    }
    while j < b_len {
        out.push(key_b(j), b_counts[j].take().expect("moved"));
        j += 1;
    }
    out.finish(false)
}

/// Whether `values` is strictly ascending (the introduce fast path's
/// sortedness precondition).
fn strictly_ascending(values: &[u32]) -> bool {
    values.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(x: u64) -> Natural {
        Natural::from(x)
    }

    fn table(arity: usize, entries: &[(&[u32], u64)]) -> FlatTable {
        FlatTable::from_entries(
            arity,
            entries.iter().map(|(k, c)| (k.to_vec(), nat(*c))).collect(),
        )
    }

    fn entries(t: &FlatTable) -> Vec<(Vec<u32>, u64)> {
        t.iter()
            .map(|(k, c)| (k.to_vec(), c.to_u64().unwrap()))
            .collect()
    }

    #[test]
    fn from_entries_sorts_and_sums() {
        let t = table(2, &[(&[1, 2], 3), (&[0, 9], 1), (&[1, 2], 4)]);
        assert_eq!(entries(&t), vec![(vec![0, 9], 1), (vec![1, 2], 7)]);
        assert_eq!(t.get(&[1, 2]).unwrap().to_u64(), Some(7));
        assert!(t.get(&[2, 2]).is_none());
    }

    #[test]
    fn unit_and_root() {
        assert_eq!(FlatTable::unit().root_count().to_u64(), Some(1));
        assert_eq!(FlatTable::new(0).root_count().to_u64(), Some(0));
    }

    #[test]
    fn introduce_at_each_slot() {
        let t = table(2, &[(&[0, 5], 2), (&[3, 1], 1)]);
        for slot in 0..=2usize {
            let got = t.introduce(slot, &[7, 8], |_| true, 1);
            let mut expected: Vec<(Vec<u32>, u64)> = Vec::new();
            for (k, c) in entries(&t) {
                for x in [7u32, 8] {
                    let mut key = k.clone();
                    key.insert(slot, x);
                    expected.push((key, c));
                }
            }
            expected.sort();
            assert_eq!(entries(&got), expected, "slot {slot}");
        }
    }

    #[test]
    fn introduce_filters() {
        let t = table(1, &[(&[0], 1), (&[1], 1)]);
        let got = t.introduce(1, &[0, 1, 2], |key| key[0] != key[1], 1);
        assert_eq!(
            entries(&got),
            vec![
                (vec![0, 1], 1),
                (vec![0, 2], 1),
                (vec![1, 0], 1),
                (vec![1, 2], 1)
            ]
        );
    }

    #[test]
    fn forget_sums_collapsing_keys() {
        let t = table(2, &[(&[0, 5], 2), (&[1, 5], 3), (&[1, 6], 4)]);
        assert_eq!(entries(&t.forget(0, 1)), vec![(vec![5], 5), (vec![6], 4)]);
        assert_eq!(entries(&t.forget(1, 1)), vec![(vec![0], 2), (vec![1], 7)]);
    }

    #[test]
    fn forget_to_nullary() {
        let t = table(1, &[(&[0], 2), (&[4], 5)]);
        assert_eq!(t.forget(0, 1).root_count().to_u64(), Some(7));
    }

    #[test]
    fn join_multiplies_matches() {
        let a = table(1, &[(&[0], 2), (&[1], 3), (&[5], 1)]);
        let b = table(1, &[(&[1], 10), (&[5], 7), (&[9], 2)]);
        let j = a.join(&b, 1);
        assert_eq!(entries(&j), vec![(vec![1], 30), (vec![5], 7)]);
        assert_eq!(j, b.join(&a, 1));
    }

    #[test]
    fn passes_are_thread_count_invariant() {
        // Big enough to cross PAR_NODE_THRESHOLD.
        let t = FlatTable::from_entries(
            2,
            (0..4000u32)
                .map(|i| (vec![i % 71, i / 7], nat(u64::from(i % 13) + 1)))
                .collect(),
        );
        for threads in [2usize, 3, 8] {
            assert_eq!(
                t.introduce(1, &[0, 1, 2], |k| (k[0] + k[1] + k[2]) % 3 != 0, threads),
                t.introduce(1, &[0, 1, 2], |k| (k[0] + k[1] + k[2]) % 3 != 0, 1),
                "introduce at {threads}"
            );
            assert_eq!(t.forget(0, threads), t.forget(0, 1), "forget at {threads}");
            let other = FlatTable::from_entries(
                2,
                (0..3000u32)
                    .map(|i| (vec![i % 53, i / 5], nat(2)))
                    .collect(),
            );
            assert_eq!(
                t.join(&other, threads),
                t.join(&other, 1),
                "join at {threads}"
            );
        }
    }
}
