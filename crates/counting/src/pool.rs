//! Re-export of the [`epq_pool`] scoped work pool.
//!
//! The pool started life in this crate (PR 2) and moved to its own
//! `epq-pool` crate so that `epq-relalg` (which `epq-counting` depends
//! on — the dependency cannot point the other way) and
//! `epq_core::prepared` can shard work through the same
//! implementation. Existing `epq_counting::pool::…` paths keep
//! working via this re-export.

pub use epq_pool::{available_threads, run_jobs, split_ranges};
