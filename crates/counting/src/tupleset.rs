//! Packed tuple sets for constraint membership tests.
//!
//! [`TupleSet`] replaces the `HashSet<Vec<u32>>` that used to back
//! [`crate::csp::CspConstraint::allowed`] — the set probed by the DP's
//! introduce filter for every (entry × candidate) pair, the hottest
//! membership test in the counting stack. The packed layout:
//!
//! * **arity ≤ 2** — each tuple packs into one `u64` (32 bits per
//!   column), stored sorted; `contains` is a binary search over one
//!   contiguous machine-word array;
//! * **arity ≤ 4** — the same with `u128` words;
//! * **wider** — a sorted row-major `u32` arena (like
//!   [`crate::table::FlatTable`]'s key column), binary-searched by
//!   slice comparison.
//!
//! Compared to the hash set this removes the per-tuple heap `Vec`, the
//! SipHash pass over it on every probe, and the bucket pointer chase;
//! a probe is a handful of comparisons over adjacent cache lines.
//! Membership is the only operation the DP needs, so no iteration
//! order is ever observable — determinism is unaffected.

use std::collections::HashSet;

/// An immutable set of fixed-arity `u32` tuples, packed for fast
/// membership tests. See the [module docs](self).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TupleSet {
    arity: usize,
    repr: Repr,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Repr {
    /// Arity 1–2: one sorted `u64` per tuple.
    W64(Vec<u64>),
    /// Arity 3–4: one sorted `u128` per tuple.
    W128(Vec<u128>),
    /// Arity 0 or ≥ 5: sorted row-major arena (`len × arity` values).
    Wide { len: usize, rows: Vec<u32> },
}

fn pack64(tuple: &[u32]) -> u64 {
    tuple
        .iter()
        .fold(0u64, |acc, &v| (acc << 32) | u64::from(v))
}

fn pack128(tuple: &[u32]) -> u128 {
    tuple
        .iter()
        .fold(0u128, |acc, &v| (acc << 32) | u128::from(v))
}

impl TupleSet {
    /// Builds a set from tuples of width `arity`, sorting and
    /// deduplicating.
    ///
    /// # Panics
    /// Panics if a tuple's width differs from `arity`.
    pub fn from_tuples<I>(arity: usize, tuples: I) -> Self
    where
        I: IntoIterator<Item = Vec<u32>>,
    {
        let repr = match arity {
            1 | 2 => {
                let mut words: Vec<u64> = tuples
                    .into_iter()
                    .map(|t| {
                        assert_eq!(t.len(), arity, "tuple width mismatch");
                        pack64(&t)
                    })
                    .collect();
                words.sort_unstable();
                words.dedup();
                Repr::W64(words)
            }
            3 | 4 => {
                let mut words: Vec<u128> = tuples
                    .into_iter()
                    .map(|t| {
                        assert_eq!(t.len(), arity, "tuple width mismatch");
                        pack128(&t)
                    })
                    .collect();
                words.sort_unstable();
                words.dedup();
                Repr::W128(words)
            }
            _ => {
                let mut rows: Vec<Vec<u32>> = tuples
                    .into_iter()
                    .inspect(|t| assert_eq!(t.len(), arity, "tuple width mismatch"))
                    .collect();
                rows.sort_unstable();
                rows.dedup();
                let len = rows.len();
                // Arity 0: "the empty tuple is present" collapses to
                // len ∈ {0, 1} with no arena data.
                let rows: Vec<u32> = rows.into_iter().flatten().collect();
                Repr::Wide { len, rows }
            }
        };
        TupleSet { arity, repr }
    }

    /// The tuple width.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::W64(words) => words.len(),
            Repr::W128(words) => words.len(),
            Repr::Wide { len, .. } => *len,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `tuple` is in the set.
    ///
    /// # Panics
    /// Panics (in debug builds) if the width differs from the set's
    /// arity.
    pub fn contains(&self, tuple: &[u32]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity, "tuple width mismatch");
        match &self.repr {
            Repr::W64(words) => words.binary_search(&pack64(tuple)).is_ok(),
            Repr::W128(words) => words.binary_search(&pack128(tuple)).is_ok(),
            Repr::Wide { len, rows } => {
                if self.arity == 0 {
                    return *len == 1;
                }
                let arity = self.arity;
                let (mut lo, mut hi) = (0usize, *len);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    match rows[mid * arity..(mid + 1) * arity].cmp(tuple) {
                        std::cmp::Ordering::Less => lo = mid + 1,
                        std::cmp::Ordering::Greater => hi = mid,
                        std::cmp::Ordering::Equal => return true,
                    }
                }
                false
            }
        }
    }

    /// Iterates the tuples in sorted order (unpacking into fresh
    /// `Vec`s — for tests and diagnostics, not hot paths).
    pub fn iter(&self) -> impl Iterator<Item = Vec<u32>> + '_ {
        let arity = self.arity;
        (0..self.len()).map(move |i| match &self.repr {
            Repr::W64(words) => (0..arity)
                .rev()
                .map(|shift| (words[i] >> (32 * shift)) as u32)
                .collect(),
            Repr::W128(words) => (0..arity)
                .rev()
                .map(|shift| (words[i] >> (32 * shift)) as u32)
                .collect(),
            Repr::Wide { rows, .. } => rows[i * arity..(i + 1) * arity].to_vec(),
        })
    }
}

impl FromIterator<Vec<u32>> for TupleSet {
    /// Collects tuples, inferring the arity from the first one (an
    /// empty iterator yields an empty arity-0 set — construct with
    /// [`TupleSet::from_tuples`] when the arity matters).
    fn from_iter<I: IntoIterator<Item = Vec<u32>>>(iter: I) -> Self {
        let mut iter = iter.into_iter().peekable();
        let arity = iter.peek().map_or(0, Vec::len);
        TupleSet::from_tuples(arity, iter)
    }
}

impl From<HashSet<Vec<u32>>> for TupleSet {
    fn from(set: HashSet<Vec<u32>>) -> Self {
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tuples: &[&[u32]]) -> TupleSet {
        TupleSet::from_tuples(
            tuples.first().map_or(0, |t| t.len()),
            tuples.iter().map(|t| t.to_vec()),
        )
    }

    #[test]
    fn membership_across_arities() {
        for arity in 1usize..=6 {
            let tuples: Vec<Vec<u32>> = (0..40u32)
                .map(|i| (0..arity as u32).map(|c| (i * 7 + c * 3) % 11).collect())
                .collect();
            let reference: HashSet<Vec<u32>> = tuples.iter().cloned().collect();
            let packed = TupleSet::from_tuples(arity, tuples);
            assert_eq!(packed.len(), reference.len(), "arity {arity}");
            // Probe the full cross-space of small values.
            let mut probe = vec![0u32; arity];
            loop {
                assert_eq!(
                    packed.contains(&probe),
                    reference.contains(&probe),
                    "arity {arity}, probe {probe:?}"
                );
                let mut i = 0;
                while i < arity {
                    probe[i] += 1;
                    if probe[i] < 12 {
                        break;
                    }
                    probe[i] = 0;
                    i += 1;
                }
                if i == arity {
                    break;
                }
            }
        }
    }

    #[test]
    fn full_32_bit_columns_pack_without_collision() {
        let big = u32::MAX;
        let s = set(&[&[big, 0], &[0, big], &[big, big]]);
        assert!(s.contains(&[big, 0]));
        assert!(s.contains(&[0, big]));
        assert!(s.contains(&[big, big]));
        assert!(!s.contains(&[big - 1, big]));
        let s4 = set(&[&[big, 0, big, 1]]);
        assert!(s4.contains(&[big, 0, big, 1]));
        assert!(!s4.contains(&[big, 0, big, 2]));
    }

    #[test]
    fn duplicates_collapse_and_iter_is_sorted() {
        let s = set(&[&[3, 1], &[0, 2], &[3, 1]]);
        assert_eq!(s.len(), 2);
        let tuples: Vec<Vec<u32>> = s.iter().collect();
        assert_eq!(tuples, vec![vec![0, 2], vec![3, 1]]);
        // Wide arity round-trips through iter too.
        let w = set(&[&[5, 4, 3, 2, 1], &[1, 2, 3, 4, 5]]);
        let rows: Vec<Vec<u32>> = w.iter().collect();
        assert_eq!(rows, vec![vec![1, 2, 3, 4, 5], vec![5, 4, 3, 2, 1]]);
    }

    #[test]
    fn nullary_sets() {
        let empty = TupleSet::from_tuples(0, Vec::<Vec<u32>>::new());
        assert!(empty.is_empty());
        assert!(!empty.contains(&[]));
        let unit = TupleSet::from_tuples(0, vec![Vec::new()]);
        assert_eq!(unit.len(), 1);
        assert!(unit.contains(&[]));
    }

    #[test]
    fn from_hash_set() {
        let mut h: HashSet<Vec<u32>> = HashSet::new();
        h.insert(vec![1, 2]);
        h.insert(vec![2, 1]);
        let s = TupleSet::from(h);
        assert_eq!(s.arity(), 2);
        assert!(s.contains(&[1, 2]) && s.contains(&[2, 1]));
        assert!(!s.contains(&[1, 1]));
    }
}
