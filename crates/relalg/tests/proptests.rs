//! Property tests for the relational-algebra engine: the join planner
//! (sequential *and* pool-parallel) must agree with assignment-level
//! brute force on random pp-formulas, random UCQs, and random
//! structures.
//!
//! The brute-force reference is local to this suite (assignment
//! enumeration through `PpFormula::satisfied_by`) so the test needs no
//! dependency on `epq-counting` — which depends on this crate and
//! would otherwise close a dev-dependency cycle.

use epq_logic::query::infer_signature;
use epq_logic::{dnf, Formula, PpFormula, Query, Var};
use epq_relalg::{
    answers_pp, answers_pp_par, count_pp, count_pp_par, count_ucq, count_ucq_par, Relation,
};
use epq_structures::{Signature, Structure};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Enumerates all liberal assignments, counting those that extend to a
/// homomorphism — the ground truth `|φ(B)|`.
fn brute_count_pp(pp: &PpFormula, b: &Structure) -> u64 {
    brute_count(pp.liberal_count(), b, |values| pp.satisfied_by(b, values))
}

fn brute_count(slots: usize, b: &Structure, satisfied: impl Fn(&[u32]) -> bool) -> u64 {
    let n = b.universe_size() as u32;
    if slots == 0 {
        return u64::from(satisfied(&[]));
    }
    if n == 0 {
        return 0;
    }
    let mut values = vec![0u32; slots];
    let mut count = 0u64;
    loop {
        if satisfied(&values) {
            count += 1;
        }
        let mut i = 0;
        loop {
            if i == slots {
                return count;
            }
            values[i] += 1;
            if values[i] < n {
                break;
            }
            values[i] = 0;
            i += 1;
        }
    }
}

/// Builds a random conjunction of `E`-atoms over `vars` variables, with
/// the variables selected by `qmask` existentially quantified.
fn random_cq_formula(vars: usize, atoms: &[(u8, u8)], qmask: u8) -> Query {
    let names: Vec<String> = (0..vars).map(|i| format!("v{i}")).collect();
    let parts: Vec<Formula> = atoms
        .iter()
        .map(|&(a, b)| {
            Formula::atom(
                "E",
                &[
                    names[a as usize % vars].as_str(),
                    names[b as usize % vars].as_str(),
                ],
            )
        })
        .collect();
    let matrix = Formula::conjunction(parts);
    let quantified: Vec<&str> = (0..vars)
        .filter(|i| qmask & (1 << i) != 0)
        .map(|i| names[i].as_str())
        .collect();
    let liberal: Vec<Var> = (0..vars)
        .filter(|i| qmask & (1 << i) == 0)
        .map(|i| Var::new(&names[i]))
        .collect();
    let formula = if quantified.is_empty() {
        matrix
    } else {
        Formula::exists(&quantified, matrix)
    };
    Query::new(formula, liberal).expect("valid random query")
}

fn digraph(seed: u64, n: usize, p: f64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let sig = Signature::from_symbols([("E", 2)]);
    let mut s = Structure::new(sig, n);
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if rng.gen_bool(p) {
                s.add_tuple_named("E", &[u, v]);
            }
        }
    }
    s
}

/// A straightforward reference model of a relation: the schema plus a
/// `BTreeSet` of rows. Every operation is the obvious nested-loop /
/// set-theoretic definition, so any agreement failure points at the
/// flat arena layout of [`Relation`], not at a second clever
/// implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Model {
    schema: Vec<u32>,
    rows: BTreeSet<Vec<u32>>,
}

impl Model {
    fn of(r: &Relation) -> Model {
        Model {
            schema: r.schema().to_vec(),
            rows: r.rows().map(|row| row.to_vec()).collect(),
        }
    }

    /// Natural join, mirroring the engine's schema rule: the smaller
    /// side's columns first (ties keep `self`), then the probe extras.
    fn join(&self, other: &Model) -> Model {
        let (build, probe) = if self.rows.len() <= other.rows.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut schema = build.schema.clone();
        let probe_extra: Vec<usize> = (0..probe.schema.len())
            .filter(|&i| !build.schema.contains(&probe.schema[i]))
            .collect();
        schema.extend(probe_extra.iter().map(|&i| probe.schema[i]));
        let mut rows = BTreeSet::new();
        for b_row in &build.rows {
            'probe: for p_row in &probe.rows {
                for (bi, &c) in build.schema.iter().enumerate() {
                    if let Some(pi) = probe.schema.iter().position(|&x| x == c) {
                        if b_row[bi] != p_row[pi] {
                            continue 'probe;
                        }
                    }
                }
                let mut out = b_row.clone();
                out.extend(probe_extra.iter().map(|&i| p_row[i]));
                rows.insert(out);
            }
        }
        Model { schema, rows }
    }

    fn project(&self, columns: &[u32]) -> Model {
        let positions: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.iter().position(|x| x == c).unwrap())
            .collect();
        Model {
            schema: columns.to_vec(),
            rows: self
                .rows
                .iter()
                .map(|row| positions.iter().map(|&i| row[i]).collect())
                .collect(),
        }
    }

    fn union(&self, other: &Model) -> Model {
        let reordered = other.project(&self.schema);
        Model {
            schema: self.schema.clone(),
            rows: self.rows.union(&reordered.rows).cloned().collect(),
        }
    }

    fn select_eq(&self, a: u32, b: u32) -> Model {
        let pa = self.schema.iter().position(|&x| x == a).unwrap();
        let pb = self.schema.iter().position(|&x| x == b).unwrap();
        Model {
            schema: self.schema.clone(),
            rows: self
                .rows
                .iter()
                .filter(|row| row[pa] == row[pb])
                .cloned()
                .collect(),
        }
    }

    fn extend_with_domain(&self, column: u32, domain: usize) -> Model {
        let mut schema = self.schema.clone();
        schema.push(column);
        let mut rows = BTreeSet::new();
        for row in &self.rows {
            for x in 0..domain as u32 {
                let mut out = row.clone();
                out.push(x);
                rows.insert(out);
            }
        }
        Model { schema, rows }
    }
}

/// The flat relation and the model must agree exactly: same schema,
/// same rows, and — because `BTreeSet` iterates in lexicographic order,
/// the canonical order of the arena — the same row sequence.
fn assert_agrees(r: &Relation, m: &Model) -> Result<(), TestCaseError> {
    prop_assert_eq!(r.schema(), &m.schema[..]);
    prop_assert_eq!(r.len(), m.rows.len());
    for (row, expected) in r.rows().zip(m.rows.iter()) {
        prop_assert_eq!(row, &expected[..]);
    }
    Ok(())
}

/// A random relation over `arity` columns drawn from a disjoint id
/// range, with values in `0..vals`, plus its model.
fn random_relation(seed: u64, columns: &[u32], rows: usize, vals: u32) -> (Relation, Model) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<u32>> = (0..rows)
        .map(|_| columns.iter().map(|_| rng.gen_range(0..vals)).collect())
        .collect();
    let r = Relation::new(columns.to_vec(), rows);
    let m = Model::of(&r);
    (r, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_join_agrees_with_model(
        seed1 in 0u64..10_000,
        seed2 in 0u64..10_000,
        arity1 in 1usize..=3,
        arity2 in 1usize..=3,
        overlap in 0usize..=2,
        n1 in 0usize..40,
        n2 in 0usize..40,
        vals in 1u32..=4,
    ) {
        // Schemas share `overlap` columns (ids 0..overlap), the rest are
        // disjoint — covering cross products, partial joins, and
        // full-schema intersections.
        let overlap = overlap.min(arity1).min(arity2);
        let cols1: Vec<u32> = (0..overlap as u32)
            .chain((10..).take(arity1 - overlap))
            .collect();
        let cols2: Vec<u32> = (0..overlap as u32)
            .chain((20..).take(arity2 - overlap))
            .collect();
        let (r1, m1) = random_relation(seed1, &cols1, n1, vals);
        let (r2, m2) = random_relation(seed2, &cols2, n2, vals);
        let joined = r1.join(&r2);
        assert_agrees(&joined, &m1.join(&m2))?;
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(&r1.join_par(&r2, threads), &joined, "threads = {}", threads);
        }
    }

    #[test]
    fn flat_ops_round_trip_against_model(
        seed in 0u64..10_000,
        arity in 1usize..=4,
        n in 0usize..60,
        vals in 1u32..=4,
        pick in 0usize..100,
        domain in 0usize..=3,
    ) {
        let cols: Vec<u32> = (0..arity as u32).collect();
        let (r, m) = random_relation(seed, &cols, n, vals);

        // Projection onto a nonempty column subset (reversed to also
        // exercise reordering), chosen by the `pick` bitmask.
        let subset: Vec<u32> = cols
            .iter()
            .rev()
            .filter(|&&c| pick & (1 << c) != 0)
            .copied()
            .collect();
        if !subset.is_empty() {
            assert_agrees(&r.project(&subset), &m.project(&subset))?;
            // Projecting twice is the same as projecting once.
            prop_assert_eq!(
                &r.project(&subset).project(&subset),
                &r.project(&subset)
            );
        }

        // Selection on a random column pair.
        let a = cols[pick % arity];
        let b = cols[(pick / 7) % arity];
        assert_agrees(&r.select_eq(a, b), &m.select_eq(a, b))?;

        // Extension by a fresh column.
        assert_agrees(
            &r.extend_with_domain(99, domain),
            &m.extend_with_domain(99, domain),
        )?;

        // Union with a reshuffled relation over the same columns, via
        // the model and via algebra: A ∪ A = A, A ∪ B = B ∪ A.
        let mut shuffled = cols.clone();
        shuffled.reverse();
        let (s, sm) = random_relation(seed ^ 0x5eed, &shuffled, n / 2, vals);
        assert_agrees(&r.union(&s), &m.union(&sm))?;
        prop_assert_eq!(&r.union(&r), &r);
        prop_assert_eq!(r.union(&s), s.project(&cols).union(&r));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_agrees_with_brute_on_random_pp(
        vars in 1usize..=4,
        atoms in collection::vec((0u8..8, 0u8..8), 0..5),
        qmask in 0u8..16,
        n in 1usize..=4,
        sseed in 0u64..10_000,
    ) {
        let query = random_cq_formula(vars, &atoms, qmask);
        let sig = Signature::from_symbols([("E", 2)]);
        let pp = PpFormula::from_query(&query, &sig).unwrap();
        let b = digraph(sseed, n, 0.4);
        let expected = brute_count_pp(&pp, &b);
        prop_assert_eq!(count_pp(&pp, &b).to_u64(), Some(expected));
        // The pool-parallel plan is bit-identical at every thread count.
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(
                count_pp_par(&pp, &b, threads).to_u64(),
                Some(expected),
                "threads = {}", threads
            );
        }
        // Materialization agrees with counting, sequentially and in
        // parallel.
        let answers = answers_pp(&pp, &b);
        prop_assert_eq!(answers.len() as u64, expected);
        for threads in [2usize, 4] {
            prop_assert_eq!(&answers_pp_par(&pp, &b, threads), &answers);
        }
    }

    #[test]
    fn ucq_union_agrees_with_brute(
        vars in 2usize..=3,
        atoms1 in collection::vec((0u8..8, 0u8..8), 1..4),
        atoms2 in collection::vec((0u8..8, 0u8..8), 1..4),
        qmask in 0u8..4,
        n in 1usize..=3,
        sseed in 0u64..10_000,
    ) {
        // A two-disjunct UCQ over a shared liberal set.
        let q1 = random_cq_formula(vars, &atoms1, qmask);
        let q2 = random_cq_formula(vars, &atoms2, qmask);
        let formula = Formula::Or(
            Box::new(q1.formula().clone()),
            Box::new(q2.formula().clone()),
        );
        let query = Query::new(formula, q1.liberal().to_vec()).unwrap();
        let sig = infer_signature([query.formula()]).unwrap();
        let ds = dnf::disjuncts(&query, &sig).unwrap();
        let b = digraph(sseed, n, 0.45);
        let expected = brute_count(query.liberal_count(), &b, |values| {
            ds.iter().any(|d| d.satisfied_by(&b, values))
        });
        prop_assert_eq!(count_ucq(&ds, &b).to_u64(), Some(expected));
        for threads in [2usize, 4] {
            prop_assert_eq!(
                count_ucq_par(&ds, &b, threads).to_u64(),
                Some(expected),
                "threads = {}", threads
            );
        }
    }
}
