//! Property tests for the relational-algebra engine: the join planner
//! (sequential *and* pool-parallel) must agree with assignment-level
//! brute force on random pp-formulas, random UCQs, and random
//! structures.
//!
//! The brute-force reference is local to this suite (assignment
//! enumeration through `PpFormula::satisfied_by`) so the test needs no
//! dependency on `epq-counting` — which depends on this crate and
//! would otherwise close a dev-dependency cycle.

use epq_logic::query::infer_signature;
use epq_logic::{dnf, Formula, PpFormula, Query, Var};
use epq_relalg::{answers_pp, answers_pp_par, count_pp, count_pp_par, count_ucq, count_ucq_par};
use epq_structures::{Signature, Structure};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Enumerates all liberal assignments, counting those that extend to a
/// homomorphism — the ground truth `|φ(B)|`.
fn brute_count_pp(pp: &PpFormula, b: &Structure) -> u64 {
    brute_count(pp.liberal_count(), b, |values| pp.satisfied_by(b, values))
}

fn brute_count(slots: usize, b: &Structure, satisfied: impl Fn(&[u32]) -> bool) -> u64 {
    let n = b.universe_size() as u32;
    if slots == 0 {
        return u64::from(satisfied(&[]));
    }
    if n == 0 {
        return 0;
    }
    let mut values = vec![0u32; slots];
    let mut count = 0u64;
    loop {
        if satisfied(&values) {
            count += 1;
        }
        let mut i = 0;
        loop {
            if i == slots {
                return count;
            }
            values[i] += 1;
            if values[i] < n {
                break;
            }
            values[i] = 0;
            i += 1;
        }
    }
}

/// Builds a random conjunction of `E`-atoms over `vars` variables, with
/// the variables selected by `qmask` existentially quantified.
fn random_cq_formula(vars: usize, atoms: &[(u8, u8)], qmask: u8) -> Query {
    let names: Vec<String> = (0..vars).map(|i| format!("v{i}")).collect();
    let parts: Vec<Formula> = atoms
        .iter()
        .map(|&(a, b)| {
            Formula::atom(
                "E",
                &[
                    names[a as usize % vars].as_str(),
                    names[b as usize % vars].as_str(),
                ],
            )
        })
        .collect();
    let matrix = Formula::conjunction(parts);
    let quantified: Vec<&str> = (0..vars)
        .filter(|i| qmask & (1 << i) != 0)
        .map(|i| names[i].as_str())
        .collect();
    let liberal: Vec<Var> = (0..vars)
        .filter(|i| qmask & (1 << i) == 0)
        .map(|i| Var::new(&names[i]))
        .collect();
    let formula = if quantified.is_empty() {
        matrix
    } else {
        Formula::exists(&quantified, matrix)
    };
    Query::new(formula, liberal).expect("valid random query")
}

fn digraph(seed: u64, n: usize, p: f64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let sig = Signature::from_symbols([("E", 2)]);
    let mut s = Structure::new(sig, n);
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if rng.gen_bool(p) {
                s.add_tuple_named("E", &[u, v]);
            }
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_agrees_with_brute_on_random_pp(
        vars in 1usize..=4,
        atoms in collection::vec((0u8..8, 0u8..8), 0..5),
        qmask in 0u8..16,
        n in 1usize..=4,
        sseed in 0u64..10_000,
    ) {
        let query = random_cq_formula(vars, &atoms, qmask);
        let sig = Signature::from_symbols([("E", 2)]);
        let pp = PpFormula::from_query(&query, &sig).unwrap();
        let b = digraph(sseed, n, 0.4);
        let expected = brute_count_pp(&pp, &b);
        prop_assert_eq!(count_pp(&pp, &b).to_u64(), Some(expected));
        // The pool-parallel plan is bit-identical at every thread count.
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(
                count_pp_par(&pp, &b, threads).to_u64(),
                Some(expected),
                "threads = {}", threads
            );
        }
        // Materialization agrees with counting, sequentially and in
        // parallel.
        let answers = answers_pp(&pp, &b);
        prop_assert_eq!(answers.len() as u64, expected);
        for threads in [2usize, 4] {
            prop_assert_eq!(&answers_pp_par(&pp, &b, threads), &answers);
        }
    }

    #[test]
    fn ucq_union_agrees_with_brute(
        vars in 2usize..=3,
        atoms1 in collection::vec((0u8..8, 0u8..8), 1..4),
        atoms2 in collection::vec((0u8..8, 0u8..8), 1..4),
        qmask in 0u8..4,
        n in 1usize..=3,
        sseed in 0u64..10_000,
    ) {
        // A two-disjunct UCQ over a shared liberal set.
        let q1 = random_cq_formula(vars, &atoms1, qmask);
        let q2 = random_cq_formula(vars, &atoms2, qmask);
        let formula = Formula::Or(
            Box::new(q1.formula().clone()),
            Box::new(q2.formula().clone()),
        );
        let query = Query::new(formula, q1.liberal().to_vec()).unwrap();
        let sig = infer_signature([query.formula()]).unwrap();
        let ds = dnf::disjuncts(&query, &sig).unwrap();
        let b = digraph(sseed, n, 0.45);
        let expected = brute_count(query.liberal_count(), &b, |values| {
            ds.iter().any(|d| d.satisfied_by(&b, values))
        });
        prop_assert_eq!(count_ucq(&ds, &b).to_u64(), Some(expected));
        for threads in [2usize, 4] {
            prop_assert_eq!(
                count_ucq_par(&ds, &b, threads).to_u64(),
                Some(expected),
                "threads = {}", threads
            );
        }
    }
}
