//! Evaluating pp-formulas and UCQs with relational algebra.

use crate::relation::Relation;
use epq_bigint::Natural;
use epq_logic::PpFormula;
use epq_structures::{RelId, Structure};
use std::collections::HashMap;

/// A record of the join order chosen for a formula (for inspection and
/// the benchmark reports).
#[derive(Clone, Debug, Default)]
pub struct JoinPlan {
    /// One line per step, e.g. `scan E(1,2) [3 rows]`, `join -> 12 rows`.
    pub steps: Vec<String>,
}

/// Scans one atom `(rel, element-tuple)` against `b`, producing a
/// relation whose schema is the atom's distinct element indices (repeated
/// elements become equality selections).
fn scan_atom(b: &Structure, rel: RelId, atom: &[u32]) -> Relation {
    // Distinct columns in order of first occurrence.
    let mut schema: Vec<u32> = Vec::new();
    for &e in atom {
        if !schema.contains(&e) {
            schema.push(e);
        }
    }
    let positions: Vec<usize> = schema
        .iter()
        .map(|c| atom.iter().position(|e| e == c).unwrap())
        .collect();
    // Matching tuples stream straight into the relation's flat arena —
    // no per-row Vec.
    let mut data: Vec<u32> = Vec::new();
    let mut matched = false;
    'tuple: for t in b.relation(rel).tuples() {
        // Check the repeated-element pattern.
        for (i, &e) in atom.iter().enumerate() {
            let first = atom.iter().position(|x| *x == e).unwrap();
            if t[i] != t[first] {
                continue 'tuple;
            }
        }
        data.extend(positions.iter().map(|&i| t[i]));
        matched = true;
    }
    if schema.is_empty() {
        // A nullary atom is a presence test.
        return if matched {
            Relation::unit()
        } else {
            Relation::empty()
        };
    }
    Relation::from_flat(schema, data)
}

/// A cache of atom-scan intermediates over **one** structure, the
/// relational-algebra hook behind incremental re-counting
/// (`epq_core::incremental::LiveCount`).
///
/// The scan of an atom depends only on the target relation's tuples and
/// the atom's **repeat pattern** (which positions carry equal element
/// indices) — not on the concrete indices, the enclosing formula, or
/// the ∃-component numbering. Entries are therefore keyed on
/// `(relation, pattern)` and stored with a pattern-canonical schema; a
/// hit is one arena clone plus a schema rename (no rescan, no re-sort),
/// and one entry serves every disjunct that scans the same shape.
///
/// **Coherence is the caller's contract:** a cache belongs to one
/// structure, and every relation that gains tuples must be
/// [`ScanCache::invalidate`]d before the next evaluation against it.
#[derive(Debug, Default)]
pub struct ScanCache {
    /// `(relation id, repeat-pattern-normalized atom) → scan` with the
    /// pattern-canonical schema `0..k`.
    map: HashMap<(u32, Vec<u32>), Relation>,
    hits: usize,
    misses: usize,
}

impl ScanCache {
    /// An empty cache.
    pub fn new() -> Self {
        ScanCache::default()
    }

    /// Number of cached scans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Scan lookups answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Scan lookups that ran the real scan.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Drops every cached scan of `rel` — call after `rel` gains
    /// tuples.
    pub fn invalidate(&mut self, rel: RelId) {
        self.map.retain(|&(r, _), _| r != rel.0);
    }

    /// Drops everything (the counters keep accumulating).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// The scan of `atom` against `b.relation(rel)`, from the cache
    /// when the `(rel, pattern)` shape was scanned before.
    pub fn scan(&mut self, b: &Structure, rel: RelId, atom: &[u32]) -> Relation {
        // Normalize to the repeat pattern (first occurrence ↦ 0, 1, …)
        // and remember the atom's real distinct-element schema.
        let mut schema: Vec<u32> = Vec::new();
        let pattern: Vec<u32> = atom
            .iter()
            .map(|&e| match schema.iter().position(|&s| s == e) {
                Some(i) => i as u32,
                None => {
                    schema.push(e);
                    schema.len() as u32 - 1
                }
            })
            .collect();
        if let Some(cached) = self.map.get(&(rel.0, pattern.clone())) {
            self.hits += 1;
            return cached.clone().renamed(schema);
        }
        self.misses += 1;
        // Scanning the pattern itself yields the canonical schema
        // `0..k`, which is what the map stores.
        let canonical = scan_atom(b, rel, &pattern);
        let out = canonical.clone().renamed(schema);
        self.map.insert((rel.0, pattern), canonical);
        out
    }
}

/// Joins all atoms of `pp` against `b` greedily (smallest relation first,
/// preferring scans that share a column with what has been joined so far),
/// pulling each atom's scan from `scan` (a direct [`scan_atom`] or a
/// [`ScanCache`]). Returns the joined relation and the plan taken.
///
/// Each join's outer (probe) relation is partitioned across up to
/// `threads` pool workers; the greedy join *order* is chosen before any
/// join runs, so the plan — and, via the sort+dedup normalization in
/// [`Relation::new`], the result — is identical at every thread count.
fn join_all_via(
    pp: &PpFormula,
    b: &Structure,
    threads: usize,
    scan: &mut dyn FnMut(&Structure, RelId, &[u32]) -> Relation,
) -> (Relation, JoinPlan) {
    let mut plan = JoinPlan::default();
    let mut scans: Vec<(String, Relation)> = Vec::new();
    for (rel, name, _) in pp.signature().iter() {
        for t in pp.structure().relation(rel).tuples() {
            let r = scan(b, rel, t);
            plan.steps
                .push(format!("scan {name}{t:?} -> {} rows", r.len()));
            scans.push((format!("{name}{t:?}"), r));
        }
    }
    if scans.is_empty() {
        return (Relation::unit(), plan);
    }
    scans.sort_by_key(|(_, r)| r.len());
    let mut acc = scans.remove(0).1;
    while !scans.is_empty() {
        // Prefer a scan sharing a column with the accumulator.
        let idx = scans
            .iter()
            .position(|(_, r)| r.schema().iter().any(|c| acc.schema().contains(c)))
            .unwrap_or(0);
        let (label, r) = scans.remove(idx);
        acc = acc.join_par(&r, threads);
        plan.steps
            .push(format!("join {label} -> {} rows", acc.len()));
        if acc.is_empty() {
            break;
        }
    }
    (acc, plan)
}

/// [`join_all_via`] with direct (uncached) atom scans.
fn join_all(pp: &PpFormula, b: &Structure, threads: usize) -> (Relation, JoinPlan) {
    join_all_via(pp, b, threads, &mut |b, rel, atom| scan_atom(b, rel, atom))
}

/// Counts `|φ(B)|` for a pp-formula by relational algebra, component by
/// component: `|φ(B)| = Π_i |φᵢ(B)|` (Section 2.1 of the paper), where a
/// liberal-free component contributes 1/0 by satisfiability, an isolated
/// liberal variable contributes |B|, and every other component contributes
/// its number of distinct projected join rows.
pub fn count_pp(pp: &PpFormula, b: &Structure) -> Natural {
    count_pp_par(pp, b, 1)
}

/// [`count_pp`] with every join's outer relation work-sharded across up
/// to `threads` pool workers (see [`Relation::join_par`]). Counts are
/// bit-identical to the sequential engine at every thread count.
pub fn count_pp_par(pp: &PpFormula, b: &Structure, threads: usize) -> Natural {
    count_pp_via(pp, b, threads, &mut |b, rel, atom| scan_atom(b, rel, atom))
}

/// [`count_pp`] with atom scans served from (and inserted into)
/// `cache` — the incremental-maintenance entry point: after a few
/// relations change, re-evaluating a formula rescans only atoms over
/// the relations the caller [`ScanCache::invalidate`]d, and reuses
/// every other scan. Counts are bit-identical to [`count_pp`] /
/// [`count_pp_par`] — identical scans feed the identical greedy plan —
/// provided the cache is coherent with `b` (see [`ScanCache`]).
pub fn count_pp_cached(
    pp: &PpFormula,
    b: &Structure,
    cache: &mut ScanCache,
    threads: usize,
) -> Natural {
    count_pp_via(pp, b, threads, &mut |b, rel, atom| cache.scan(b, rel, atom))
}

fn count_pp_via(
    pp: &PpFormula,
    b: &Structure,
    threads: usize,
    scan: &mut dyn FnMut(&Structure, RelId, &[u32]) -> Relation,
) -> Natural {
    let mut total = Natural::one();
    for component in pp.components() {
        let n = component.structure().universe_size();
        let has_atoms = component.structure().tuple_count() > 0;
        let liberal = component.liberal_count();
        let factor = if !has_atoms {
            // Singleton component (Gaifman-isolated vertex).
            debug_assert_eq!(n, 1);
            if liberal == 1 {
                Natural::from(b.universe_size())
            } else {
                // ∃u.⊤ — needs a nonempty universe.
                if b.universe_size() > 0 {
                    Natural::one()
                } else {
                    Natural::zero()
                }
            }
        } else {
            let (joined, _) = join_all_via(&component, b, threads, scan);
            if joined.is_empty() {
                // An early-terminated empty join may have a partial
                // schema; the count is zero either way.
                Natural::zero()
            } else if liberal == 0 {
                Natural::one()
            } else {
                let slots: Vec<u32> = (0..liberal as u32).collect();
                Natural::from(joined.project(&slots).len())
            }
        };
        if factor.is_zero() {
            return Natural::zero();
        }
        total = total * factor;
    }
    total
}

/// Materializes the full answer set `φ(B)` of a pp-formula as a relation
/// over the liberal slots `0..liberal_count` (isolated liberal variables
/// are extended over the whole universe — this is where materialization
/// pays the |B|^k price that pure counting avoids).
pub fn answers_pp(pp: &PpFormula, b: &Structure) -> Relation {
    answers_pp_par(pp, b, 1)
}

/// [`answers_pp`] with pool-parallel joins (bit-identical results; see
/// [`count_pp_par`]).
pub fn answers_pp_par(pp: &PpFormula, b: &Structure, threads: usize) -> Relation {
    let mut acc = Relation::unit();
    for component in pp.components() {
        let has_atoms = component.structure().tuple_count() > 0;
        let liberal = component.liberal_count();
        if !has_atoms {
            if liberal == 1 {
                // Which liberal slot of the parent is this? Map by name.
                let name = component.name(0);
                let slot = pp
                    .liberal_names()
                    .iter()
                    .position(|v| v == name)
                    .expect("component liberal var is a parent liberal var")
                    as u32;
                acc = acc.extend_with_domain(slot, b.universe_size());
            } else if b.universe_size() == 0 {
                return Relation::new((0..pp.liberal_count() as u32).collect(), Vec::new());
            }
            continue;
        }
        let (joined, _) = join_all(&component, b, threads);
        if joined.is_empty() {
            // Empty join (possibly early-terminated with a partial
            // schema): the whole answer set is empty.
            return Relation::new((0..pp.liberal_count() as u32).collect(), Vec::new());
        }
        if liberal == 0 {
            continue;
        }
        // Project onto this component's liberal slots, remapped to the
        // parent's slot numbering by variable name.
        let local_slots: Vec<u32> = (0..liberal as u32).collect();
        let projected = joined.project(&local_slots);
        let parent_slots: Vec<u32> = local_slots
            .iter()
            .map(|&i| {
                let name = component.name(i);
                pp.liberal_names().iter().position(|v| v == name).unwrap() as u32
            })
            .collect();
        let renamed = projected.renamed(parent_slots);
        acc = acc.join_par(&renamed, threads);
    }
    // Ensure the full liberal schema (in order).
    let full: Vec<u32> = (0..pp.liberal_count() as u32).collect();
    acc.project(&full)
}

/// Counts `|φ(B)|` for a UCQ given as disjuncts over a shared liberal
/// variable set, by materializing and unioning the disjunct answer sets
/// (set semantics).
pub fn count_ucq(disjuncts: &[PpFormula], b: &Structure) -> Natural {
    count_ucq_par(disjuncts, b, 1)
}

/// [`count_ucq`] with pool-parallel joins inside each disjunct's
/// materialization (bit-identical results; see [`count_pp_par`]).
pub fn count_ucq_par(disjuncts: &[PpFormula], b: &Structure, threads: usize) -> Natural {
    let mut acc: Option<Relation> = None;
    for d in disjuncts {
        let answers = answers_pp_par(d, b, threads);
        acc = Some(match acc {
            None => answers,
            Some(u) => u.union(&answers),
        });
    }
    match acc {
        None => Natural::zero(),
        Some(u) => Natural::from(u.len()),
    }
}

/// Produces the join plan for a pp-formula (for reports).
pub fn explain_pp(pp: &PpFormula, b: &Structure) -> JoinPlan {
    join_all(pp, b, 1).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_logic::parser::parse_query;
    use epq_logic::query::infer_signature;
    use epq_logic::{dnf, Query};
    use epq_structures::Signature;

    fn pp_of(text: &str) -> PpFormula {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        PpFormula::from_query(&q, &sig).unwrap()
    }

    fn ucq_of(text: &str) -> (Query, Vec<PpFormula>) {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        let ds = dnf::disjuncts(&q, &sig).unwrap();
        (q, ds)
    }

    /// The path structure 0 → 1 → 2 → 3 with a loop at 3 (Example 4.3's C,
    /// 0-based).
    fn example_c() -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 3)] {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    #[test]
    fn count_single_edge_query() {
        let pp = pp_of("E(x,y)");
        assert_eq!(count_pp(&pp, &example_c()).to_u64(), Some(4));
    }

    #[test]
    fn count_with_liberal_only_variable() {
        // (x,y,z) := E(x,y): z ranges over the universe → 4·4 = 16.
        let pp = pp_of("(x,y,z) := E(x,y)");
        assert_eq!(count_pp(&pp, &example_c()).to_u64(), Some(16));
    }

    #[test]
    fn count_quantified_query() {
        // (x) := exists u . E(x,u): vertices with out-edges = {0,1,2,3}.
        let pp = pp_of("(x) := exists u . E(x,u)");
        assert_eq!(count_pp(&pp, &example_c()).to_u64(), Some(4));
        // (x) := exists u . E(u,x): vertices with in-edges = {1,2,3}.
        let pp = pp_of("(x) := exists u . E(u,x)");
        assert_eq!(count_pp(&pp, &example_c()).to_u64(), Some(3));
    }

    #[test]
    fn count_path_of_length_two() {
        // E(x,y) & E(y,z): walks of length 2 in C:
        // 0→1→2, 1→2→3, 2→3→3, 3→3→3 = 4.
        let pp = pp_of("E(x,y) & E(y,z)");
        assert_eq!(count_pp(&pp, &example_c()).to_u64(), Some(4));
    }

    #[test]
    fn repeated_variable_atom() {
        // E(x,x): only the loop at 3.
        let pp = pp_of("E(x,x)");
        assert_eq!(count_pp(&pp, &example_c()).to_u64(), Some(1));
    }

    #[test]
    fn sentence_component_gates_count() {
        // (x) := E(x,x) & (exists a,b,c: path of length 2 among quantified).
        let pp = pp_of("(x) := E(x,x) & (exists a, b, c . E(a,b) & E(b,c))");
        assert_eq!(count_pp(&pp, &example_c()).to_u64(), Some(1));
        // With an unsatisfiable sentence part (loop-free structure needed):
        let sig = Signature::from_symbols([("E", 2)]);
        let mut b = Structure::new(sig, 2);
        b.add_tuple_named("E", &[0, 0]);
        let pp2 = pp_of("(x) := E(x,x) & (exists a, b . F(a,b))");
        // F is empty in b — need F in signature.
        let sig2 = Signature::from_symbols([("E", 2), ("F", 2)]);
        let mut b2 = Structure::new(sig2.clone(), 2);
        b2.add_tuple_named("E", &[0, 0]);
        let q = parse_query("(x) := E(x,x) & (exists a, b . F(a,b))").unwrap();
        let pp2b = PpFormula::from_query(&q, &sig2).unwrap();
        assert_eq!(count_pp(&pp2b, &b2).to_u64(), Some(0));
        let _ = pp2;
    }

    #[test]
    fn answers_match_counts() {
        for text in [
            "E(x,y)",
            "(x,y,z) := E(x,y)",
            "(x) := exists u . E(x,u) & E(u,u)",
            "E(x,y) & E(y,z)",
        ] {
            let pp = pp_of(text);
            let b = example_c();
            assert_eq!(
                Natural::from(answers_pp(&pp, &b).len()),
                count_pp(&pp, &b),
                "query {text}"
            );
        }
    }

    #[test]
    fn ucq_union_semantics() {
        // Example 2.1: φ(x,y,z) = E(x,y) ∨ S(y,z) — answers are the union
        // over the full liberal set.
        let sig = Signature::from_symbols([("E", 2), ("S", 2)]);
        let q = parse_query("(x,y,z) := E(x,y) | S(y,z)").unwrap();
        let ds = dnf::disjuncts(&q, &sig).unwrap();
        let mut b = Structure::new(sig, 3);
        b.add_tuple_named("E", &[0, 1]);
        b.add_tuple_named("S", &[1, 2]);
        // E(x,y)=(0,1): z free → 3 rows; S(y,z)=(1,2): x free → 3 rows;
        // overlap: (x,y,z)=(0,1,2) counted once → 5.
        assert_eq!(count_ucq(&ds, &b).to_u64(), Some(5));
    }

    #[test]
    fn ucq_of_example_4_1_matches_inclusion_exclusion_identity() {
        let (_, ds) = ucq_of("(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))");
        let b = example_c();
        let whole = count_ucq(&ds, &b);
        // |φ| = |φ1| + |φ2| − |φ1 ∧ φ2|.
        let phi1 = &ds[0];
        let phi2 = &ds[1];
        let conj = PpFormula::conjoin(&[phi1, phi2]);
        let rhs = count_pp(phi1, &b) + count_pp(phi2, &b);
        let sub = count_pp(&conj, &b);
        assert_eq!(rhs.checked_sub(&sub).unwrap(), whole);
    }

    #[test]
    fn empty_structure_counts() {
        let sig = Signature::from_symbols([("E", 2)]);
        let empty = Structure::new(sig, 0);
        assert_eq!(count_pp(&pp_of("E(x,y)"), &empty).to_u64(), Some(0));
        // Sentence with quantifier on the empty structure: 0.
        let pp = pp_of("exists a . E(a,a)");
        assert_eq!(count_pp(&pp, &empty).to_u64(), Some(0));
    }

    #[test]
    fn cached_counts_match_uncached_across_invalidation() {
        let texts = [
            "E(x,y)",
            "(x,y,z) := E(x,y)",
            "(x) := exists u . E(x,u) & E(u,u)",
            "E(x,y) & E(y,z)",
            "E(x,x)",
        ];
        let mut b = example_c();
        let mut cache = ScanCache::new();
        for text in texts {
            let pp = pp_of(text);
            assert_eq!(
                count_pp_cached(&pp, &b, &mut cache, 1),
                count_pp(&pp, &b),
                "cold cache, query {text}"
            );
        }
        assert!(cache.misses() > 0);
        // Warm pass: every scan shape is resident.
        let miss_watermark = cache.misses();
        for text in texts {
            let pp = pp_of(text);
            assert_eq!(
                count_pp_cached(&pp, &b, &mut cache, 1),
                count_pp(&pp, &b),
                "warm cache, query {text}"
            );
        }
        assert_eq!(cache.misses(), miss_watermark, "warm pass must not rescan");
        assert!(cache.hits() > 0);
        // Mutate E, invalidate, and re-verify against fresh scans.
        let e = b.signature().lookup("E").unwrap();
        b.add_tuple(e, &[1, 0]);
        cache.invalidate(e);
        for text in texts {
            let pp = pp_of(text);
            assert_eq!(
                count_pp_cached(&pp, &b, &mut cache, 1),
                count_pp(&pp, &b),
                "after invalidation, query {text}"
            );
        }
    }

    #[test]
    fn cache_shares_scans_across_formulas_by_pattern() {
        // E(x,y) and E(y,z) have the same repeat pattern — one cache
        // entry serves both; E(x,x) is a different pattern.
        let b = example_c();
        let mut cache = ScanCache::new();
        let _ = count_pp_cached(&pp_of("E(x,y)"), &b, &mut cache, 1);
        assert_eq!((cache.len(), cache.misses()), (1, 1));
        let _ = count_pp_cached(&pp_of("(a,b) := E(a,b)"), &b, &mut cache, 1);
        assert_eq!((cache.len(), cache.misses()), (1, 1));
        let _ = count_pp_cached(&pp_of("E(x,x)"), &b, &mut cache, 1);
        assert_eq!((cache.len(), cache.misses()), (2, 2));
        cache.invalidate(b.signature().lookup("E").unwrap());
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_counts_are_thread_invariant() {
        let pp = pp_of("E(x,y) & E(y,z)");
        let b = example_c();
        let expected = count_pp(&pp, &b);
        for threads in [1usize, 2, 4] {
            let mut cache = ScanCache::new();
            assert_eq!(count_pp_cached(&pp, &b, &mut cache, threads), expected);
            assert_eq!(count_pp_cached(&pp, &b, &mut cache, threads), expected);
        }
    }

    #[test]
    fn explain_produces_steps() {
        let pp = pp_of("E(x,y) & E(y,z)");
        let plan = explain_pp(&pp, &example_c());
        assert!(plan.steps.iter().any(|s| s.starts_with("scan")));
        assert!(plan.steps.iter().any(|s| s.starts_with("join")));
    }
}
