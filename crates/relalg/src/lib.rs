//! # epq-relalg — a select–project–join–union baseline engine
//!
//! Substrate crate S5 of the `epq` workspace (see `DESIGN.md`).
//!
//! Unions of conjunctive queries are exactly the select–project–join–union
//! queries of relational algebra (the paper's introduction cites them as
//! "the most common database queries"). This crate evaluates pp-formulas
//! and UCQs the way a small database engine would: scan atoms into
//! variable-schema relations, hash-join them (greedy smallest-first join
//! order), project onto the liberal variables, and union disjunct answer
//! sets with set semantics.
//!
//! It serves two roles in the reproduction:
//!
//! * an **independent counting oracle** — tests cross-check it against the
//!   brute-force and tree-decomposition counters of `epq-counting`;
//! * the **baseline engine** in the benchmark suite (experiment F1), the
//!   thing the paper's FPT algorithms are an asymptotic improvement over
//!   (materialization is output-sensitive and can be exponential).
//!
//! Columns are identified by *liberal slots* and pp-element indices (see
//! [`epq_logic::PpFormula`]'s canonical layout), so disjuncts over the
//! same liberal variable set align positionally.
//!
//! Every evaluation entry point has a `…_par` variant that partitions
//! each join's outer relation across the shared `epq-pool` workers
//! ([`Relation::join_par`]); results are **bit-identical** to the
//! sequential paths at every thread count, because shard boundaries
//! depend only on row indices and all partials funnel through the same
//! sort+dedup normalization.
//!
//! [`Relation`] stores its rows in a **flat row-major arena** (one
//! `Vec<u32>` plus an arity stride) rather than a `Vec<Vec<u32>>`: one
//! allocation per relation instead of one per row, rows iterated as
//! `&[u32]` slices, and hash-join keys packed into `u64`/`u128`
//! integers instead of per-row key `Vec`s — see the [`relation`] module
//! docs for the layout and the `P3` benchmark for the measured payoff.

pub mod engine;
pub mod relation;

pub use engine::{
    answers_pp, answers_pp_par, count_pp, count_pp_cached, count_pp_par, count_ucq, count_ucq_par,
    JoinPlan, ScanCache,
};
pub use relation::{Relation, Rows};
