//! In-memory relations with variable schemas and set semantics.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Minimum probe-side rows per shard of a parallel join:
/// [`Relation::join_par`] caps its shard count so every shard keeps at
/// least this many rows, and runs the sequential path when fewer than
/// two such shards fit.
const PAR_JOIN_MIN_PROBE_ROWS: usize = 256;

/// A materialized relation: a schema of column identifiers (pp-formula
/// element indices) and a deduplicated, sorted set of rows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    schema: Vec<u32>,
    rows: Vec<Vec<u32>>,
}

impl Relation {
    /// Builds a relation, deduplicating and sorting rows.
    ///
    /// # Panics
    /// Panics if the schema has duplicate columns or a row has the wrong
    /// width.
    pub fn new(schema: Vec<u32>, mut rows: Vec<Vec<u32>>) -> Self {
        let unique: BTreeSet<u32> = schema.iter().copied().collect();
        assert_eq!(unique.len(), schema.len(), "duplicate column in schema");
        for row in &rows {
            assert_eq!(row.len(), schema.len(), "row width mismatch");
        }
        rows.sort_unstable();
        rows.dedup();
        Relation { schema, rows }
    }

    /// The nullary relation with a single empty row (the join identity).
    pub fn unit() -> Self {
        Relation {
            schema: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    /// The nullary empty relation (the join annihilator).
    pub fn empty() -> Self {
        Relation {
            schema: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Column identifiers.
    pub fn schema(&self) -> &[u32] {
        &self.schema
    }

    /// The rows (sorted, deduplicated).
    pub fn rows(&self) -> &[Vec<u32>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Natural join on shared columns (hash join; the smaller side builds).
    pub fn join(&self, other: &Relation) -> Relation {
        self.join_par(other, 1)
    }

    /// [`Relation::join`] with the probe (outer) side partitioned into
    /// contiguous row-range shards across up to `threads` pool workers.
    ///
    /// Shard boundaries depend only on row indices, and every partial
    /// result set funnels through the same sort+dedup normalization in
    /// [`Relation::new`], so the output is **bit-identical** to the
    /// sequential join at every thread count.
    pub fn join_par(&self, other: &Relation, threads: usize) -> Relation {
        let (build, probe) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        // Shared columns and their positions.
        let shared: Vec<u32> = build
            .schema
            .iter()
            .copied()
            .filter(|c| probe.schema.contains(c))
            .collect();
        let build_key: Vec<usize> = shared
            .iter()
            .map(|c| build.schema.iter().position(|x| x == c).unwrap())
            .collect();
        let probe_key: Vec<usize> = shared
            .iter()
            .map(|c| probe.schema.iter().position(|x| x == c).unwrap())
            .collect();
        // Output schema: build's columns then probe's non-shared columns.
        let probe_extra: Vec<usize> = (0..probe.schema.len())
            .filter(|&i| !shared.contains(&probe.schema[i]))
            .collect();
        let mut schema = build.schema.clone();
        schema.extend(probe_extra.iter().map(|&i| probe.schema[i]));

        let mut table: HashMap<Vec<u32>, Vec<&Vec<u32>>> = HashMap::new();
        for row in &build.rows {
            let key: Vec<u32> = build_key.iter().map(|&i| row[i]).collect();
            table.entry(key).or_default().push(row);
        }
        let probe_shard = |range: std::ops::Range<usize>| -> Vec<Vec<u32>> {
            let mut rows = Vec::new();
            for row in &probe.rows[range] {
                let key: Vec<u32> = probe_key.iter().map(|&i| row[i]).collect();
                if let Some(matches) = table.get(&key) {
                    for b in matches {
                        let mut out = (*b).clone();
                        out.extend(probe_extra.iter().map(|&i| row[i]));
                        rows.push(out);
                    }
                }
            }
            rows
        };
        // Small probe sides are not worth the pool hop, and shards
        // below the minimum row count pay more in dispatch than they
        // win in overlap — cap the shard count so every shard keeps at
        // least PAR_JOIN_MIN_PROBE_ROWS rows.
        let max_shards = probe.rows.len() / PAR_JOIN_MIN_PROBE_ROWS;
        let rows = if threads <= 1 || max_shards < 2 {
            probe_shard(0..probe.rows.len())
        } else {
            let shards = threads.saturating_mul(4).min(max_shards);
            let jobs: Vec<_> = epq_pool::split_ranges(probe.rows.len() as u128, shards)
                .into_iter()
                .map(|(lo, hi)| {
                    let probe_shard = &probe_shard;
                    move || probe_shard(lo as usize..hi as usize)
                })
                .collect();
            let mut rows = Vec::new();
            for partial in epq_pool::run_jobs(threads, jobs) {
                rows.extend(partial);
            }
            rows
        };
        Relation::new(schema, rows)
    }

    /// Projection onto `columns` (with deduplication).
    ///
    /// # Panics
    /// Panics if a requested column is absent.
    pub fn project(&self, columns: &[u32]) -> Relation {
        let positions: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema
                    .iter()
                    .position(|x| x == c)
                    .unwrap_or_else(|| panic!("column {c} not in schema"))
            })
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|row| positions.iter().map(|&i| row[i]).collect())
            .collect();
        Relation::new(columns.to_vec(), rows)
    }

    /// Set union. Schemas must contain the same columns; `other` is
    /// reordered to match.
    ///
    /// # Panics
    /// Panics if the column sets differ.
    pub fn union(&self, other: &Relation) -> Relation {
        let reordered = other.project(&self.schema);
        let mut rows = self.rows.clone();
        rows.extend(reordered.rows);
        Relation::new(self.schema.clone(), rows)
    }

    /// Cross product with a fresh column ranging over `0..domain`.
    ///
    /// # Panics
    /// Panics if `column` is already in the schema.
    pub fn extend_with_domain(&self, column: u32, domain: usize) -> Relation {
        assert!(
            !self.schema.contains(&column),
            "column {column} already present"
        );
        let mut schema = self.schema.clone();
        schema.push(column);
        let mut rows = Vec::with_capacity(self.rows.len() * domain);
        for row in &self.rows {
            for x in 0..domain as u32 {
                let mut out = row.clone();
                out.push(x);
                rows.push(out);
            }
        }
        Relation::new(schema, rows)
    }

    /// Selection: keep rows where the given columns are equal.
    pub fn select_eq(&self, a: u32, b: u32) -> Relation {
        let pa = self.schema.iter().position(|&x| x == a).expect("column a");
        let pb = self.schema.iter().position(|&x| x == b).expect("column b");
        let rows = self
            .rows
            .iter()
            .filter(|row| row[pa] == row[pb])
            .cloned()
            .collect();
        Relation::new(self.schema.clone(), rows)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:?}", self.schema)?;
        for row in &self.rows {
            writeln!(f, "{row:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::new(schema.to_vec(), rows.iter().map(|r| r.to_vec()).collect())
    }

    #[test]
    fn rows_are_set_semantics() {
        let r = rel(&[0, 1], &[&[1, 2], &[0, 1], &[1, 2]]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0], vec![0, 1]);
    }

    #[test]
    fn join_on_shared_column() {
        // R(x,y) ⋈ S(y,z)
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let s = rel(&[1, 2], &[&[2, 5], &[2, 6], &[9, 9]]);
        let j = r.join(&s);
        assert_eq!(j.schema(), &[0, 1, 2]);
        assert_eq!(j.rows(), &[vec![1, 2, 5], vec![1, 2, 6]]);
    }

    #[test]
    fn join_without_shared_columns_is_cross_product() {
        let r = rel(&[0], &[&[1], &[2]]);
        let s = rel(&[1], &[&[7], &[8]]);
        let j = r.join(&s);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn parallel_join_is_bit_identical() {
        // Big enough to cross the sequential-fallback threshold.
        let r = Relation::new(
            vec![0, 1],
            (0..2048u32).map(|i| vec![i % 97, i % 61]).collect(),
        );
        let s = Relation::new(
            vec![1, 2],
            (0..2048u32).map(|i| vec![i % 61, i % 7]).collect(),
        );
        let sequential = r.join(&s);
        let swapped = s.join(&r);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(r.join_par(&s, threads), sequential, "threads = {threads}");
            assert_eq!(s.join_par(&r, threads), swapped, "swapped, {threads}");
        }
    }

    #[test]
    fn join_with_unit_and_empty() {
        let r = rel(&[0], &[&[1], &[2]]);
        assert_eq!(r.join(&Relation::unit()), r);
        assert!(r.join(&Relation::empty()).is_empty());
    }

    #[test]
    fn projection_dedupes() {
        let r = rel(&[0, 1], &[&[1, 5], &[1, 6], &[2, 5]]);
        let p = r.project(&[0]);
        assert_eq!(p.rows(), &[vec![1], vec![2]]);
    }

    #[test]
    fn union_reorders_columns() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        let s = rel(&[1, 0], &[&[2, 1], &[9, 8]]);
        let u = r.union(&s);
        assert_eq!(u.len(), 2); // (1,2) merges with reordered (2,1)
        assert!(u.rows().contains(&vec![8, 9]));
    }

    #[test]
    fn domain_extension() {
        let r = rel(&[0], &[&[5]]);
        let e = r.extend_with_domain(3, 4);
        assert_eq!(e.len(), 4);
        assert_eq!(e.schema(), &[0, 3]);
    }

    #[test]
    fn select_eq_filters() {
        let r = rel(&[0, 1], &[&[1, 1], &[1, 2], &[3, 3]]);
        let s = r.select_eq(0, 1);
        assert_eq!(s.rows(), &[vec![1, 1], vec![3, 3]]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_schema_panics() {
        let _ = rel(&[0, 0], &[]);
    }
}
