//! In-memory relations with variable schemas and set semantics, stored
//! in a flat row-major arena.
//!
//! # Data layout
//!
//! A [`Relation`] is one contiguous `Vec<u32>` holding every row
//! back-to-back (`data[i * arity .. (i + 1) * arity]` is row `i`), plus
//! an explicit row count so nullary relations can still distinguish
//! "one empty row" (the join identity) from "no rows". Compared to the
//! obvious `Vec<Vec<u32>>`, this layout:
//!
//! * costs **one allocation per relation** instead of one per row;
//! * iterates rows as `&[u32]` slices with perfect cache locality;
//! * lets the hash join key on **packed integers** (`u64` for up to two
//!   shared columns, `u128` for up to four) instead of allocating a key
//!   `Vec` per build/probe row.
//!
//! The canonical form — rows sorted lexicographically and deduplicated —
//! is unchanged from the nested-`Vec` layout, so every operation here is
//! bit-identical in output to its predecessor, and the parallel join's
//! determinism argument (shard boundaries depend only on row indices;
//! all partials funnel through the same sort+dedup normalization) is
//! untouched.

use std::collections::{HashMap, HashSet};
use std::fmt;

/// Minimum probe-side rows per shard of a parallel join:
/// [`Relation::join_par`] caps its shard count so every shard keeps at
/// least this many rows, and runs the sequential path when fewer than
/// two such shards fit.
const PAR_JOIN_MIN_PROBE_ROWS: usize = 256;

/// A materialized relation: a schema of column identifiers (pp-formula
/// element indices) and a deduplicated, sorted set of rows in a flat
/// row-major arena.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    schema: Vec<u32>,
    /// Number of rows (explicit: nullary relations have no data).
    len: usize,
    /// Row-major arena, `len * schema.len()` values.
    data: Vec<u32>,
}

impl Relation {
    /// Builds a relation from materialized rows, deduplicating and
    /// sorting. Prefer [`Relation::from_flat`] on hot paths — it takes
    /// the rows as one flat buffer and never allocates per row.
    ///
    /// # Panics
    /// Panics if the schema has duplicate columns or a row has the wrong
    /// width.
    pub fn new(schema: Vec<u32>, rows: Vec<Vec<u32>>) -> Self {
        for row in &rows {
            assert_eq!(row.len(), schema.len(), "row width mismatch");
        }
        if schema.is_empty() {
            assert_distinct(&schema);
            return Relation {
                schema,
                len: usize::from(!rows.is_empty()),
                data: Vec::new(),
            };
        }
        let mut data = Vec::with_capacity(rows.len() * schema.len());
        for row in &rows {
            data.extend_from_slice(row);
        }
        Relation::from_flat(schema, data)
    }

    /// Builds a relation from a flat row-major buffer, sorting and
    /// deduplicating rows in place. The preferred constructor on hot
    /// paths: one buffer in, one relation out, no per-row allocation.
    ///
    /// # Panics
    /// Panics if the schema is empty (use [`Relation::unit`] /
    /// [`Relation::empty`] for nullary relations), has duplicate
    /// columns, or `data.len()` is not a multiple of the arity.
    pub fn from_flat(schema: Vec<u32>, data: Vec<u32>) -> Self {
        assert!(
            !schema.is_empty(),
            "nullary relations have no flat buffer; use unit()/empty()"
        );
        assert_distinct(&schema);
        let arity = schema.len();
        assert_eq!(data.len() % arity, 0, "flat buffer width mismatch");
        let (len, data) = sort_dedup_flat(arity, data);
        Relation { schema, len, data }
    }

    /// Builds a relation from a flat buffer whose rows are already
    /// sorted and deduplicated — operations that preserve the canonical
    /// order (selection, sorted extension, merges) use this to skip the
    /// re-sort. Checked in debug builds.
    fn from_sorted_flat(schema: Vec<u32>, len: usize, data: Vec<u32>) -> Self {
        debug_assert_eq!(data.len(), len * schema.len());
        debug_assert!(
            schema.is_empty()
                || data
                    .chunks_exact(schema.len())
                    .zip(data.chunks_exact(schema.len()).skip(1))
                    .all(|(a, b)| a < b),
            "rows must arrive sorted and deduplicated"
        );
        debug_assert!(!schema.is_empty() || len <= 1);
        Relation { schema, len, data }
    }

    /// The nullary relation with a single empty row (the join identity).
    pub fn unit() -> Self {
        Relation {
            schema: Vec::new(),
            len: 1,
            data: Vec::new(),
        }
    }

    /// The nullary empty relation (the join annihilator).
    pub fn empty() -> Self {
        Relation {
            schema: Vec::new(),
            len: 0,
            data: Vec::new(),
        }
    }

    /// Column identifiers.
    pub fn schema(&self) -> &[u32] {
        &self.schema
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i` as a slice into the arena.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[u32] {
        assert!(i < self.len, "row index out of range");
        let arity = self.schema.len();
        &self.data[i * arity..(i + 1) * arity]
    }

    /// Iterates the rows (sorted, deduplicated) as `&[u32]` slices.
    pub fn rows(&self) -> Rows<'_> {
        Rows {
            relation: self,
            next: 0,
        }
    }

    /// The same rows under a renamed schema (identical arity and column
    /// order — only the identifiers change). Consumes the relation and
    /// reuses its sorted arena: no copy, no re-sort.
    ///
    /// # Panics
    /// Panics if the new schema's width differs or has duplicates.
    pub fn renamed(self, schema: Vec<u32>) -> Relation {
        assert_eq!(schema.len(), self.schema.len(), "renamed width mismatch");
        assert_distinct(&schema);
        Relation {
            schema,
            len: self.len,
            data: self.data,
        }
    }

    /// Natural join on shared columns (hash join; the smaller side builds).
    pub fn join(&self, other: &Relation) -> Relation {
        self.join_par(other, 1)
    }

    /// [`Relation::join`] with the probe (outer) side partitioned into
    /// contiguous row-range shards across up to `threads` pool workers.
    ///
    /// Shard boundaries depend only on row indices, and every partial
    /// result set funnels through the same sort+dedup normalization, so
    /// the output is **bit-identical** to the sequential join at every
    /// thread count.
    pub fn join_par(&self, other: &Relation, threads: usize) -> Relation {
        let (build, probe) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        // Position maps, computed once: probe column -> probe position,
        // then one pass over the build schema finds the shared columns
        // and one pass over the probe schema finds the extras (the seed
        // layout re-scanned both schemas per column).
        let probe_pos: HashMap<u32, usize> = probe
            .schema
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        let mut build_key: Vec<usize> = Vec::new();
        let mut probe_key: Vec<usize> = Vec::new();
        for (i, &c) in build.schema.iter().enumerate() {
            if let Some(&j) = probe_pos.get(&c) {
                build_key.push(i);
                probe_key.push(j);
            }
        }
        let shared: HashSet<u32> = build_key.iter().map(|&i| build.schema[i]).collect();
        let probe_extra: Vec<usize> = (0..probe.schema.len())
            .filter(|&i| !shared.contains(&probe.schema[i]))
            .collect();
        // Output schema: build's columns then probe's non-shared columns.
        let mut schema = build.schema.clone();
        schema.extend(probe_extra.iter().map(|&i| probe.schema[i]));

        if schema.is_empty() {
            // Nullary ⋈ nullary: unit is the identity, empty annihilates.
            return if build.len > 0 && probe.len > 0 {
                Relation::unit()
            } else {
                Relation::empty()
            };
        }

        // The key columns pack into a fixed-width integer for up to four
        // shared columns (the overwhelmingly common case — shared sets
        // are intersections of atom schemas); wider keys fall back to a
        // boxed slice. Either way, no allocation per probe row on the
        // packed paths.
        let data = match build_key.len() {
            0..=2 => hash_join(
                build,
                probe,
                &build_key,
                &probe_key,
                &probe_extra,
                threads,
                |row: &[u32], cols: &[usize]| -> u64 {
                    cols.iter()
                        .fold(0u64, |acc, &c| (acc << 32) | u64::from(row[c]))
                },
            ),
            3..=4 => hash_join(
                build,
                probe,
                &build_key,
                &probe_key,
                &probe_extra,
                threads,
                |row: &[u32], cols: &[usize]| -> u128 {
                    cols.iter()
                        .fold(0u128, |acc, &c| (acc << 32) | u128::from(row[c]))
                },
            ),
            _ => hash_join(
                build,
                probe,
                &build_key,
                &probe_key,
                &probe_extra,
                threads,
                |row: &[u32], cols: &[usize]| -> Box<[u32]> {
                    cols.iter().map(|&c| row[c]).collect()
                },
            ),
        };
        Relation::from_flat(schema, data)
    }

    /// Projection onto `columns` (with deduplication).
    ///
    /// # Panics
    /// Panics if a requested column is absent.
    pub fn project(&self, columns: &[u32]) -> Relation {
        if columns == self.schema {
            return self.clone();
        }
        let positions: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema
                    .iter()
                    .position(|x| x == c)
                    .unwrap_or_else(|| panic!("column {c} not in schema"))
            })
            .collect();
        if columns.is_empty() {
            return if self.len > 0 {
                Relation::unit()
            } else {
                Relation::empty()
            };
        }
        let mut data = Vec::with_capacity(self.len * columns.len());
        for row in self.rows() {
            data.extend(positions.iter().map(|&i| row[i]));
        }
        Relation::from_flat(columns.to_vec(), data)
    }

    /// Set union. Schemas must contain the same columns; `other` is
    /// reordered to match. Both sides are already sorted and
    /// deduplicated, so this is a single merge pass — no re-sort.
    ///
    /// # Panics
    /// Panics if a column of `self` is absent from `other`.
    pub fn union(&self, other: &Relation) -> Relation {
        let reordered;
        let other = if other.schema == self.schema {
            other
        } else {
            reordered = other.project(&self.schema);
            &reordered
        };
        if self.schema.is_empty() {
            return if self.len > 0 || other.len > 0 {
                Relation::unit()
            } else {
                Relation::empty()
            };
        }
        let arity = self.schema.len();
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        let mut len = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.len && j < other.len {
            let a = self.row(i);
            let b = other.row(j);
            match a.cmp(b) {
                std::cmp::Ordering::Less => {
                    data.extend_from_slice(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    data.extend_from_slice(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    data.extend_from_slice(a);
                    i += 1;
                    j += 1;
                }
            }
            len += 1;
        }
        if i < self.len {
            data.extend_from_slice(&self.data[i * arity..]);
            len += self.len - i;
        }
        if j < other.len {
            data.extend_from_slice(&other.data[j * arity..]);
            len += other.len - j;
        }
        Relation::from_sorted_flat(self.schema.clone(), len, data)
    }

    /// Cross product with a fresh column ranging over `0..domain`.
    /// Appending a trailing column with ascending values preserves the
    /// sorted order, so no re-sort happens.
    ///
    /// # Panics
    /// Panics if `column` is already in the schema.
    pub fn extend_with_domain(&self, column: u32, domain: usize) -> Relation {
        assert!(
            !self.schema.contains(&column),
            "column {column} already present"
        );
        let mut schema = self.schema.clone();
        schema.push(column);
        let mut data = Vec::with_capacity(self.len * domain * schema.len());
        for row in self.rows() {
            for x in 0..domain as u32 {
                data.extend_from_slice(row);
                data.push(x);
            }
        }
        Relation::from_sorted_flat(schema, self.len * domain, data)
    }

    /// Selection: keep rows where the given columns are equal. Filtering
    /// preserves the canonical order, so no re-sort happens.
    pub fn select_eq(&self, a: u32, b: u32) -> Relation {
        let pa = self.schema.iter().position(|&x| x == a).expect("column a");
        let pb = self.schema.iter().position(|&x| x == b).expect("column b");
        let mut data = Vec::new();
        let mut len = 0usize;
        for row in self.rows() {
            if row[pa] == row[pb] {
                data.extend_from_slice(row);
                len += 1;
            }
        }
        Relation::from_sorted_flat(self.schema.clone(), len, data)
    }
}

/// Iterator over a relation's rows as `&[u32]` slices.
#[derive(Clone)]
pub struct Rows<'a> {
    relation: &'a Relation,
    next: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        if self.next >= self.relation.len {
            return None;
        }
        let row = self.relation.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.relation.len - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a [u32];
    type IntoIter = Rows<'a>;

    fn into_iter(self) -> Rows<'a> {
        self.rows()
    }
}

/// Panics if `schema` repeats a column.
fn assert_distinct(schema: &[u32]) {
    let mut sorted = schema.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), schema.len(), "duplicate column in schema");
}

/// Sorts a flat row-major buffer lexicographically by row and drops
/// duplicate rows. Returns the surviving row count and buffer.
///
/// Rows of up to four columns pack into a single `u64`/`u128` whose
/// integer order *is* the lexicographic row order, so the common
/// arities sort machine words instead of comparing slices through an
/// index permutation.
fn sort_dedup_flat(arity: usize, mut data: Vec<u32>) -> (usize, Vec<u32>) {
    debug_assert!(arity > 0);
    match arity {
        1 => {
            data.sort_unstable();
            data.dedup();
            let len = data.len();
            (len, data)
        }
        2 => {
            let mut packed: Vec<u64> = data
                .chunks_exact(2)
                .map(|r| (u64::from(r[0]) << 32) | u64::from(r[1]))
                .collect();
            packed.sort_unstable();
            packed.dedup();
            data.clear();
            for p in &packed {
                data.push((p >> 32) as u32);
                data.push(*p as u32);
            }
            (packed.len(), data)
        }
        3 | 4 => {
            let mut packed: Vec<u128> = data
                .chunks_exact(arity)
                .map(|r| r.iter().fold(0u128, |acc, &v| (acc << 32) | u128::from(v)))
                .collect();
            packed.sort_unstable();
            packed.dedup();
            data.clear();
            for p in &packed {
                for c in (0..arity).rev() {
                    data.push((p >> (32 * c)) as u32);
                }
            }
            (packed.len(), data)
        }
        _ => {
            let n = data.len() / arity;
            let row = |i: usize| &data[i * arity..(i + 1) * arity];
            let mut perm: Vec<u32> = (0..n as u32).collect();
            perm.sort_unstable_by(|&a, &b| row(a as usize).cmp(row(b as usize)));
            let mut out = Vec::with_capacity(data.len());
            let mut len = 0usize;
            for &i in &perm {
                let r = row(i as usize);
                if len == 0 || out[(len - 1) * arity..] != *r {
                    out.extend_from_slice(r);
                    len += 1;
                }
            }
            (len, out)
        }
    }
}

/// A multiply-mix hasher for the join table's packed integer keys.
/// SipHash (the `HashMap` default) is measurable overhead when the key
/// is a single machine word hashed twice per probe row; join keys are
/// data values, not attacker-controlled input, so the DoS resistance
/// buys nothing here.
#[derive(Clone, Copy, Default)]
struct MixHasher(u64);

impl std::hash::Hasher for MixHasher {
    fn finish(&self) -> u64 {
        // Final avalanche (splitmix64's tail).
        let mut h = self.0;
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58476d1ce4e5b9);
        h ^= h >> 27;
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(0x9e3779b97f4a7c15);
    }

    fn write_u128(&mut self, x: u128) {
        self.write_u64(x as u64);
        self.write_u64((x >> 64) as u64);
    }

    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

type MixBuild = std::hash::BuildHasherDefault<MixHasher>;

/// The shared hash-join core, monomorphized over the packed key type:
/// builds a key → build-row-indices table from the smaller side, then
/// streams the probe side (optionally sharded across the pool) and
/// appends matched rows to one flat output buffer.
fn hash_join<K>(
    build: &Relation,
    probe: &Relation,
    build_key: &[usize],
    probe_key: &[usize],
    probe_extra: &[usize],
    threads: usize,
    key_of: impl Fn(&[u32], &[usize]) -> K + Sync,
) -> Vec<u32>
where
    K: std::hash::Hash + Eq + Send + Sync,
{
    let out_arity = build.arity() + probe_extra.len();
    let mut table: HashMap<K, Vec<u32>, MixBuild> =
        HashMap::with_capacity_and_hasher(build.len(), MixBuild::default());
    for (i, row) in build.rows().enumerate() {
        table
            .entry(key_of(row, build_key))
            .or_default()
            .push(i as u32);
    }
    let table = &table;
    let key_of = &key_of;
    let probe_shard = |range: std::ops::Range<usize>| -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for pi in range {
            let row = probe.row(pi);
            if let Some(matches) = table.get(&key_of(row, probe_key)) {
                out.reserve(matches.len() * out_arity);
                for &bi in matches {
                    out.extend_from_slice(build.row(bi as usize));
                    out.extend(probe_extra.iter().map(|&i| row[i]));
                }
            }
        }
        out
    };
    // Small probe sides are not worth the pool hop, and shards below
    // the minimum row count pay more in dispatch than they win in
    // overlap — cap the shard count so every shard keeps at least
    // PAR_JOIN_MIN_PROBE_ROWS rows.
    let max_shards = probe.len() / PAR_JOIN_MIN_PROBE_ROWS;
    if threads <= 1 || max_shards < 2 {
        return probe_shard(0..probe.len());
    }
    let shards = threads.saturating_mul(4).min(max_shards);
    let jobs: Vec<_> = epq_pool::split_ranges(probe.len() as u128, shards)
        .into_iter()
        .map(|(lo, hi)| {
            let probe_shard = &probe_shard;
            move || probe_shard(lo as usize..hi as usize)
        })
        .collect();
    let mut out = Vec::new();
    for partial in epq_pool::run_jobs(threads, jobs) {
        out.extend(partial);
    }
    out
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:?}", self.schema)?;
        for row in self.rows() {
            writeln!(f, "{row:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::new(schema.to_vec(), rows.iter().map(|r| r.to_vec()).collect())
    }

    fn row_vecs(r: &Relation) -> Vec<Vec<u32>> {
        r.rows().map(|row| row.to_vec()).collect()
    }

    #[test]
    fn rows_are_set_semantics() {
        let r = rel(&[0, 1], &[&[1, 2], &[0, 1], &[1, 2]]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0), &[0, 1]);
        assert_eq!(r.rows().len(), 2);
    }

    #[test]
    fn join_on_shared_column() {
        // R(x,y) ⋈ S(y,z)
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let s = rel(&[1, 2], &[&[2, 5], &[2, 6], &[9, 9]]);
        let j = r.join(&s);
        assert_eq!(j.schema(), &[0, 1, 2]);
        assert_eq!(row_vecs(&j), vec![vec![1, 2, 5], vec![1, 2, 6]]);
    }

    #[test]
    fn join_without_shared_columns_is_cross_product() {
        let r = rel(&[0], &[&[1], &[2]]);
        let s = rel(&[1], &[&[7], &[8]]);
        let j = r.join(&s);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn join_with_many_shared_columns_uses_wide_keys() {
        // Five shared columns exercise the boxed-key fallback; three
        // exercise the u128 path.
        for arity in [3usize, 5] {
            let schema: Vec<u32> = (0..arity as u32).collect();
            let rows: Vec<Vec<u32>> = (0..40u32)
                .map(|i| (0..arity as u32).map(|c| (i + c) % 7).collect())
                .collect();
            let r = Relation::new(schema.clone(), rows.clone());
            let s = Relation::new(schema.clone(), rows[..20].to_vec());
            let j = r.join(&s);
            assert_eq!(j.schema(), &schema[..]);
            assert_eq!(j, s.join(&r));
            // Self-join on the full schema is idempotent.
            assert_eq!(r.join(&r), r);
        }
    }

    #[test]
    fn parallel_join_is_bit_identical() {
        // Big enough to cross the sequential-fallback threshold.
        let r = Relation::new(
            vec![0, 1],
            (0..2048u32).map(|i| vec![i % 97, i % 61]).collect(),
        );
        let s = Relation::new(
            vec![1, 2],
            (0..2048u32).map(|i| vec![i % 61, i % 7]).collect(),
        );
        let sequential = r.join(&s);
        let swapped = s.join(&r);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(r.join_par(&s, threads), sequential, "threads = {threads}");
            assert_eq!(s.join_par(&r, threads), swapped, "swapped, {threads}");
        }
    }

    #[test]
    fn join_with_unit_and_empty() {
        let r = rel(&[0], &[&[1], &[2]]);
        assert_eq!(r.join(&Relation::unit()), r);
        assert!(r.join(&Relation::empty()).is_empty());
        assert_eq!(Relation::unit().join(&Relation::unit()), Relation::unit());
        assert!(Relation::unit().join(&Relation::empty()).is_empty());
    }

    #[test]
    fn projection_dedupes() {
        let r = rel(&[0, 1], &[&[1, 5], &[1, 6], &[2, 5]]);
        let p = r.project(&[0]);
        assert_eq!(row_vecs(&p), vec![vec![1], vec![2]]);
        // Projection onto the empty column list: unit iff nonempty.
        assert_eq!(r.project(&[]), Relation::unit());
        assert_eq!(
            Relation::new(vec![0], Vec::new()).project(&[]),
            Relation::empty()
        );
    }

    #[test]
    fn union_reorders_columns() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        let s = rel(&[1, 0], &[&[2, 1], &[9, 8]]);
        let u = r.union(&s);
        assert_eq!(u.len(), 2); // (1,2) merges with reordered (2,1)
        assert!(u.rows().any(|row| row == [8, 9]));
    }

    #[test]
    fn union_merges_sorted_sides() {
        let r = rel(&[0], &[&[1], &[3], &[5]]);
        let s = rel(&[0], &[&[0], &[3], &[9]]);
        let u = r.union(&s);
        assert_eq!(
            row_vecs(&u),
            vec![vec![0], vec![1], vec![3], vec![5], vec![9]]
        );
        assert_eq!(u, s.union(&r));
        // Nullary unions.
        assert_eq!(Relation::unit().union(&Relation::empty()), Relation::unit());
        assert_eq!(
            Relation::empty().union(&Relation::empty()),
            Relation::empty()
        );
    }

    #[test]
    fn domain_extension() {
        let r = rel(&[0], &[&[5]]);
        let e = r.extend_with_domain(3, 4);
        assert_eq!(e.len(), 4);
        assert_eq!(e.schema(), &[0, 3]);
    }

    #[test]
    fn select_eq_filters() {
        let r = rel(&[0, 1], &[&[1, 1], &[1, 2], &[3, 3]]);
        let s = r.select_eq(0, 1);
        assert_eq!(row_vecs(&s), vec![vec![1, 1], vec![3, 3]]);
    }

    #[test]
    fn renamed_keeps_rows() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let rows = row_vecs(&r);
        let n = r.renamed(vec![7, 9]);
        assert_eq!(n.schema(), &[7, 9]);
        assert_eq!(row_vecs(&n), rows);
    }

    #[test]
    fn wide_rows_sort_and_dedup() {
        // Arity 3 takes the permutation-sort path.
        let r = rel(
            &[0, 1, 2],
            &[&[2, 0, 0], &[1, 9, 9], &[1, 9, 9], &[1, 0, 3]],
        );
        assert_eq!(
            row_vecs(&r),
            vec![vec![1, 0, 3], vec![1, 9, 9], vec![2, 0, 0]]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_schema_panics() {
        let _ = rel(&[0, 0], &[]);
    }
}
