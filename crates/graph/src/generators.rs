//! Graph generators for test and benchmark families.

use crate::graph::Graph;
use rand::Rng;

/// The path P_n on `n` vertices (n−1 edges). Treewidth 1 for n ≥ 2.
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i as u32 - 1, i as u32);
    }
    g
}

/// The cycle C_n on `n ≥ 3` vertices. Treewidth 2.
pub fn cycle_graph(n: usize) -> Graph {
    assert!(n >= 3, "cycles need at least 3 vertices");
    let mut g = path_graph(n);
    g.add_edge(n as u32 - 1, 0);
    g
}

/// The complete graph K_n. Treewidth n−1.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            g.add_edge(i, j);
        }
    }
    g
}

/// The star K_{1,n}: center 0 with `n` leaves. Treewidth 1.
pub fn star_graph(leaves: usize) -> Graph {
    let mut g = Graph::new(leaves + 1);
    for i in 1..=leaves as u32 {
        g.add_edge(0, i);
    }
    g
}

/// The `rows × cols` grid. Treewidth min(rows, cols).
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(at(r, c), at(r + 1, c));
            }
        }
    }
    g
}

/// An Erdős–Rényi random graph G(n, p).
pub fn random_gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            if rng.gen_bool(p) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn family_sizes() {
        assert_eq!(path_graph(5).edge_count(), 4);
        assert_eq!(cycle_graph(5).edge_count(), 5);
        assert_eq!(complete_graph(5).edge_count(), 10);
        assert_eq!(star_graph(4).edge_count(), 4);
        assert_eq!(grid_graph(3, 4).edge_count(), 17);
    }

    #[test]
    fn grid_structure() {
        let g = grid_graph(2, 2);
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(1, 3) && g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(random_gnp(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(random_gnp(10, 1.0, &mut rng).edge_count(), 45);
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let g1 = random_gnp(20, 0.3, &mut StdRng::seed_from_u64(42));
        let g2 = random_gnp(20, 0.3, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
    }
}
