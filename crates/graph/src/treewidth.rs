//! Treewidth: exact computation, heuristic bounds, elimination orders.
//!
//! The trichotomy's two conditions (Section 2.4 of the paper) ask whether the
//! treewidth of (a) the cores and (b) the contract graphs of a query set is
//! bounded. Query graphs are *parameters* — small — so we compute treewidth
//! **exactly** by the Bodlaender–Fomin–Koster–Kratsch–Thilikos subset dynamic
//! program whenever a connected component has at most
//! [`EXACT_VERTEX_LIMIT`] vertices, and fall back to a
//! min-fill/min-degree upper bound paired with a degeneracy lower bound
//! otherwise, reporting an explicit [`TreewidthBound::Range`].
//!
//! Convention: widths are reported as `usize`, with the empty graph and
//! edgeless graphs having treewidth 0 (the mathematical −∞/0 distinction is
//! irrelevant for the classification thresholds).

use crate::decomposition::TreeDecomposition;
use crate::graph::Graph;
use std::collections::BTreeSet;

/// Components larger than this use heuristics instead of the exact
/// exponential DP (2^n states).
pub const EXACT_VERTEX_LIMIT: usize = 18;

/// Result of a treewidth computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreewidthBound {
    /// The treewidth is known exactly.
    Exact(usize),
    /// Only bounds are known: `lower ≤ tw ≤ upper`.
    Range {
        /// Degeneracy lower bound.
        lower: usize,
        /// Best heuristic elimination-order upper bound.
        upper: usize,
    },
}

impl TreewidthBound {
    /// The best known upper bound.
    pub fn upper(&self) -> usize {
        match *self {
            TreewidthBound::Exact(w) => w,
            TreewidthBound::Range { upper, .. } => upper,
        }
    }

    /// The best known lower bound.
    pub fn lower(&self) -> usize {
        match *self {
            TreewidthBound::Exact(w) => w,
            TreewidthBound::Range { lower, .. } => lower,
        }
    }

    /// Whether the bound is exact.
    pub fn is_exact(&self) -> bool {
        matches!(self, TreewidthBound::Exact(_))
    }
}

/// Computes the exact treewidth, or `None` when some connected component
/// exceeds [`EXACT_VERTEX_LIMIT`] vertices.
pub fn treewidth_exact(g: &Graph) -> Option<usize> {
    let mut width = 0;
    for comp in g.connected_components() {
        if comp.len() > EXACT_VERTEX_LIMIT {
            return None;
        }
        let (sub, _) = g.induced_subgraph(&comp);
        width = width.max(treewidth_exact_connected(&sub));
    }
    Some(width)
}

/// Computes the exact treewidth together with an optimal elimination order
/// (for the whole graph), or `None` when too large for the exact DP.
pub fn optimal_elimination_order(g: &Graph) -> Option<(Vec<u32>, usize)> {
    let mut order = Vec::with_capacity(g.vertex_count());
    let mut width = 0;
    for comp in g.connected_components() {
        if comp.len() > EXACT_VERTEX_LIMIT {
            return None;
        }
        let (sub, map) = g.induced_subgraph(&comp);
        let (sub_order, w) = optimal_elimination_order_connected(&sub);
        width = width.max(w);
        order.extend(sub_order.into_iter().map(|v| map[v as usize]));
    }
    Some((order, width))
}

/// Returns the best available bound: exact for small components, a
/// `(degeneracy, min(min-fill, min-degree))` range otherwise.
pub fn treewidth_bound(g: &Graph) -> TreewidthBound {
    if let Some(w) = treewidth_exact(g) {
        return TreewidthBound::Exact(w);
    }
    let lower = g.degeneracy_ordering().1;
    let upper = elimination_order_width(g, &min_fill_order(g))
        .min(elimination_order_width(g, &min_degree_order(g)));
    if lower == upper {
        TreewidthBound::Exact(lower)
    } else {
        TreewidthBound::Range { lower, upper }
    }
}

/// Subset DP over a single connected component (≤ [`EXACT_VERTEX_LIMIT`]
/// vertices): `f(S) = min_{v∈S} max(f(S∖{v}), |Q(S∖{v}, v)|)` where
/// `Q(S, v)` is the set of vertices outside `S ∪ {v}` reachable from `v`
/// via paths whose internal vertices lie in `S`. Then `tw = f(V)`.
fn treewidth_exact_connected(g: &Graph) -> usize {
    let table = exact_dp_table(g);
    let n = g.vertex_count();
    table[(1usize << n) - 1] as usize
}

fn optimal_elimination_order_connected(g: &Graph) -> (Vec<u32>, usize) {
    let table = exact_dp_table(g);
    let n = g.vertex_count();
    let full = (1usize << n) - 1;
    let width = table[full] as usize;
    // Walk the table back down: the vertex achieving the minimum at S is
    // eliminated *last* among S.
    let mut order = vec![0u32; n];
    let mut s = full;
    while s != 0 {
        let popcount = s.count_ones() as usize;
        let mut chosen = None;
        for v in 0..n {
            if s & (1 << v) == 0 {
                continue;
            }
            let without = s & !(1 << v);
            let cost = table[without].max(back_degree(g, without, v) as u8);
            if cost == table[s] {
                chosen = Some(v);
                break;
            }
        }
        let v = chosen.expect("DP table is consistent");
        order[popcount - 1] = v as u32;
        s &= !(1 << v);
    }
    (order, width)
}

fn exact_dp_table(g: &Graph) -> Vec<u8> {
    let n = g.vertex_count();
    assert!(
        n <= EXACT_VERTEX_LIMIT,
        "graph too large for exact treewidth DP"
    );
    if n == 0 {
        return vec![0];
    }
    let size = 1usize << n;
    let mut table = vec![0u8; size];
    for s in 1..size {
        let mut best = u8::MAX;
        let mut bits = s;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let without = s & !(1 << v);
            let cost = table[without].max(back_degree(g, without, v) as u8);
            best = best.min(cost);
        }
        table[s] = best;
    }
    table
}

/// |Q(S, v)|: vertices outside `S ∪ {v}` reachable from `v` through `S`.
fn back_degree(g: &Graph, s: usize, v: usize) -> usize {
    let n = g.vertex_count();
    let mut visited = 0usize; // vertices of S already traversed
    let mut counted = 0usize; // outside vertices already counted (bitmask)
    let mut count = 0;
    let mut stack = vec![v as u32];
    let v_bit = 1usize << v;
    while let Some(u) = stack.pop() {
        for &w in g.neighbors(u) {
            let wb = 1usize << w;
            if wb == v_bit {
                continue;
            }
            if s & wb != 0 {
                if visited & wb == 0 {
                    visited |= wb;
                    stack.push(w);
                }
            } else if counted & wb == 0 {
                counted |= wb;
                count += 1;
            }
        }
    }
    debug_assert!(count < n);
    count
}

/// The width of the given elimination `order` on `g` (max back-degree in the
/// fill-in simulation). This is an upper bound on treewidth for any order and
/// equals treewidth for an optimal order.
pub fn elimination_order_width(g: &Graph, order: &[u32]) -> usize {
    assert_eq!(
        order.len(),
        g.vertex_count(),
        "order must cover all vertices"
    );
    let mut adjacency: Vec<BTreeSet<u32>> = (0..g.vertex_count())
        .map(|v| g.neighbors(v as u32).clone())
        .collect();
    let mut eliminated = vec![false; g.vertex_count()];
    let mut width = 0;
    for &v in order {
        let neighbors: Vec<u32> = adjacency[v as usize]
            .iter()
            .copied()
            .filter(|&w| !eliminated[w as usize])
            .collect();
        width = width.max(neighbors.len());
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                adjacency[a as usize].insert(b);
                adjacency[b as usize].insert(a);
            }
        }
        eliminated[v as usize] = true;
    }
    width
}

/// Greedy min-fill elimination order (a strong treewidth upper-bound
/// heuristic): repeatedly eliminate the vertex whose elimination adds the
/// fewest fill edges.
pub fn min_fill_order(g: &Graph) -> Vec<u32> {
    greedy_order(g, |adj, eliminated, v| {
        let neighbors: Vec<u32> = adj[v as usize]
            .iter()
            .copied()
            .filter(|&w| !eliminated[w as usize])
            .collect();
        let mut fill = 0usize;
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if !adj[a as usize].contains(&b) {
                    fill += 1;
                }
            }
        }
        fill
    })
}

/// Greedy min-degree elimination order (a fast treewidth upper-bound
/// heuristic).
pub fn min_degree_order(g: &Graph) -> Vec<u32> {
    greedy_order(g, |adj, eliminated, v| {
        adj[v as usize]
            .iter()
            .filter(|&&w| !eliminated[w as usize])
            .count()
    })
}

fn greedy_order(g: &Graph, score: impl Fn(&[BTreeSet<u32>], &[bool], u32) -> usize) -> Vec<u32> {
    let n = g.vertex_count();
    let mut adjacency: Vec<BTreeSet<u32>> = (0..n).map(|v| g.neighbors(v as u32).clone()).collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n as u32)
            .filter(|&v| !eliminated[v as usize])
            .min_by_key(|&v| score(&adjacency, &eliminated, v))
            .expect("vertex remains");
        let neighbors: Vec<u32> = adjacency[v as usize]
            .iter()
            .copied()
            .filter(|&w| !eliminated[w as usize])
            .collect();
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                adjacency[a as usize].insert(b);
                adjacency[b as usize].insert(a);
            }
        }
        eliminated[v as usize] = true;
        order.push(v);
    }
    order
}

/// Builds a valid tree decomposition from an elimination order by the
/// standard fill-in construction. The resulting width equals
/// [`elimination_order_width`] (clamped to ≥ 0 bag sizes).
pub fn decomposition_from_elimination_order(g: &Graph, order: &[u32]) -> TreeDecomposition {
    let n = g.vertex_count();
    assert_eq!(order.len(), n, "order must cover all vertices");
    if n == 0 {
        return TreeDecomposition::new(vec![BTreeSet::new()], vec![]);
    }
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v as usize] = i;
    }
    let mut adjacency: Vec<BTreeSet<u32>> = (0..n).map(|v| g.neighbors(v as u32).clone()).collect();
    let mut bags: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    // Eliminate in order; bag i (for order[i]) = {v} ∪ later neighbors.
    for (i, &v) in order.iter().enumerate() {
        let later: Vec<u32> = adjacency[v as usize]
            .iter()
            .copied()
            .filter(|&w| position[w as usize] > i)
            .collect();
        let mut bag: BTreeSet<u32> = later.iter().copied().collect();
        bag.insert(v);
        bags[i] = bag;
        for (a_idx, &a) in later.iter().enumerate() {
            for &b in &later[a_idx + 1..] {
                adjacency[a as usize].insert(b);
                adjacency[b as usize].insert(a);
            }
        }
    }
    // Bag i's parent is the bag of the earliest-eliminated later neighbor.
    let mut edges = Vec::new();
    for (i, &v) in order.iter().enumerate() {
        let parent = bags[i]
            .iter()
            .filter(|&&w| w != v)
            .map(|&w| position[w as usize])
            .min();
        match parent {
            Some(p) => edges.push((i, p)),
            None => {
                // v's bag is a singleton: attach anywhere to keep a tree.
                if i + 1 < n {
                    edges.push((i, i + 1));
                }
            }
        }
    }
    TreeDecomposition::new(bags, edges)
}

/// Best available tree decomposition: optimal for small graphs, best
/// heuristic otherwise. Always valid for `g`.
pub fn best_decomposition(g: &Graph) -> TreeDecomposition {
    let order = match optimal_elimination_order(g) {
        Some((order, _)) => order,
        None => {
            let mf = min_fill_order(g);
            let md = min_degree_order(g);
            if elimination_order_width(g, &mf) <= elimination_order_width(g, &md) {
                mf
            } else {
                md
            }
        }
    };
    decomposition_from_elimination_order(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn trees_have_treewidth_one() {
        let star = generators::star_graph(6);
        assert_eq!(treewidth_exact(&star), Some(1));
        let path = generators::path_graph(8);
        assert_eq!(treewidth_exact(&path), Some(1));
    }

    #[test]
    fn cycles_have_treewidth_two() {
        for n in 3..8 {
            assert_eq!(
                treewidth_exact(&generators::cycle_graph(n)),
                Some(2),
                "C_{n}"
            );
        }
    }

    #[test]
    fn cliques_have_treewidth_k_minus_one() {
        for k in 1..7 {
            assert_eq!(
                treewidth_exact(&generators::complete_graph(k)),
                Some(k - 1),
                "K_{k}"
            );
        }
    }

    #[test]
    fn grids_have_treewidth_min_dimension() {
        assert_eq!(treewidth_exact(&generators::grid_graph(2, 3)), Some(2));
        assert_eq!(treewidth_exact(&generators::grid_graph(3, 3)), Some(3));
        assert_eq!(treewidth_exact(&generators::grid_graph(3, 4)), Some(3));
    }

    #[test]
    fn edgeless_and_empty() {
        assert_eq!(treewidth_exact(&Graph::new(0)), Some(0));
        assert_eq!(treewidth_exact(&Graph::new(5)), Some(0));
    }

    #[test]
    fn disconnected_takes_max() {
        // K4 plus a path: tw = 3.
        let mut g = Graph::new(8);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                g.add_edge(i, j);
            }
        }
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        g.add_edge(6, 7);
        assert_eq!(treewidth_exact(&g), Some(3));
    }

    #[test]
    fn optimal_order_achieves_exact_width() {
        for g in [
            generators::cycle_graph(6),
            generators::grid_graph(3, 3),
            generators::complete_graph(5),
        ] {
            let (order, w) = optimal_elimination_order(&g).unwrap();
            assert_eq!(elimination_order_width(&g, &order), w);
            assert_eq!(Some(w), treewidth_exact(&g));
        }
    }

    #[test]
    fn heuristics_bracket_exact() {
        let g = generators::grid_graph(3, 4);
        let exact = treewidth_exact(&g).unwrap();
        let upper = elimination_order_width(&g, &min_fill_order(&g));
        let lower = g.degeneracy_ordering().1;
        assert!(lower <= exact && exact <= upper);
    }

    #[test]
    fn decomposition_from_order_is_valid_and_tight() {
        let g = generators::grid_graph(3, 3);
        let (order, w) = optimal_elimination_order(&g).unwrap();
        let td = decomposition_from_elimination_order(&g, &order);
        assert!(td.is_valid_for(&g));
        assert_eq!(td.width(), w);
    }

    #[test]
    fn best_decomposition_valid_on_families() {
        for g in [
            Graph::new(0),
            Graph::new(3),
            generators::path_graph(5),
            generators::cycle_graph(7),
            generators::complete_graph(4),
            generators::grid_graph(2, 4),
        ] {
            let td = best_decomposition(&g);
            assert!(td.is_valid_for(&g), "invalid decomposition for {:?}", g);
        }
    }

    #[test]
    fn bound_collapses_to_exact_for_small() {
        let g = generators::cycle_graph(5);
        assert_eq!(treewidth_bound(&g), TreewidthBound::Exact(2));
    }
}
