//! Tree decompositions and nice tree decompositions.
//!
//! Tree decompositions underpin both counting algorithms used by the
//! reproduction: the quantifier-free #hom dynamic program (Dalmau–Jonsson
//! style) and the full FPT counting algorithm of \[CM15\] that the paper's
//! trichotomy invokes as a black box. The *nice* form (leaf / introduce /
//! forget / join nodes) is what the dynamic programs actually traverse.

use crate::graph::Graph;
use std::collections::BTreeSet;

/// A tree decomposition: bags plus tree edges over bag indices.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    bags: Vec<BTreeSet<u32>>,
    /// Undirected tree edges between bag indices.
    edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// Builds a decomposition from bags and tree edges.
    pub fn new(bags: Vec<BTreeSet<u32>>, edges: Vec<(usize, usize)>) -> Self {
        TreeDecomposition { bags, edges }
    }

    /// The bags.
    pub fn bags(&self) -> &[BTreeSet<u32>] {
        &self.bags
    }

    /// The tree edges (bag index pairs).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Width = (largest bag size) − 1, clamped to 0 for all-empty bags.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Validates the three tree-decomposition conditions for `g`:
    /// every vertex occurs in a bag, every edge is inside some bag, and each
    /// vertex's bags form a connected subtree. Also checks the edge set
    /// actually forms a tree (or forest with one component when nonempty).
    pub fn is_valid_for(&self, g: &Graph) -> bool {
        let k = self.bags.len();
        if k == 0 {
            return g.vertex_count() == 0;
        }
        // Tree shape: connected and acyclic over bag indices.
        if self.edges.len() + 1 != k {
            return false;
        }
        let mut adj = vec![Vec::new(); k];
        for &(a, b) in &self.edges {
            if a >= k || b >= k || a == b {
                return false;
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; k];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 0;
        while let Some(x) = stack.pop() {
            visited += 1;
            for &y in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
        if visited != k {
            return false;
        }
        // Vertex coverage.
        for v in 0..g.vertex_count() as u32 {
            if !self.bags.iter().any(|b| b.contains(&v)) {
                return false;
            }
        }
        // Edge coverage.
        for (u, v) in g.edges() {
            if !self.bags.iter().any(|b| b.contains(&u) && b.contains(&v)) {
                return false;
            }
        }
        // Connectivity of each vertex's occurrence set.
        for v in 0..g.vertex_count() as u32 {
            let holders: Vec<usize> = (0..k).filter(|&i| self.bags[i].contains(&v)).collect();
            if holders.is_empty() {
                return false;
            }
            let holder_set: BTreeSet<usize> = holders.iter().copied().collect();
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            let mut stack = vec![holders[0]];
            seen.insert(holders[0]);
            while let Some(x) = stack.pop() {
                for &y in &adj[x] {
                    if holder_set.contains(&y) && seen.insert(y) {
                        stack.push(y);
                    }
                }
            }
            if seen.len() != holders.len() {
                return false;
            }
        }
        true
    }
}

/// The kind of a node in a nice tree decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NiceNode {
    /// A leaf with an empty bag.
    Leaf,
    /// Introduces `vertex` on top of `child` (bag = child's bag ∪ {vertex}).
    Introduce {
        /// The introduced vertex.
        vertex: u32,
        /// Child node index.
        child: usize,
    },
    /// Forgets `vertex` (bag = child's bag ∖ {vertex}).
    Forget {
        /// The forgotten vertex.
        vertex: u32,
        /// Child node index.
        child: usize,
    },
    /// Joins two children with identical bags (equal to this node's bag).
    Join {
        /// Left child node index.
        left: usize,
        /// Right child node index.
        right: usize,
    },
}

/// A nice tree decomposition: rooted, empty bag at root and leaves, and
/// every internal node is an introduce, forget, or join node.
#[derive(Clone, Debug)]
pub struct NiceTreeDecomposition {
    nodes: Vec<NiceNode>,
    bags: Vec<BTreeSet<u32>>,
    root: usize,
}

impl NiceTreeDecomposition {
    /// The node list (children precede parents).
    pub fn nodes(&self) -> &[NiceNode] {
        &self.nodes
    }

    /// The bag of node `i`.
    pub fn bag(&self, i: usize) -> &BTreeSet<u32> {
        &self.bags[i]
    }

    /// The root node index (its bag is empty).
    pub fn root(&self) -> usize {
        self.root
    }

    /// Width = (largest bag size) − 1, clamped to 0.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether there are no nodes (never true for well-formed instances).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Converts an arbitrary tree decomposition into nice form.
    ///
    /// The result covers the same bags (hence stays valid for the same
    /// graph) and has the same width. The root bag is empty, leaves have
    /// empty bags, and join children duplicate their parent's bag.
    pub fn from_tree_decomposition(td: &TreeDecomposition) -> Self {
        let k = td.bags().len();
        assert!(k > 0, "cannot build a nice decomposition from zero bags");
        let mut adj = vec![Vec::new(); k];
        for &(a, b) in td.edges() {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut builder = NiceBuilder {
            nodes: Vec::new(),
            bags: Vec::new(),
        };
        let top = builder.build_subtree(td, &adj, 0, usize::MAX);
        // Forget everything remaining in the root bag.
        let mut current = top;
        let root_bag: Vec<u32> = builder.bags[top].iter().copied().collect();
        for v in root_bag {
            current = builder.push_forget(v, current);
        }
        NiceTreeDecomposition {
            nodes: builder.nodes,
            bags: builder.bags,
            root: current,
        }
    }

    /// Validates structural well-formedness: bag algebra of each node kind,
    /// children preceding parents, empty root bag, and that each vertex's
    /// occurrence set is connected in the rooted tree.
    pub fn is_well_formed(&self) -> bool {
        if !self.bags[self.root].is_empty() {
            return false;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                NiceNode::Leaf => {
                    if !self.bags[i].is_empty() {
                        return false;
                    }
                }
                NiceNode::Introduce { vertex, child } => {
                    if *child >= i || self.bags[*child].contains(vertex) {
                        return false;
                    }
                    let mut expect = self.bags[*child].clone();
                    expect.insert(*vertex);
                    if self.bags[i] != expect {
                        return false;
                    }
                }
                NiceNode::Forget { vertex, child } => {
                    if *child >= i || !self.bags[*child].contains(vertex) {
                        return false;
                    }
                    let mut expect = self.bags[*child].clone();
                    expect.remove(vertex);
                    if self.bags[i] != expect {
                        return false;
                    }
                }
                NiceNode::Join { left, right } => {
                    if *left >= i || *right >= i {
                        return false;
                    }
                    if self.bags[*left] != self.bags[i] || self.bags[*right] != self.bags[i] {
                        return false;
                    }
                }
            }
        }
        true
    }
}

struct NiceBuilder {
    nodes: Vec<NiceNode>,
    bags: Vec<BTreeSet<u32>>,
}

impl NiceBuilder {
    fn push(&mut self, node: NiceNode, bag: BTreeSet<u32>) -> usize {
        self.nodes.push(node);
        self.bags.push(bag);
        self.nodes.len() - 1
    }

    fn push_forget(&mut self, v: u32, child: usize) -> usize {
        let mut bag = self.bags[child].clone();
        bag.remove(&v);
        self.push(NiceNode::Forget { vertex: v, child }, bag)
    }

    fn push_introduce(&mut self, v: u32, child: usize) -> usize {
        let mut bag = self.bags[child].clone();
        bag.insert(v);
        self.push(NiceNode::Introduce { vertex: v, child }, bag)
    }

    /// Builds the nice subtree for decomposition node `node` and returns
    /// the index of a nice node whose bag equals `td.bags()[node]`.
    fn build_subtree(
        &mut self,
        td: &TreeDecomposition,
        adj: &[Vec<usize>],
        node: usize,
        parent: usize,
    ) -> usize {
        let target = &td.bags()[node];
        let children: Vec<usize> = adj[node].iter().copied().filter(|&c| c != parent).collect();
        if children.is_empty() {
            // Leaf: introduce the bag vertex by vertex from an empty leaf.
            let mut current = self.push(NiceNode::Leaf, BTreeSet::new());
            for &v in target {
                current = self.push_introduce(v, current);
            }
            return current;
        }
        // Adapt each child's top (bag = child bag) to this node's bag:
        // forget child∖target, then introduce target∖child.
        let mut tops = Vec::with_capacity(children.len());
        for c in children {
            let mut current = self.build_subtree(td, adj, c, node);
            let to_forget: Vec<u32> = self.bags[current].difference(target).copied().collect();
            for v in to_forget {
                current = self.push_forget(v, current);
            }
            let to_introduce: Vec<u32> = target.difference(&self.bags[current]).copied().collect();
            for v in to_introduce {
                current = self.push_introduce(v, current);
            }
            debug_assert_eq!(&self.bags[current], target);
            tops.push(current);
        }
        // Fold with binary joins.
        let mut current = tops[0];
        for &t in &tops[1..] {
            current = self.push(
                NiceNode::Join {
                    left: current,
                    right: t,
                },
                target.clone(),
            );
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::treewidth;

    fn bag(vs: &[u32]) -> BTreeSet<u32> {
        vs.iter().copied().collect()
    }

    #[test]
    fn valid_decomposition_of_path() {
        let g = generators::path_graph(4); // 0-1-2-3
        let td = TreeDecomposition::new(
            vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])],
            vec![(0, 1), (1, 2)],
        );
        assert!(td.is_valid_for(&g));
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn missing_edge_coverage_is_invalid() {
        let g = generators::cycle_graph(3);
        let td = TreeDecomposition::new(
            vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 0])],
            vec![(0, 1), (1, 2)],
        );
        // Every edge IS covered, but vertex 0 appears in bags {0, 2} which
        // are not adjacent: connectivity fails.
        assert!(!td.is_valid_for(&g));
    }

    #[test]
    fn cyclic_bag_graph_is_invalid() {
        let g = generators::path_graph(3);
        let td = TreeDecomposition::new(
            vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[1])],
            vec![(0, 1), (1, 2), (2, 0)],
        );
        assert!(!td.is_valid_for(&g));
    }

    #[test]
    fn nice_conversion_preserves_width_and_is_well_formed() {
        for g in [
            generators::path_graph(6),
            generators::cycle_graph(5),
            generators::grid_graph(3, 3),
            generators::complete_graph(4),
        ] {
            let td = treewidth::best_decomposition(&g);
            let nice = NiceTreeDecomposition::from_tree_decomposition(&td);
            assert!(nice.is_well_formed());
            assert_eq!(nice.width(), td.width());
            assert!(nice.bag(nice.root()).is_empty());
        }
    }

    #[test]
    fn nice_conversion_covers_all_vertices_via_introduces() {
        let g = generators::grid_graph(2, 3);
        let td = treewidth::best_decomposition(&g);
        let nice = NiceTreeDecomposition::from_tree_decomposition(&td);
        let mut introduced: BTreeSet<u32> = BTreeSet::new();
        for node in nice.nodes() {
            if let NiceNode::Introduce { vertex, .. } = node {
                introduced.insert(*vertex);
            }
        }
        assert_eq!(introduced.len(), g.vertex_count());
    }

    #[test]
    fn singleton_graph_nice_decomposition() {
        let g = Graph::new(1);
        let td = treewidth::best_decomposition(&g);
        assert!(td.is_valid_for(&g));
        let nice = NiceTreeDecomposition::from_tree_decomposition(&td);
        assert!(nice.is_well_formed());
    }

    use crate::graph::Graph;
}
