//! # epq-graph — graphs, treewidth, and tree decompositions
//!
//! Substrate crate S2 of the `epq` workspace (see `DESIGN.md`).
//!
//! The complexity classification of Chen & Mengel is stated in terms of
//! graph-theoretic measures of queries:
//!
//! * the *graph of a pp-formula* (Section 2.1 "Graphs") — vertices are the
//!   formula's variables, edges join variables co-occurring in an atom;
//! * *connected components* of that graph (used for the component product
//!   law |φ(B)| = Π |φᵢ(B)| and the liberal part φ̂);
//! * *∃-components* and the *contract graph* contract(A, S) (Section 2.4),
//!   whose **treewidth** decides the contraction condition;
//! * the treewidth of *cores*, which decides the tractability condition;
//! * the **clique problem**, the hardness anchor of the trichotomy.
//!
//! This crate supplies all of it: a compact undirected [`Graph`], connected
//! components, clique decision/counting/maximum ([`cliques`]), exact and
//! heuristic treewidth ([`treewidth`]), tree decompositions and *nice* tree
//! decompositions with validity checking ([`decomposition`]), and graph
//! generators for the benchmark families ([`generators`]).

pub mod cliques;
pub mod decomposition;
pub mod generators;
pub mod graph;
pub mod treewidth;

pub use decomposition::{NiceNode, NiceTreeDecomposition, TreeDecomposition};
pub use graph::Graph;
pub use treewidth::{treewidth_bound, treewidth_exact, TreewidthBound};
