//! A compact, simple, undirected graph.

use std::collections::BTreeSet;
use std::fmt;

/// A simple undirected graph on vertices `0..n` with sorted adjacency sets.
///
/// No self-loops, no multi-edges. Vertices are `u32` indices so they can be
/// shared with the universe indices of relational structures.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<BTreeSet<u32>>,
}

impl Graph {
    /// An empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adjacency: vec![BTreeSet::new(); n],
        }
    }

    /// Builds a graph on `n` vertices from an edge list (self-loops and
    /// duplicates are ignored).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Adds the edge `{u, v}` (ignores self-loops; idempotent).
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(
            (u as usize) < self.vertex_count(),
            "vertex {u} out of range"
        );
        assert!(
            (v as usize) < self.vertex_count(),
            "vertex {v} out of range"
        );
        if u == v {
            return;
        }
        self.adjacency[u as usize].insert(v);
        self.adjacency[v as usize].insert(u);
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adjacency
            .get(u as usize)
            .is_some_and(|a| a.contains(&v))
    }

    /// The sorted neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &BTreeSet<u32> {
        &self.adjacency[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adjacency[v as usize].len()
    }

    /// Iterator over all edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, a)| {
            a.iter()
                .filter(move |&&v| (u as u32) < v)
                .map(move |&v| (u as u32, v))
        })
    }

    /// The subgraph induced by `vertices`, together with the mapping from new
    /// vertex index to old vertex index.
    pub fn induced_subgraph(&self, vertices: &[u32]) -> (Graph, Vec<u32>) {
        let mut index_of = vec![u32::MAX; self.vertex_count()];
        for (new, &old) in vertices.iter().enumerate() {
            index_of[old as usize] = new as u32;
        }
        let mut g = Graph::new(vertices.len());
        for (new, &old) in vertices.iter().enumerate() {
            for &w in self.neighbors(old) {
                let wn = index_of[w as usize];
                if wn != u32::MAX {
                    g.add_edge(new as u32, wn);
                }
            }
        }
        (g, vertices.to_vec())
    }

    /// Connected components, each a sorted vertex list; components are
    /// ordered by their smallest vertex.
    pub fn connected_components(&self) -> Vec<Vec<u32>> {
        let n = self.vertex_count();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start as u32];
            seen[start] = true;
            let mut comp = Vec::new();
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Whether `vertices` forms a clique.
    pub fn is_clique(&self, vertices: &[u32]) -> bool {
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                if u != v && !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// A degeneracy ordering (repeatedly remove a minimum-degree vertex) and
    /// the degeneracy (the maximum degree seen at removal time — a lower
    /// bound on treewidth).
    pub fn degeneracy_ordering(&self) -> (Vec<u32>, usize) {
        let n = self.vertex_count();
        let mut degree: Vec<usize> = (0..n).map(|v| self.degree(v as u32)).collect();
        let mut removed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut degeneracy = 0;
        for _ in 0..n {
            let v = (0..n)
                .filter(|&v| !removed[v])
                .min_by_key(|&v| degree[v])
                .expect("vertex remains");
            degeneracy = degeneracy.max(degree[v]);
            removed[v] = true;
            order.push(v as u32);
            for &w in self.neighbors(v as u32) {
                if !removed[w as usize] {
                    degree[w as usize] -= 1;
                }
            }
        }
        (order, degeneracy)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, edges={:?})",
            self.vertex_count(),
            self.edges().collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_symmetric_and_deduped() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2); // self-loop ignored
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3], vec![4, 5]]);
        assert!(!g.is_connected());
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (sub, map) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(map, vec![0, 1, 3]);
        assert_eq!(sub.edge_count(), 1); // only {0,1} survives
        assert!(sub.has_edge(0, 1));
    }

    #[test]
    fn clique_predicate() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
        assert!(g.is_clique(&[2]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn degeneracy_of_known_graphs() {
        // A tree has degeneracy 1.
        let tree = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert_eq!(tree.degeneracy_ordering().1, 1);
        // A cycle has degeneracy 2.
        let cyc = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(cyc.degeneracy_ordering().1, 2);
        // K4 has degeneracy 3.
        let k4 = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(k4.degeneracy_ordering().1, 3);
    }

    #[test]
    fn edge_iterator_is_canonical() {
        let g = Graph::from_edges(3, &[(2, 1), (0, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 2), (1, 2)]);
    }
}
