//! Clique decision, counting, and maximum clique.
//!
//! `Clique` and `#Clique` are the hardness anchors of the paper's trichotomy
//! (Section 2.2): case (2) problems are interreducible with the clique
//! decision problem, case (3) problems are at least as hard as counting
//! cliques. The benchmark harness uses these direct graph algorithms as the
//! baseline that query-based counting is compared against.
//!
//! The implementations use a degeneracy ordering plus per-vertex bitsets:
//! for each vertex `v` taken in degeneracy order, cliques containing `v` as
//! their order-minimum are enumerated inside `v`'s forward neighborhood,
//! which has size at most the degeneracy.

use crate::graph::Graph;

/// Fixed-size bitset over graph vertices.
#[derive(Clone)]
struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    fn new(n: usize) -> Self {
        Bitset {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn insert(&mut self, v: u32) {
        self.words[v as usize / 64] |= 1 << (v % 64);
    }

    fn intersect_with(&mut self, other: &Bitset) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(i as u32 * 64 + b)
                }
            })
        })
    }
}

fn adjacency_bitsets(g: &Graph) -> Vec<Bitset> {
    let n = g.vertex_count();
    let mut rows = vec![Bitset::new(n); n];
    for (u, v) in g.edges() {
        rows[u as usize].insert(v);
        rows[v as usize].insert(u);
    }
    rows
}

/// Counts the k-cliques of `g` exactly.
///
/// Runs in `O(n · d^(k-1))` where `d` is the degeneracy; counts fit `u128`
/// for every graph this workspace can hold in memory.
pub fn count_k_cliques(g: &Graph, k: usize) -> u128 {
    if k == 0 {
        return 1; // the empty clique
    }
    if k == 1 {
        return g.vertex_count() as u128;
    }
    let adj = adjacency_bitsets(g);
    let (order, _) = g.degeneracy_ordering();
    let mut rank = vec![0usize; g.vertex_count()];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i;
    }
    let mut total = 0u128;
    for &v in &order {
        // Forward neighborhood of v in degeneracy order.
        let mut candidates = Bitset::new(g.vertex_count());
        for w in adj[v as usize].iter() {
            if rank[w as usize] > rank[v as usize] {
                candidates.insert(w);
            }
        }
        total += count_cliques_within(&adj, &candidates, k - 1);
    }
    total
}

/// Counts cliques of size `k` fully inside `candidates` (all pairwise
/// adjacency still needs checking — `candidates` is just the allowed pool).
fn count_cliques_within(adj: &[Bitset], candidates: &Bitset, k: usize) -> u128 {
    if k == 0 {
        return 1;
    }
    if candidates.count() < k {
        return 0;
    }
    if k == 1 {
        return candidates.count() as u128;
    }
    let mut total = 0u128;
    for v in candidates.iter() {
        let mut next = candidates.clone();
        next.intersect_with(&adj[v as usize]);
        // Restrict to vertices after v to avoid double counting: clear bits ≤ v.
        clear_up_to(&mut next, v);
        total += count_cliques_within(adj, &next, k - 1);
    }
    total
}

fn clear_up_to(bs: &mut Bitset, v: u32) {
    let word = v as usize / 64;
    for w in bs.words.iter_mut().take(word) {
        *w = 0;
    }
    let keep_from = v % 64 + 1;
    if keep_from == 64 {
        bs.words[word] = 0;
    } else {
        bs.words[word] &= !((1u64 << keep_from) - 1);
    }
}

/// Decides whether `g` has a clique of size `k`.
pub fn has_k_clique(g: &Graph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    if k == 1 {
        return g.vertex_count() > 0;
    }
    let adj = adjacency_bitsets(g);
    let (order, degeneracy) = g.degeneracy_ordering();
    if k > degeneracy + 1 {
        return false; // a k-clique forces degeneracy ≥ k−1
    }
    let mut rank = vec![0usize; g.vertex_count()];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i;
    }
    for &v in &order {
        let mut candidates = Bitset::new(g.vertex_count());
        for w in adj[v as usize].iter() {
            if rank[w as usize] > rank[v as usize] {
                candidates.insert(w);
            }
        }
        if exists_clique_within(&adj, &candidates, k - 1) {
            return true;
        }
    }
    false
}

fn exists_clique_within(adj: &[Bitset], candidates: &Bitset, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    if candidates.count() < k {
        return false;
    }
    if k == 1 {
        return true;
    }
    for v in candidates.iter() {
        let mut next = candidates.clone();
        next.intersect_with(&adj[v as usize]);
        clear_up_to(&mut next, v);
        if exists_clique_within(adj, &next, k - 1) {
            return true;
        }
    }
    false
}

/// Finds a maximum clique (returned as a sorted vertex list) by
/// branch-and-bound over the degeneracy ordering.
pub fn max_clique(g: &Graph) -> Vec<u32> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let adj = adjacency_bitsets(g);
    let (order, _) = g.degeneracy_ordering();
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i;
    }
    let mut best: Vec<u32> = Vec::new();
    let mut current: Vec<u32> = Vec::new();
    for &v in &order {
        let mut candidates = Bitset::new(n);
        for w in adj[v as usize].iter() {
            if rank[w as usize] > rank[v as usize] {
                candidates.insert(w);
            }
        }
        current.push(v);
        extend_max_clique(&adj, &candidates, &mut current, &mut best);
        current.pop();
    }
    best.sort_unstable();
    best
}

fn extend_max_clique(
    adj: &[Bitset],
    candidates: &Bitset,
    current: &mut Vec<u32>,
    best: &mut Vec<u32>,
) {
    if current.len() > best.len() {
        *best = current.clone();
    }
    if current.len() + candidates.count() <= best.len() {
        return; // bound
    }
    for v in candidates.iter() {
        let mut next = candidates.clone();
        next.intersect_with(&adj[v as usize]);
        clear_up_to(&mut next, v);
        current.push(v);
        extend_max_clique(adj, &next, current, best);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Binomial coefficient for expected clique counts.
    fn choose(n: u128, k: u128) -> u128 {
        if k > n {
            return 0;
        }
        let mut r = 1u128;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn complete_graph_counts_are_binomials() {
        let g = generators::complete_graph(7);
        for k in 0..=8 {
            assert_eq!(count_k_cliques(&g, k), choose(7, k as u128), "k={k}");
        }
    }

    #[test]
    fn triangle_counts() {
        // Two triangles sharing an edge: 0-1-2, 1-2-3.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_k_cliques(&g, 3), 2);
        assert_eq!(count_k_cliques(&g, 4), 0);
        assert_eq!(count_k_cliques(&g, 2), 5);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = generators::path_graph(10);
        assert_eq!(count_k_cliques(&g, 3), 0);
        assert!(!has_k_clique(&g, 3));
        assert!(has_k_clique(&g, 2));
    }

    #[test]
    fn decision_agrees_with_counting() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 5),
                (2, 4),
            ],
        );
        for k in 0..=6 {
            assert_eq!(has_k_clique(&g, k), count_k_cliques(&g, k) > 0, "k={k}");
        }
    }

    #[test]
    fn max_clique_on_known_graphs() {
        assert_eq!(max_clique(&generators::complete_graph(5)).len(), 5);
        assert_eq!(max_clique(&generators::cycle_graph(5)).len(), 2);
        assert_eq!(max_clique(&generators::path_graph(1)).len(), 1);
        assert_eq!(max_clique(&Graph::new(0)).len(), 0);
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(max_clique(&g), vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_edge_cases() {
        let g = Graph::new(3);
        assert_eq!(count_k_cliques(&g, 0), 1);
        assert_eq!(count_k_cliques(&g, 1), 3);
        assert_eq!(count_k_cliques(&g, 2), 0);
        assert!(has_k_clique(&g, 1));
        assert!(!has_k_clique(&g, 2));
        assert!(has_k_clique(&Graph::new(0), 0));
        assert!(!has_k_clique(&Graph::new(0), 1));
    }
}
