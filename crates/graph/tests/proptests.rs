//! Property tests for the graph substrate: treewidth bounds bracket the
//! exact value, decompositions are always valid, nice conversions are
//! well-formed, and clique counts match naive enumeration.

use epq_graph::graph::Graph;
use epq_graph::{cliques, decomposition::NiceTreeDecomposition, treewidth};
use proptest::prelude::*;

/// Strategy: a random graph on up to 9 vertices given by an edge mask.
fn small_graph() -> impl Strategy<Value = Graph> {
    (2usize..=9, any::<u64>()).prop_map(|(n, mask)| {
        let mut g = Graph::new(n);
        let mut bit = 0;
        for i in 0..n as u32 {
            for j in i + 1..n as u32 {
                if mask & (1 << (bit % 64)) != 0 {
                    g.add_edge(i, j);
                }
                bit += 1;
            }
        }
        g
    })
}

/// Naive k-clique counting by subset enumeration (test oracle).
fn count_cliques_naive(g: &Graph, k: usize) -> u128 {
    let n = g.vertex_count();
    if k > n {
        return 0;
    }
    let mut count = 0u128;
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != k {
            continue;
        }
        let members: Vec<u32> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
        if g.is_clique(&members) {
            count += 1;
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn degeneracy_lower_bounds_treewidth(g in small_graph()) {
        let exact = treewidth::treewidth_exact(&g).unwrap();
        let (_, degeneracy) = g.degeneracy_ordering();
        prop_assert!(degeneracy <= exact.max(degeneracy.min(exact)) || degeneracy <= exact,
            "degeneracy {degeneracy} exceeds exact treewidth {exact}");
        prop_assert!(degeneracy <= exact);
    }

    #[test]
    fn heuristic_orders_upper_bound_treewidth(g in small_graph()) {
        let exact = treewidth::treewidth_exact(&g).unwrap();
        let mf = treewidth::elimination_order_width(&g, &treewidth::min_fill_order(&g));
        let md = treewidth::elimination_order_width(&g, &treewidth::min_degree_order(&g));
        prop_assert!(mf >= exact);
        prop_assert!(md >= exact);
    }

    #[test]
    fn optimal_order_achieves_exact_treewidth(g in small_graph()) {
        let (order, width) = treewidth::optimal_elimination_order(&g).unwrap();
        prop_assert_eq!(width, treewidth::treewidth_exact(&g).unwrap());
        prop_assert_eq!(treewidth::elimination_order_width(&g, &order), width);
    }

    #[test]
    fn best_decomposition_is_valid_and_tight(g in small_graph()) {
        let td = treewidth::best_decomposition(&g);
        prop_assert!(td.is_valid_for(&g));
        prop_assert_eq!(td.width(), treewidth::treewidth_exact(&g).unwrap());
    }

    #[test]
    fn nice_conversion_preserves_width(g in small_graph()) {
        let td = treewidth::best_decomposition(&g);
        let nice = NiceTreeDecomposition::from_tree_decomposition(&td);
        prop_assert!(nice.is_well_formed());
        prop_assert_eq!(nice.width(), td.width());
    }

    #[test]
    fn clique_counts_match_naive(g in small_graph(), k in 0usize..6) {
        prop_assert_eq!(cliques::count_k_cliques(&g, k), count_cliques_naive(&g, k));
    }

    #[test]
    fn clique_decision_matches_counting(g in small_graph(), k in 0usize..6) {
        prop_assert_eq!(cliques::has_k_clique(&g, k), cliques::count_k_cliques(&g, k) > 0);
    }

    #[test]
    fn max_clique_is_a_maximal_clique(g in small_graph()) {
        let mc = cliques::max_clique(&g);
        prop_assert!(g.is_clique(&mc));
        // No larger clique exists.
        prop_assert_eq!(cliques::count_k_cliques(&g, mc.len() + 1), 0);
        if !mc.is_empty() {
            prop_assert!(cliques::count_k_cliques(&g, mc.len()) > 0);
        }
    }

    #[test]
    fn components_partition_vertices(g in small_graph()) {
        let comps = g.connected_components();
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, g.vertex_count());
        // No edge crosses components.
        for (u, v) in g.edges() {
            let cu = comps.iter().position(|c| c.contains(&u));
            let cv = comps.iter().position(|c| c.contains(&v));
            prop_assert_eq!(cu, cv);
        }
    }
}
