//! Property-based tests for the bignum tower: agreement with `u128`
//! arithmetic on small values, ring axioms, and division invariants.

use epq_bigint::{Integer, Natural, Rational};
use proptest::prelude::*;

fn nat(v: u128) -> Natural {
    Natural::from(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..=u64::MAX as u128, b in 0u128..=u64::MAX as u128) {
        prop_assert_eq!(nat(a) + nat(b), nat(a + b));
    }

    #[test]
    fn mul_matches_u128(a in 0u128..=u64::MAX as u128, b in 0u128..=u64::MAX as u128) {
        prop_assert_eq!(nat(a) * nat(b), nat(a * b));
    }

    #[test]
    fn sub_matches_u128(a in 0u128..1u128 << 100, b in 0u128..1u128 << 100) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(nat(hi).checked_sub(&nat(lo)), Some(nat(hi - lo)));
        if hi != lo {
            prop_assert_eq!(nat(lo).checked_sub(&nat(hi)), None);
        }
    }

    #[test]
    fn div_rem_invariant(a in any::<u128>(), b in 1u128..=u128::MAX) {
        let (q, r) = nat(a).div_rem(&nat(b));
        prop_assert_eq!(&q * &nat(b) + r.clone(), nat(a));
        prop_assert!(r < nat(b));
    }

    // Multi-limb division stress: build operands from limb vectors directly.
    #[test]
    fn div_rem_invariant_wide(
        a_limbs in proptest::collection::vec(any::<u64>(), 1..8),
        b_limbs in proptest::collection::vec(any::<u64>(), 1..5),
    ) {
        let a = Natural::from_limbs(a_limbs);
        let b = Natural::from_limbs(b_limbs);
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&q * &b + r.clone(), a);
        prop_assert!(r < b);
    }

    #[test]
    fn mul_associative_and_commutative(
        a_limbs in proptest::collection::vec(any::<u64>(), 0..6),
        b_limbs in proptest::collection::vec(any::<u64>(), 0..6),
        c_limbs in proptest::collection::vec(any::<u64>(), 0..6),
    ) {
        let a = Natural::from_limbs(a_limbs);
        let b = Natural::from_limbs(b_limbs);
        let c = Natural::from_limbs(c_limbs);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn distributivity(
        a in any::<u64>(), b in any::<u64>(), c in any::<u64>(),
    ) {
        let (a, b, c) = (Natural::from(a), Natural::from(b), Natural::from(c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn display_parse_roundtrip(limbs in proptest::collection::vec(any::<u64>(), 0..6)) {
        let a = Natural::from_limbs(limbs);
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Natural>().unwrap(), a);
    }

    #[test]
    fn shifts_are_mul_div_by_powers(a in any::<u64>(), s in 0usize..70) {
        let shifted = Natural::from(a) << s;
        prop_assert_eq!(shifted.clone(), Natural::from(a) * Natural::from(2u64).pow(s as u32));
        prop_assert_eq!(shifted >> s, Natural::from(a));
    }

    #[test]
    fn gcd_divides_both(a in 1u128..1u128 << 90, b in 1u128..1u128 << 90) {
        let g = nat(a).gcd(&nat(b));
        prop_assert!((&nat(a) % &g).is_zero());
        prop_assert!((&nat(b) % &g).is_zero());
    }

    #[test]
    fn integer_matches_i128(a in -(1i128 << 62)..(1i128 << 62), b in -(1i128 << 62)..(1i128 << 62)) {
        let (ia, ib) = (Integer::from(a as i64), Integer::from(b as i64));
        prop_assert_eq!((&ia + &ib).to_i64(), Some((a + b) as i64));
        prop_assert_eq!((&ia - &ib).to_i64(), Some((a - b) as i64));
        prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
    }

    #[test]
    fn integer_div_rem_matches_i64(a in any::<i32>(), b in any::<i32>()) {
        prop_assume!(b != 0);
        let (q, r) = Integer::from(a).div_rem(&Integer::from(b));
        prop_assert_eq!(q.to_i64(), Some(a as i64 / b as i64));
        prop_assert_eq!(r.to_i64(), Some(a as i64 % b as i64));
    }

    #[test]
    fn rational_field_axioms(
        an in -100i64..100, ad in 1i64..50,
        bn in -100i64..100, bd in 1i64..50,
        cn in -100i64..100, cd in 1i64..50,
    ) {
        let a = Rational::new(Integer::from(an), Integer::from(ad));
        let b = Rational::new(Integer::from(bn), Integer::from(bd));
        let c = Rational::new(Integer::from(cn), Integer::from(cd));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
    }

    #[test]
    fn vandermonde_recovers_weights(
        ws in proptest::collection::vec(-1000i64..1000, 1..6),
    ) {
        // Distinct positive x values: 1, 2, 3, ...
        let xs: Vec<Rational> = (1..=ws.len() as i64).map(Rational::from).collect();
        let w: Vec<Rational> = ws.iter().copied().map(Rational::from).collect();
        let ys: Vec<Rational> = (0..ws.len())
            .map(|l| {
                xs.iter().zip(w.iter())
                    .map(|(x, wi)| epq_bigint::linalg::pow_rational(x, l) * wi.clone())
                    .fold(Rational::zero(), |acc, t| acc + t)
            })
            .collect();
        let recovered = epq_bigint::linalg::solve_transposed_vandermonde(&xs, &ys).unwrap();
        prop_assert_eq!(recovered, w);
    }

    #[test]
    fn interpolation_reproduces_points(
        coeffs in proptest::collection::vec(-50i64..50, 1..5),
    ) {
        let cs: Vec<Rational> = coeffs.iter().copied().map(Rational::from).collect();
        let pts: Vec<(Rational, Rational)> = (0..cs.len() as i64)
            .map(|x| {
                let xq = Rational::from(x);
                let y = epq_bigint::linalg::evaluate_polynomial(&cs, &xq);
                (xq, y)
            })
            .collect();
        let got = epq_bigint::linalg::interpolate_polynomial(&pts).unwrap();
        for (x, y) in &pts {
            prop_assert_eq!(epq_bigint::linalg::evaluate_polynomial(&got, x), y.clone());
        }
    }
}
