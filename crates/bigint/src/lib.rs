//! # epq-bigint — exact arbitrary-precision arithmetic
//!
//! Substrate crate S1 of the `epq` workspace (see `DESIGN.md` at the
//! workspace root).
//!
//! Counting answers to a query φ(V) on a structure **B** can yield values as
//! large as |B|^|V|, and the oracle interreductions of Chen & Mengel
//! (Theorem 5.20, Example 4.3) evaluate query counts on *product* structures
//! **B** × **C**^ℓ whose counts grow multiplicatively, then solve a
//! Vandermonde linear system exactly. Machine integers overflow almost
//! immediately, and no arbitrary-precision crate is on the offline dependency
//! allowlist — so this crate implements the required tower from scratch:
//!
//! * [`Natural`] — unsigned arbitrary-precision integers (64-bit limbs,
//!   little-endian, Knuth Algorithm D division, Karatsuba multiplication).
//! * [`Integer`] — signed integers on top of [`Natural`].
//! * [`Rational`] — exact fractions, always normalized.
//! * [`linalg`] — exact Gaussian elimination and the (transposed) Vandermonde
//!   solver used by the equivalence-theorem reductions; also exact polynomial
//!   interpolation (the paper's Preliminaries, "Polynomials").
//!
//! All types implement the usual operator traits by value and by reference,
//! `Ord`, `Hash`, and `Display`/`FromStr` in decimal.

pub mod integer;
pub mod linalg;
pub mod natural;
pub mod rational;

pub use integer::Integer;
pub use natural::Natural;
pub use rational::Rational;
