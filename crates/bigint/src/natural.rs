//! Unsigned arbitrary-precision integers.
//!
//! Representation: little-endian `Vec<u64>` limbs with no trailing zero limb
//! (the canonical zero is the empty vector). All public constructors and
//! operations maintain this invariant.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// Number of bits per limb.
const LIMB_BITS: u32 = 64;
/// Karatsuba multiplication kicks in above this many limbs.
const KARATSUBA_THRESHOLD: usize = 32;
/// Largest power of ten fitting in a limb: 10^19.
const DEC_CHUNK: u64 = 10_000_000_000_000_000_000;
/// Number of decimal digits per chunk.
const DEC_CHUNK_DIGITS: usize = 19;

/// An unsigned arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Natural {
    /// Little-endian limbs; empty means zero; the last limb is nonzero.
    limbs: Vec<u64>,
}

impl Natural {
    /// The value 0.
    pub fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// Whether this is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Builds a natural from little-endian limbs (normalizing).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }

    /// Borrow the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_length(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * LIMB_BITS as u64 + (64 - top.leading_zeros()) as u64
            }
        }
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Converts to `usize` if it fits.
    pub fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Converts to `f64` (approximately, for reporting only).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 2f64.powi(64) + l as f64;
        }
        acc
    }

    /// Checked subtraction: `self - other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &Natural) -> Option<Natural> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, &o) in other.limbs.iter().enumerate() {
            let (d1, b1) = limbs[i].overflowing_sub(o);
            let (d2, b2) = d1.overflowing_sub(borrow);
            limbs[i] = d2;
            borrow = (b1 | b2) as u64;
        }
        let mut i = other.limbs.len();
        while borrow != 0 {
            let (d, b) = limbs[i].overflowing_sub(borrow);
            limbs[i] = d;
            borrow = b as u64;
            i += 1;
        }
        Some(Natural::from_limbs(limbs))
    }

    /// Division with remainder: returns `(self / other, self % other)`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &Natural) -> (Natural, Natural) {
        assert!(!other.is_zero(), "division by zero Natural");
        match self.cmp(other) {
            Ordering::Less => return (Natural::zero(), self.clone()),
            Ordering::Equal => return (Natural::one(), Natural::zero()),
            Ordering::Greater => {}
        }
        if other.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(other.limbs[0]);
            return (q, Natural::from(r));
        }
        self.div_rem_knuth(other)
    }

    /// Divides by a single limb; returns `(quotient, remainder)`.
    pub fn div_rem_limb(&self, d: u64) -> (Natural, u64) {
        assert!(d != 0, "division by zero limb");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Natural::from_limbs(q), rem as u64)
    }

    /// Knuth Algorithm D for multi-limb divisors (assumes `self > other`,
    /// `other` has at least two limbs).
    fn div_rem_knuth(&self, other: &Natural) -> (Natural, Natural) {
        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = other.limbs.last().unwrap().leading_zeros();
        let v = other.clone() << shift as usize;
        let mut u = (self.clone() << shift as usize).limbs;
        u.push(0); // extra limb for the algorithm
        let n = v.limbs.len();
        let m = u.len() - n - 1;
        let vn1 = v.limbs[n - 1];
        let vn2 = v.limbs[n - 2];
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q̂ = floor((u[j+n]·b + u[j+n−1]) / v[n−1]).
            let numer = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = numer / vn1 as u128;
            let mut rhat = numer % vn1 as u128;
            // Correct the estimate (at most twice).
            while qhat >> 64 != 0 || qhat * vn2 as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += vn1 as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract: u[j..j+n+1] -= q̂ · v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v.limbs[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            let went_negative = sub < 0;

            q[j] = qhat as u64;
            if went_negative {
                // Add back: the estimate was one too large.
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v.limbs[i] as u128 + carry;
                    u[j + i] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
        }
        let quotient = Natural::from_limbs(q);
        let remainder = Natural::from_limbs(u[..n].to_vec()) >> shift as usize;
        (quotient, remainder)
    }

    /// Raises `self` to the power `exp` by binary exponentiation.
    pub fn pow(&self, exp: u32) -> Natural {
        if exp == 0 {
            return Natural::one();
        }
        let mut base = self.clone();
        let mut acc = Natural::one();
        let mut e = exp;
        while e > 1 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        &acc * &base
    }

    /// Greatest common divisor (Euclid's algorithm).
    pub fn gcd(&self, other: &Natural) -> Natural {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r;
        }
        a
    }

    fn add_in_place(&mut self, other: &Natural) {
        if self.limbs.len() < other.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, &o) in other.limbs.iter().enumerate() {
            let (s1, c1) = self.limbs[i].overflowing_add(o);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 | c2) as u64;
        }
        let mut i = other.limbs.len();
        while carry != 0 {
            if i == self.limbs.len() {
                self.limbs.push(carry);
                carry = 0;
            } else {
                let (s, c) = self.limbs[i].overflowing_add(carry);
                self.limbs[i] = s;
                carry = c as u64;
                i += 1;
            }
        }
    }

    fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
            return Self::mul_schoolbook(a, b);
        }
        let half = a.len().max(b.len()) / 2;
        let (a0, a1) = a.split_at(a.len().min(half));
        let (b0, b1) = b.split_at(b.len().min(half));
        let a0n = Natural::from_limbs(a0.to_vec());
        let a1n = Natural::from_limbs(a1.to_vec());
        let b0n = Natural::from_limbs(b0.to_vec());
        let b1n = Natural::from_limbs(b1.to_vec());
        let z0 = Natural::from_limbs(Self::mul_karatsuba(a0n.limbs(), b0n.limbs()));
        let z2 = Natural::from_limbs(Self::mul_karatsuba(a1n.limbs(), b1n.limbs()));
        let sa = &a0n + &a1n;
        let sb = &b0n + &b1n;
        let z1 = Natural::from_limbs(Self::mul_karatsuba(sa.limbs(), sb.limbs()));
        let z1 = z1
            .checked_sub(&z0)
            .and_then(|t| t.checked_sub(&z2))
            .expect("karatsuba middle term underflow");
        // result = z2·b^{2·half} + z1·b^{half} + z0
        let mut result = z0;
        result.add_in_place(&(z1 << (half * LIMB_BITS as usize)));
        result.add_in_place(&(z2 << (2 * half * LIMB_BITS as usize)));
        result.limbs
    }
}

impl From<u64> for Natural {
    fn from(v: u64) -> Self {
        if v == 0 {
            Natural::zero()
        } else {
            Natural { limbs: vec![v] }
        }
    }
}

impl From<u32> for Natural {
    fn from(v: u32) -> Self {
        Natural::from(v as u64)
    }
}

impl From<usize> for Natural {
    fn from(v: usize) -> Self {
        Natural::from(v as u64)
    }
}

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        Natural::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<&Natural> for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        let mut out = self.clone();
        out.add_in_place(rhs);
        out
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(mut self, rhs: Natural) -> Natural {
        self.add_in_place(&rhs);
        self
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        self.add_in_place(rhs);
    }
}

impl Sub<&Natural> for &Natural {
    type Output = Natural;
    /// # Panics
    /// Panics on underflow; use [`Natural::checked_sub`] to handle it.
    fn sub(self, rhs: &Natural) -> Natural {
        self.checked_sub(rhs)
            .expect("Natural subtraction underflow")
    }
}

impl Sub for Natural {
    type Output = Natural;
    fn sub(self, rhs: Natural) -> Natural {
        (&self).sub(&rhs)
    }
}

impl SubAssign<&Natural> for Natural {
    fn sub_assign(&mut self, rhs: &Natural) {
        *self = (&*self).sub(rhs);
    }
}

impl Mul<&Natural> for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        Natural::from_limbs(Natural::mul_karatsuba(&self.limbs, &rhs.limbs))
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        (&self).mul(&rhs)
    }
}

impl MulAssign<&Natural> for Natural {
    fn mul_assign(&mut self, rhs: &Natural) {
        *self = (&*self).mul(rhs);
    }
}

impl Rem<&Natural> for &Natural {
    type Output = Natural;
    fn rem(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for Natural {
    type Output = Natural;
    fn shl(self, bits: usize) -> Natural {
        if self.is_zero() || bits == 0 {
            return self;
        }
        let limb_shift = bits / LIMB_BITS as usize;
        let bit_shift = (bits % LIMB_BITS as usize) as u32;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        Natural::from_limbs(limbs)
    }
}

impl Shr<usize> for Natural {
    type Output = Natural;
    fn shr(self, bits: usize) -> Natural {
        if self.is_zero() || bits == 0 {
            return self;
        }
        let limb_shift = bits / LIMB_BITS as usize;
        let bit_shift = (bits % LIMB_BITS as usize) as u32;
        if limb_shift >= self.limbs.len() {
            return Natural::zero();
        }
        let mut limbs: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            for i in 0..limbs.len() {
                limbs[i] >>= bit_shift;
                if i + 1 < limbs.len() {
                    limbs[i] |= limbs[i + 1] << (LIMB_BITS - bit_shift);
                }
            }
        }
        Natural::from_limbs(limbs)
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeatedly divide by 10^19 and print chunks.
        let mut chunks = Vec::new();
        let mut n = self.clone();
        while !n.is_zero() {
            let (q, r) = n.div_rem_limb(DEC_CHUNK);
            chunks.push(r);
            n = q;
        }
        let mut s = chunks.pop().unwrap().to_string();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{:0width$}", c, width = DEC_CHUNK_DIGITS));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

/// Error parsing a [`Natural`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNaturalError;

impl fmt::Display for ParseNaturalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid decimal natural number")
    }
}

impl std::error::Error for ParseNaturalError {}

impl FromStr for Natural {
    type Err = ParseNaturalError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseNaturalError);
        }
        let mut acc = Natural::zero();
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(DEC_CHUNK_DIGITS);
            let chunk: u64 = s[i..i + take].parse().map_err(|_| ParseNaturalError)?;
            let scale = 10u64.pow(take as u32);
            acc = acc * Natural::from(scale) + Natural::from(chunk);
            i += take;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(Natural::zero().is_zero());
        assert!(Natural::one().is_one());
        assert_eq!(Natural::from(0u64), Natural::zero());
        assert_eq!(Natural::zero().bit_length(), 0);
        assert_eq!(Natural::one().bit_length(), 1);
    }

    #[test]
    fn add_with_carries() {
        let a = n(u64::MAX as u128);
        let b = n(1);
        assert_eq!(&a + &b, n(u64::MAX as u128 + 1));
        assert_eq!((&a + &b).limbs().len(), 2);
    }

    #[test]
    fn sub_with_borrows() {
        let a = n(1u128 << 64);
        let b = n(1);
        assert_eq!(a.checked_sub(&b), Some(n(u64::MAX as u128)));
        assert_eq!(b.checked_sub(&a), None);
        assert_eq!(a.checked_sub(&a), Some(Natural::zero()));
    }

    #[test]
    fn mul_small_and_cross_limb() {
        assert_eq!(&n(7) * &n(6), n(42));
        assert_eq!(&n(0) * &n(12345), Natural::zero());
        let big = n(u64::MAX as u128);
        assert_eq!(&big * &big, n((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Construct operands well above the Karatsuba threshold.
        let a = Natural::from_limbs((1..=80u64).collect());
        let b = Natural::from_limbs(
            (1..=70u64)
                .map(|x| x.wrapping_mul(0x9E3779B97F4A7C15))
                .collect(),
        );
        let school = Natural::from_limbs(Natural::mul_schoolbook(a.limbs(), b.limbs()));
        assert_eq!(&a * &b, school);
    }

    #[test]
    fn div_rem_basic() {
        let (q, r) = n(100).div_rem(&n(7));
        assert_eq!((q, r), (n(14), n(2)));
        let (q, r) = n(5).div_rem(&n(100));
        assert_eq!((q, r), (Natural::zero(), n(5)));
        let (q, r) = n(100).div_rem(&n(100));
        assert_eq!((q, r), (Natural::one(), Natural::zero()));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = n(0xDEADBEEF_CAFEBABE_12345678_9ABCDEF0);
        let b = n(0x1_00000000_00000001);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + r, a);
    }

    #[test]
    fn div_rem_knuth_addback_path() {
        // A case engineered to exercise the rare add-back branch family:
        // divisor with high limb just over half range.
        let u = Natural::from_limbs(vec![0, 0, 0x8000_0000_0000_0000]);
        let v = Natural::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&q * &v + r.clone(), u);
        assert!(r < v);
    }

    #[test]
    fn pow_and_parse_display_roundtrip() {
        let big = n(10).pow(50);
        assert_eq!(big.to_string().len(), 51);
        assert_eq!(big.to_string().parse::<Natural>().unwrap(), big);
        assert_eq!(n(2).pow(10), n(1024));
        assert_eq!(n(5).pow(0), Natural::one());
        assert_eq!(Natural::zero().pow(5), Natural::zero());
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1) << 100, n(1u128 << 100));
        assert_eq!(n(1u128 << 100) >> 100, n(1));
        assert_eq!(n(0b1011) << 3, n(0b1011000));
        assert_eq!(n(0b1011000) >> 3, n(0b1011));
        assert_eq!(n(7) >> 10, Natural::zero());
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(5)), n(1));
        assert_eq!(n(0).gcd(&n(9)), n(9));
        assert_eq!(n(9).gcd(&n(0)), n(9));
    }

    #[test]
    fn ordering() {
        assert!(n(5) < n(6));
        assert!(n(1u128 << 64) > n(u64::MAX as u128));
        assert_eq!(n(42).cmp(&n(42)), Ordering::Equal);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Natural>().is_err());
        assert!("12a".parse::<Natural>().is_err());
        assert!("-5".parse::<Natural>().is_err());
    }

    #[test]
    fn to_conversions() {
        assert_eq!(n(42).to_u64(), Some(42));
        assert_eq!(n(1u128 << 80).to_u64(), None);
        assert_eq!(n(1u128 << 80).to_u128(), Some(1u128 << 80));
        assert_eq!((n(1u128 << 100) * n(1u128 << 100)).to_u128(), None);
    }
}
