//! Exact rational numbers.
//!
//! A [`Rational`] is a fully reduced fraction `numerator / denominator` with
//! a strictly positive denominator; the sign lives on the numerator.

use crate::integer::Integer;
use crate::natural::Natural;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number, always in lowest terms.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    numerator: Integer,
    /// Always strictly positive.
    denominator: Natural,
}

impl Rational {
    /// The value 0.
    pub fn zero() -> Self {
        Rational {
            numerator: Integer::zero(),
            denominator: Natural::one(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        Rational {
            numerator: Integer::one(),
            denominator: Natural::one(),
        }
    }

    /// Builds `numerator / denominator`, reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `denominator` is zero.
    pub fn new(numerator: Integer, denominator: Integer) -> Self {
        assert!(!denominator.is_zero(), "Rational with zero denominator");
        let numerator = if denominator.is_negative() {
            -numerator
        } else {
            numerator
        };
        let den_mag = denominator.into_magnitude();
        let g = numerator.magnitude().gcd(&den_mag);
        if g.is_zero() {
            // numerator == 0
            return Rational::zero();
        }
        let num =
            Integer::from_sign_magnitude(numerator.sign(), numerator.magnitude().div_rem(&g).0);
        let den = den_mag.div_rem(&g).0;
        Rational {
            numerator: num,
            denominator: den,
        }
    }

    /// The (signed, reduced) numerator.
    pub fn numerator(&self) -> &Integer {
        &self.numerator
    }

    /// The (positive, reduced) denominator.
    pub fn denominator(&self) -> &Natural {
        &self.denominator
    }

    /// Whether this is 0.
    pub fn is_zero(&self) -> bool {
        self.numerator.is_zero()
    }

    /// Whether the denominator is 1 (so the value is an integer).
    pub fn is_integer(&self) -> bool {
        self.denominator.is_one()
    }

    /// Converts to an [`Integer`] if the value is integral.
    pub fn to_integer(&self) -> Option<Integer> {
        if self.is_integer() {
            Some(self.numerator.clone())
        } else {
            None
        }
    }

    /// Multiplicative inverse. Panics if zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(
            Integer::from_sign_magnitude(self.numerator.sign(), self.denominator.clone()),
            self.numerator.abs(),
        )
    }

    /// Approximate `f64` value (reporting only).
    pub fn to_f64(&self) -> f64 {
        self.numerator.to_f64() / self.denominator.to_f64()
    }
}

impl From<Integer> for Rational {
    fn from(i: Integer) -> Self {
        Rational {
            numerator: i,
            denominator: Natural::one(),
        }
    }
}

impl From<Natural> for Rational {
    fn from(n: Natural) -> Self {
        Rational::from(Integer::from(n))
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from(Integer::from(v))
    }
}

impl Add<&Rational> for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        let a = &self.numerator * &Integer::from(rhs.denominator.clone());
        let b = &rhs.numerator * &Integer::from(self.denominator.clone());
        Rational::new(a + b, Integer::from(&self.denominator * &rhs.denominator))
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        (&self).add(&rhs)
    }
}

impl Sub<&Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self.add(&-rhs.clone())
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        (&self).sub(&rhs)
    }
}

impl Mul<&Rational> for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::new(
            &self.numerator * &rhs.numerator,
            Integer::from(&self.denominator * &rhs.denominator),
        )
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        (&self).mul(&rhs)
    }
}

impl Div<&Rational> for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        self.mul(&rhs.recip())
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        (&self).div(&rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            numerator: -self.numerator,
            denominator: self.denominator,
        }
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -self.clone()
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  (b,d > 0)  <=>  a·d vs c·b
        let lhs = &self.numerator * &Integer::from(other.denominator.clone());
        let rhs = &other.numerator * &Integer::from(self.denominator.clone());
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.numerator)
        } else {
            write!(f, "{}/{}", self.numerator, self.denominator)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64, d: i64) -> Rational {
        Rational::new(Integer::from(n), Integer::from(d))
    }

    #[test]
    fn reduction_and_sign_normalization() {
        assert_eq!(q(2, 4), q(1, 2));
        assert_eq!(q(-2, -4), q(1, 2));
        assert_eq!(q(2, -4), q(-1, 2));
        assert_eq!(q(0, -7), Rational::zero());
        assert!(q(3, -9).numerator().is_negative());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = q(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(q(1, 2) + q(1, 3), q(5, 6));
        assert_eq!(q(1, 2) - q(1, 3), q(1, 6));
        assert_eq!(q(2, 3) * q(3, 4), q(1, 2));
        assert_eq!(q(1, 2) / q(1, 4), q(2, 1));
        assert_eq!(-q(1, 2), q(-1, 2));
    }

    #[test]
    fn integrality() {
        assert!(q(4, 2).is_integer());
        assert_eq!(q(4, 2).to_integer(), Some(Integer::from(2)));
        assert_eq!(q(1, 2).to_integer(), None);
    }

    #[test]
    fn ordering() {
        assert!(q(1, 3) < q(1, 2));
        assert!(q(-1, 2) < q(-1, 3));
        assert!(q(-1, 2) < Rational::zero());
        assert_eq!(q(2, 6).cmp(&q(1, 3)), Ordering::Equal);
    }

    #[test]
    fn recip() {
        assert_eq!(q(2, 3).recip(), q(3, 2));
        assert_eq!(q(-2, 3).recip(), q(-3, 2));
    }

    #[test]
    fn display() {
        assert_eq!(q(1, 2).to_string(), "1/2");
        assert_eq!(q(-4, 2).to_string(), "-2");
        assert_eq!(Rational::zero().to_string(), "0");
    }
}
