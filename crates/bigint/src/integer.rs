//! Signed arbitrary-precision integers on top of [`Natural`].

use crate::natural::Natural;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Sign of an [`Integer`]. Zero always carries [`Sign::Zero`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// A signed arbitrary-precision integer.
///
/// Invariant: `magnitude.is_zero()` if and only if `sign == Sign::Zero`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Integer {
    sign: Sign,
    magnitude: Natural,
}

impl Integer {
    /// The value 0.
    pub fn zero() -> Self {
        Integer {
            sign: Sign::Zero,
            magnitude: Natural::zero(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        Integer {
            sign: Sign::Positive,
            magnitude: Natural::one(),
        }
    }

    /// Builds from a sign and a magnitude (normalizing the sign of zero).
    pub fn from_sign_magnitude(sign: Sign, magnitude: Natural) -> Self {
        if magnitude.is_zero() {
            Integer::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with Sign::Zero");
            Integer { sign, magnitude }
        }
    }

    /// This integer's sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Absolute value as a [`Natural`].
    pub fn magnitude(&self) -> &Natural {
        &self.magnitude
    }

    /// Consumes self, returning the magnitude.
    pub fn into_magnitude(self) -> Natural {
        self.magnitude
    }

    /// Whether this is 0.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Whether this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Whether this is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Absolute value.
    pub fn abs(&self) -> Integer {
        Integer::from_sign_magnitude(
            if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Positive
            },
            self.magnitude.clone(),
        )
    }

    /// Truncating division with remainder; the remainder has the sign of
    /// `self` (C-style). Panics if `other` is zero.
    pub fn div_rem(&self, other: &Integer) -> (Integer, Integer) {
        assert!(!other.is_zero(), "division by zero Integer");
        let (qm, rm) = self.magnitude.div_rem(&other.magnitude);
        let qsign = match (self.sign, other.sign) {
            (Sign::Zero, _) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        (
            Integer::from_sign_magnitude(if qm.is_zero() { Sign::Zero } else { qsign }, qm),
            Integer::from_sign_magnitude(if rm.is_zero() { Sign::Zero } else { self.sign }, rm),
        )
    }

    /// Exact division: panics if `other` does not divide `self` exactly.
    pub fn div_exact(&self, other: &Integer) -> Integer {
        let (q, r) = self.div_rem(other);
        assert!(r.is_zero(), "div_exact with nonzero remainder");
        q
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &Integer) -> Natural {
        self.magnitude.gcd(&other.magnitude)
    }

    /// Raises to the power `exp`.
    pub fn pow(&self, exp: u32) -> Integer {
        let mag = self.magnitude.pow(exp);
        let sign = match self.sign {
            Sign::Zero => {
                if exp == 0 {
                    Sign::Positive
                } else {
                    Sign::Zero
                }
            }
            Sign::Positive => Sign::Positive,
            Sign::Negative => {
                if exp % 2 == 0 {
                    Sign::Positive
                } else {
                    Sign::Negative
                }
            }
        };
        let mag = if exp == 0 { Natural::one() } else { mag };
        Integer::from_sign_magnitude(sign, mag)
    }

    /// Converts to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.magnitude.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(m).ok(),
            Sign::Negative => {
                if m <= i64::MAX as u128 + 1 {
                    Some((m as i128).wrapping_neg() as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Converts to `f64` (approximately, for reporting only).
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude.to_f64();
        match self.sign {
            Sign::Negative => -m,
            _ => m,
        }
    }
}

impl From<Natural> for Integer {
    fn from(n: Natural) -> Self {
        let sign = if n.is_zero() {
            Sign::Zero
        } else {
            Sign::Positive
        };
        Integer { sign, magnitude: n }
    }
}

impl From<i64> for Integer {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Integer::zero(),
            Ordering::Greater => {
                Integer::from_sign_magnitude(Sign::Positive, Natural::from(v as u64))
            }
            Ordering::Less => {
                Integer::from_sign_magnitude(Sign::Negative, Natural::from(v.unsigned_abs()))
            }
        }
    }
}

impl From<u64> for Integer {
    fn from(v: u64) -> Self {
        Integer::from(Natural::from(v))
    }
}

impl From<i32> for Integer {
    fn from(v: i32) -> Self {
        Integer::from(v as i64)
    }
}

impl Ord for Integer {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Negative, Negative) => other.magnitude.cmp(&self.magnitude),
            (Negative, _) => Ordering::Less,
            (Zero, Negative) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Positive) => Ordering::Less,
            (Positive, Positive) => self.magnitude.cmp(&other.magnitude),
            (Positive, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for Integer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        Integer {
            sign,
            magnitude: self.magnitude,
        }
    }
}

impl Neg for &Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        -self.clone()
    }
}

impl Add<&Integer> for &Integer {
    type Output = Integer;
    fn add(self, rhs: &Integer) -> Integer {
        use Sign::*;
        match (self.sign, rhs.sign) {
            (Zero, _) => rhs.clone(),
            (_, Zero) => self.clone(),
            (a, b) if a == b => Integer::from_sign_magnitude(a, &self.magnitude + &rhs.magnitude),
            _ => match self.magnitude.cmp(&rhs.magnitude) {
                Ordering::Equal => Integer::zero(),
                Ordering::Greater => Integer::from_sign_magnitude(
                    self.sign,
                    self.magnitude.checked_sub(&rhs.magnitude).unwrap(),
                ),
                Ordering::Less => Integer::from_sign_magnitude(
                    rhs.sign,
                    rhs.magnitude.checked_sub(&self.magnitude).unwrap(),
                ),
            },
        }
    }
}

impl Add for Integer {
    type Output = Integer;
    fn add(self, rhs: Integer) -> Integer {
        (&self).add(&rhs)
    }
}

impl AddAssign<&Integer> for Integer {
    fn add_assign(&mut self, rhs: &Integer) {
        *self = (&*self).add(rhs);
    }
}

impl Sub<&Integer> for &Integer {
    type Output = Integer;
    fn sub(self, rhs: &Integer) -> Integer {
        self.add(&(-rhs))
    }
}

impl Sub for Integer {
    type Output = Integer;
    fn sub(self, rhs: Integer) -> Integer {
        (&self).sub(&rhs)
    }
}

impl SubAssign<&Integer> for Integer {
    fn sub_assign(&mut self, rhs: &Integer) {
        *self = (&*self).sub(rhs);
    }
}

impl Mul<&Integer> for &Integer {
    type Output = Integer;
    fn mul(self, rhs: &Integer) -> Integer {
        use Sign::*;
        let sign = match (self.sign, rhs.sign) {
            (Zero, _) | (_, Zero) => Zero,
            (a, b) if a == b => Positive,
            _ => Negative,
        };
        Integer::from_sign_magnitude(sign, &self.magnitude * &rhs.magnitude)
    }
}

impl Mul for Integer {
    type Output = Integer;
    fn mul(self, rhs: Integer) -> Integer {
        (&self).mul(&rhs)
    }
}

impl MulAssign<&Integer> for Integer {
    fn mul_assign(&mut self, rhs: &Integer) {
        *self = (&*self).mul(rhs);
    }
}

impl fmt::Display for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.magnitude)
    }
}

impl fmt::Debug for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl FromStr for Integer {
    type Err = crate::natural::ParseNaturalError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('-') {
            let mag: Natural = rest.parse()?;
            Ok(Integer::from_sign_magnitude(
                if mag.is_zero() {
                    Sign::Zero
                } else {
                    Sign::Negative
                },
                mag,
            ))
        } else {
            let mag: Natural = s.strip_prefix('+').unwrap_or(s).parse()?;
            Ok(Integer::from(mag))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Integer {
        Integer::from(v)
    }

    #[test]
    fn signs_and_zero_normalization() {
        assert!(i(0).is_zero());
        assert_eq!(i(5).sign(), Sign::Positive);
        assert_eq!(i(-5).sign(), Sign::Negative);
        assert_eq!((i(5) + i(-5)).sign(), Sign::Zero);
    }

    #[test]
    fn mixed_sign_addition() {
        assert_eq!(i(7) + i(-3), i(4));
        assert_eq!(i(3) + i(-7), i(-4));
        assert_eq!(i(-3) + i(-4), i(-7));
        assert_eq!(i(0) + i(-4), i(-4));
        assert_eq!(i(-4) + i(0), i(-4));
    }

    #[test]
    fn subtraction_and_negation() {
        assert_eq!(i(10) - i(25), i(-15));
        assert_eq!(-i(5), i(-5));
        assert_eq!(-i(0), i(0));
        assert_eq!(i(-8) - i(-8), i(0));
    }

    #[test]
    fn multiplication_sign_rules() {
        assert_eq!(i(3) * i(-4), i(-12));
        assert_eq!(i(-3) * i(-4), i(12));
        assert_eq!(i(0) * i(-4), i(0));
    }

    #[test]
    fn truncating_div_rem() {
        assert_eq!(i(7).div_rem(&i(2)), (i(3), i(1)));
        assert_eq!(i(-7).div_rem(&i(2)), (i(-3), i(-1)));
        assert_eq!(i(7).div_rem(&i(-2)), (i(-3), i(1)));
        assert_eq!(i(-7).div_rem(&i(-2)), (i(3), i(-1)));
    }

    #[test]
    fn div_exact_ok_and_pow() {
        assert_eq!(i(-12).div_exact(&i(4)), i(-3));
        assert_eq!(i(-2).pow(3), i(-8));
        assert_eq!(i(-2).pow(4), i(16));
        assert_eq!(i(0).pow(0), i(1));
    }

    #[test]
    #[should_panic(expected = "nonzero remainder")]
    fn div_exact_panics_on_remainder() {
        let _ = i(7).div_exact(&i(2));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(i(-10) < i(-2));
        assert!(i(-2) < i(0));
        assert!(i(0) < i(3));
        assert!(i(3) < i(10));
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("-123".parse::<Integer>().unwrap(), i(-123));
        assert_eq!("+42".parse::<Integer>().unwrap(), i(42));
        assert_eq!("-0".parse::<Integer>().unwrap(), i(0));
        assert_eq!(i(-99).to_string(), "-99");
    }

    #[test]
    fn to_i64_limits() {
        assert_eq!(i(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(i(i64::MAX).to_i64(), Some(i64::MAX));
        let too_big = Integer::from(Natural::from(u64::MAX)) + Integer::one();
        assert_eq!(too_big.to_i64(), None);
    }
}
