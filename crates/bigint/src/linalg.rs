//! Exact linear algebra over the rationals.
//!
//! Two uses in the reproduction:
//!
//! 1. **Vandermonde systems** (Example 4.3, Theorem 5.20, and the proof of
//!    Theorem 5.4): the oracle interreductions evaluate a query count on
//!    product structures **B** × **C**^ℓ for ℓ = 0, 1, …, s−1 and recover the
//!    per-class counts by solving `Σ_j x_j^ℓ · w_j = y_ℓ` — a *transposed*
//!    Vandermonde system with pairwise distinct `x_j`.
//! 2. **Polynomial interpolation** (Preliminaries, "Polynomials"): a degree-n
//!    polynomial is determined by n+1 points, with rational coefficients
//!    computable in polynomial time.
//!
//! Everything here is exact; there is no floating point.

use crate::rational::Rational;

/// A dense matrix of rationals (row-major).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl Matrix {
    /// Builds a matrix from rows. All rows must have equal length.
    pub fn from_rows(rows: Vec<Vec<Rational>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged matrix rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable entry access.
    pub fn get(&self, r: usize, c: usize) -> &Rational {
        &self.data[r * self.cols + c]
    }

    fn get_mut(&mut self, r: usize, c: usize) -> &mut Rational {
        &mut self.data[r * self.cols + c]
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

/// Solves the square system `A·x = b` by exact Gaussian elimination with
/// partial (first-nonzero) pivoting.
///
/// Returns `None` when `A` is singular.
pub fn solve_linear_system(a: &Matrix, b: &[Rational]) -> Option<Vec<Rational>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve_linear_system requires a square matrix");
    assert_eq!(b.len(), n, "right-hand side length mismatch");
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Find a pivot.
        let pivot = (col..n).find(|&r| !m.get(r, col).is_zero())?;
        m.swap_rows(col, pivot);
        rhs.swap(col, pivot);
        let pivot_value = m.get(col, col).clone();
        // Eliminate below.
        for r in col + 1..n {
            if m.get(r, col).is_zero() {
                continue;
            }
            let factor = m.get(r, col) / &pivot_value;
            for c in col..n {
                let delta = &factor * m.get(col, c);
                *m.get_mut(r, c) = m.get(r, c) - &delta;
            }
            let delta = &factor * &rhs[col];
            rhs[r] = &rhs[r] - &delta;
        }
    }
    // Back substitution.
    let mut x = vec![Rational::zero(); n];
    for r in (0..n).rev() {
        let mut acc = rhs[r].clone();
        for (c, xc) in x.iter().enumerate().skip(r + 1) {
            let delta = m.get(r, c) * xc;
            acc = acc - delta;
        }
        x[r] = &acc / m.get(r, r);
    }
    Some(x)
}

/// Solves the transposed Vandermonde system
/// `Σ_j xs[j]^ℓ · w_j = ys[ℓ]`  for ℓ = 0, …, n−1,
/// which is exactly the system arising from oracle queries on
/// **B** × **C**^ℓ in Example 4.3 / Theorem 5.20.
///
/// Requires the `xs` to be pairwise distinct (then the system is
/// non-singular); returns `None` otherwise.
pub fn solve_transposed_vandermonde(xs: &[Rational], ys: &[Rational]) -> Option<Vec<Rational>> {
    let n = xs.len();
    assert_eq!(ys.len(), n, "point/value length mismatch");
    for i in 0..n {
        for j in i + 1..n {
            if xs[i] == xs[j] {
                return None;
            }
        }
    }
    let rows: Vec<Vec<Rational>> = (0..n)
        .map(|l| xs.iter().map(|x| pow_rational(x, l)).collect())
        .collect();
    solve_linear_system(&Matrix::from_rows(rows), ys)
}

/// Raises a rational to a non-negative integer power.
pub fn pow_rational(x: &Rational, exp: usize) -> Rational {
    let mut acc = Rational::one();
    let mut base = x.clone();
    let mut e = exp;
    while e > 0 {
        if e & 1 == 1 {
            acc = &acc * &base;
        }
        base = &base * &base;
        e >>= 1;
    }
    acc
}

/// Interpolates the unique polynomial of degree ≤ n through the n+1 given
/// `(x, y)` points; returns the coefficients `a_0, …, a_n` (low degree
/// first). Returns `None` if two x-values coincide.
///
/// This realizes the polynomial fact from the paper's Preliminaries: the
/// coefficients are rational and computable in polynomial time.
pub fn interpolate_polynomial(points: &[(Rational, Rational)]) -> Option<Vec<Rational>> {
    let n = points.len();
    for i in 0..n {
        for j in i + 1..n {
            if points[i].0 == points[j].0 {
                return None;
            }
        }
    }
    let rows: Vec<Vec<Rational>> = points
        .iter()
        .map(|(x, _)| (0..n).map(|k| pow_rational(x, k)).collect())
        .collect();
    let ys: Vec<Rational> = points.iter().map(|(_, y)| y.clone()).collect();
    solve_linear_system(&Matrix::from_rows(rows), &ys)
}

/// Evaluates a polynomial given by coefficients (low degree first) at `x`
/// by Horner's rule.
pub fn evaluate_polynomial(coefficients: &[Rational], x: &Rational) -> Rational {
    let mut acc = Rational::zero();
    for c in coefficients.iter().rev() {
        acc = &(&acc * x) + c;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integer::Integer;

    fn q(n: i64, d: i64) -> Rational {
        Rational::new(Integer::from(n), Integer::from(d))
    }

    fn qi(n: i64) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn solve_2x2() {
        // x + y = 3; x - y = 1  =>  x = 2, y = 1
        let a = Matrix::from_rows(vec![vec![qi(1), qi(1)], vec![qi(1), qi(-1)]]);
        let x = solve_linear_system(&a, &[qi(3), qi(1)]).unwrap();
        assert_eq!(x, vec![qi(2), qi(1)]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // First pivot is zero; needs a row swap.
        let a = Matrix::from_rows(vec![vec![qi(0), qi(2)], vec![qi(3), qi(0)]]);
        let x = solve_linear_system(&a, &[qi(4), qi(9)]).unwrap();
        assert_eq!(x, vec![qi(3), qi(2)]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(vec![vec![qi(1), qi(2)], vec![qi(2), qi(4)]]);
        assert!(solve_linear_system(&a, &[qi(1), qi(2)]).is_none());
    }

    #[test]
    fn rational_solution() {
        // 2x = 1  =>  x = 1/2
        let a = Matrix::from_rows(vec![vec![qi(2)]]);
        assert_eq!(solve_linear_system(&a, &[qi(1)]).unwrap(), vec![q(1, 2)]);
    }

    #[test]
    fn transposed_vandermonde_roundtrip() {
        // Pick weights, generate moments, recover weights.
        let xs = [qi(1), qi(4), qi(9)];
        let w = [qi(5), qi(-2), qi(7)];
        let ys: Vec<Rational> = (0..3)
            .map(|l| {
                xs.iter()
                    .zip(w.iter())
                    .map(|(x, wi)| &pow_rational(x, l) * wi)
                    .fold(Rational::zero(), |a, b| a + b)
            })
            .collect();
        let recovered = solve_transposed_vandermonde(&xs, &ys).unwrap();
        assert_eq!(recovered, w.to_vec());
    }

    #[test]
    fn transposed_vandermonde_rejects_duplicates() {
        assert!(solve_transposed_vandermonde(&[qi(2), qi(2)], &[qi(0), qi(0)]).is_none());
    }

    #[test]
    fn interpolate_quadratic() {
        // p(x) = 2x² - 3x + 1
        let pts = [(qi(0), qi(1)), (qi(1), qi(0)), (qi(2), qi(3))];
        let coeffs = interpolate_polynomial(&pts).unwrap();
        assert_eq!(coeffs, vec![qi(1), qi(-3), qi(2)]);
        assert_eq!(evaluate_polynomial(&coeffs, &qi(5)), qi(36));
    }

    #[test]
    fn interpolate_detects_duplicate_x() {
        let pts = [(qi(1), qi(1)), (qi(1), qi(2))];
        assert!(interpolate_polynomial(&pts).is_none());
    }

    #[test]
    fn pow_rational_cases() {
        assert_eq!(pow_rational(&q(2, 3), 0), qi(1));
        assert_eq!(pow_rational(&q(2, 3), 2), q(4, 9));
        assert_eq!(pow_rational(&qi(-2), 3), qi(-8));
    }
}
