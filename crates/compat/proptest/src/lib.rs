//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the subset of proptest used by the `tests/proptests.rs`
//! suites is reimplemented here:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//!   [`Strategy::prop_recursive`], and [`Strategy::boxed`];
//! * strategies for integer ranges, tuples, [`any`], [`Just`], and
//!   [`collection::vec`];
//! * the [`proptest!`] test-harness macro (with optional
//!   `#![proptest_config(...)]`), plus [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assume!`], and [`prop_oneof!`].
//!
//! Differences from upstream are deliberate and small: generation is
//! driven by a fixed-seed deterministic RNG (derived from the test
//! name), there is no shrinking — a failing case prints its inputs via
//! the assertion message instead — and rejected cases
//! ([`prop_assume!`]) are retried up to a bounded factor of the case
//! count. Test sources compile unchanged against either implementation.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod test_runner {
    //! Test-case outcomes, mirroring `proptest::test_runner`.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it is retried and
        /// does not count toward the case budget.
        Reject(String),
        /// An assertion failed; the test panics with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// Builds the rejection variant.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestCaseError;

/// The random source handed to strategies (a seeded [`StdRng`]).
pub type TestRng = StdRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking, so a strategy is
/// simply a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive structures: `recurse` receives a strategy for
    /// the values one nesting level down and returns the strategy one
    /// level deeper; nesting is capped at `depth`. Like upstream, each
    /// level mixes in the shallower strategies (3:1 deeper:shallower),
    /// so generated values span every depth from the base case to
    /// `depth`, not only full-depth ones. (`_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility and
    /// ignored — depth alone bounds our generation.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            let shallower = strategy.clone();
            let deeper = recurse(strategy).boxed();
            strategy = BoxedStrategy(Rc::new(move |rng| {
                if rng.gen_range(0u8..4) == 0 {
                    shallower.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        strategy
    }

    /// Erases the strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_uniform!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_range(0u8..2) == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds accepted by [`vec()`].
    pub trait SizeRange {
        /// Samples a length in bounds.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for vectors whose elements come from `element` and
    /// whose length lies in `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Derives a deterministic per-test RNG seed from the test's name, so
/// every test sees a fixed but distinct stream.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a; any stable 64-bit hash works.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property: runs `case` with fresh inputs until
/// `config.cases` cases pass, a case fails (panic), or the rejection
/// budget is exhausted (panic).
pub fn run_property(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng: TestRng = SeedableRng::seed_from_u64(seed_for(test_name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(256);
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{test_name}: too many rejected cases \
                         ({rejected} rejects for {passed} passes); \
                         loosen the strategy or the prop_assume!"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("{test_name}: property failed after {passed} passing cases: {message}")
            }
        }
    }
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
// The `#[test]` inside the example is the macro's real syntax, not a
// doctest-local unit test, so the lint does not apply.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    (@config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &config, |prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), prop_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config (<$crate::ProptestConfig as Default>::default()) $($rest)*);
    };
}

/// Asserts inside a `proptest!` body; failure fails the current case
/// (without aborting the whole process the way `assert!` would).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body, printing both sides on
/// failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Discards the current case unless `cond` holds; discarded cases are
/// retried with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in -5i64..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn tuples_and_maps(v in (0u8..4, 0u8..4).prop_map(|(a, b)| a as u32 + b as u32)) {
            prop_assert!(v <= 6);
        }

        #[test]
        fn vec_lengths(v in collection::vec(any::<u64>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_respected(_x in 0u8..=255) {
            prop_assert!(true);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strategy = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r))),
                ]
            });
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(depth(&strategy.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(2);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
