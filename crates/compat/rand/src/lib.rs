//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the handful of `rand 0.8` APIs the workspace actually
//! uses are reimplemented here behind the same paths:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator,
//! * [`SeedableRng::seed_from_u64`] — splitmix64 seed expansion,
//! * [`Rng::gen_range`] over integer and float ranges,
//! * [`Rng::gen_bool`].
//!
//! The stream differs from upstream `rand`'s `StdRng` (which is
//! ChaCha-based); everything in this workspace treats seeded RNGs as
//! "some deterministic stream", never as "the exact `rand 0.8` stream",
//! so this is safe. Integer sampling rejects from the next power of
//! two, so draws are unbiased.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    /// splitmix64 step, used to expand a 64-bit seed into the state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range that knows how to sample a uniform value from an RNG
/// (the shim's analogue of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u128` in `[0, n)` by rejection from the next power of two.
fn uniform_below_u128<R: RngCore + ?Sized>(rng: &mut R, n: u128) -> u128 {
    debug_assert!(n > 0);
    let bits = 128 - (n - 1).leading_zeros();
    let mask = if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    };
    loop {
        let x = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) & mask;
        if x < n {
            return x;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = uniform_below_u128(rng, span);
                ((self.start as $wide as u128).wrapping_add(off)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128;
                if span == u128::MAX {
                    return (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $t;
                }
                let off = uniform_below_u128(rng, span + 1);
                ((start as $wide as u128).wrapping_add(off)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, u128 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, i128 => i128, isize => i128,
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// The user-facing RNG extension trait, mirroring the subset of
/// `rand::Rng` this workspace uses.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_u128_inclusive_range_is_reachable() {
        let mut rng = StdRng::seed_from_u64(11);
        // Must not loop forever or panic on the maximal span.
        let _ = rng.gen_range(1u128..=u128::MAX);
        let _ = rng.gen_range(0u128..=u128::MAX);
    }
}
