//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the subset of the criterion 0.5 API used by the six
//! bench suites in `crates/bench` is reimplemented here: [`Criterion`],
//! [`BenchmarkGroup`] (with [`BenchmarkGroup::sample_size`]),
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's bootstrapped confidence intervals, each
//! benchmark reports the median and min/max wall-clock time over the
//! configured sample count — enough to compare engines and spot
//! regressions, with zero dependencies. Benches are still compiled with
//! `harness = false` and run as ordinary binaries, so `cargo bench`
//! (and `cargo bench --no-run` in CI) work unchanged.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque measurement-routine driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call keeps lazily-initialized workloads out of
        // the first sample.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }
}

/// An identifier for one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The top-level benchmark manager, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror criterion's CLI contract: a positional argument passed
        // by `cargo bench -- <substring>` filters benchmark ids. Flags
        // (`--bench`, `--exact`, the target name cargo appends) are
        // ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, self.filter.as_deref(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            filter: self.filter.clone(),
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    filter: Option<String>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.filter.as_deref(), f);
        self
    }

    /// Runs a benchmark that borrows a setup value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (Reporting is incremental, so this is a no-op.)
    pub fn finish(self) {}
}

/// Runs one benchmark (unless `filter` excludes its id) and prints a
/// `name  time: [min median max]` line.
fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, filter: Option<&str>, mut f: F) {
    if let Some(needle) = filter {
        if !id.contains(needle) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<50} (no samples: routine never called iter)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{id:<50} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
}

/// Formats a duration with criterion-style units.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function named `$name` running each
/// `$target(&mut Criterion)` in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running each group declared by
/// [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        let mut c = Criterion::default();
        c.sample_size(3)
            .bench_function("smoke", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("n=2").id, "n=2");
        let from_str: BenchmarkId = "plain".into();
        assert_eq!(from_str.id, "plain");
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut total = 0u64;
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
                b.iter(|| total += n)
            });
            g.finish();
        }
        assert_eq!(total, 15); // (1 warm-up + 2 samples) * 5
    }
}
