//! Property tests for `epq-core`: the oracle reductions round-trip on
//! random queries/structures, the batched prepared-query API is
//! bit-identical to sequential counting at every thread count, and
//! incremental streaming maintenance agrees with from-scratch recounts
//! after every random insert sequence.

use epq_core::count::{count_ep, count_ep_with};
use epq_core::iex::star;
use epq_core::incremental::LiveCount;
use epq_core::oracle;
use epq_core::plus::plus_decomposition;
use epq_core::prepared::{count_ep_batch, PreparedQuery};
use epq_counting::brute;
use epq_counting::engines::{FptEngine, RelalgEngine};
use epq_logic::dnf;
use epq_workloads::{data, queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // The oracle pipeline multiplies structure sizes (products B × C^ℓ
    // verified by brute force), so keep the case budget and the inputs
    // deliberately small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_free_recovery_roundtrips_on_random_ucqs(
        qseed in 0u64..5000,
        sseed in 0u64..5000,
    ) {
        // Quantifier-free disjuncts keep every star term free; two
        // variables and two disjuncts keep the Vandermonde products
        // (whose recovered counts the test verifies by brute force)
        // small enough for the debug profile.
        let (disjuncts, n) = (2usize, 2usize);
        let query = queries::random_ucq(
            &mut StdRng::seed_from_u64(qseed), disjuncts, 2, 2, 0.0);
        let sig = data::digraph_signature();
        let ds = dnf::disjuncts(&query, &sig).unwrap();
        prop_assume!(ds.iter().all(|d| d.is_free()));
        let star_terms = star(&ds);
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), n, 0.45);
        let mut oracle_fn =
            |d: &epq_structures::Structure| count_ep(&query, &sig, d, &FptEngine).unwrap();
        let recovered = oracle::recover_all_free_counts(&star_terms, &b, &mut oracle_fn);
        prop_assert_eq!(recovered.counts.len(), star_terms.len());
        prop_assert!(recovered.oracle_queries >= 1);
        for (i, count) in &recovered.counts {
            let direct = brute::count_pp_brute(&star_terms[*i].formula, &b);
            prop_assert_eq!(count, &direct, "star term {}", i);
        }
    }

    #[test]
    fn general_recovery_roundtrips_with_sentence_disjuncts(
        qseed in 0u64..5000,
        sseed in 0u64..5000,
    ) {
        // A free part plus a random fully-quantified sentence disjunct
        // (built over fresh variable names so the sentence's binders
        // cannot capture the free part's liberal variables).
        let free = queries::random_ucq(&mut StdRng::seed_from_u64(qseed), 2, 2, 1, 0.0);
        let sentence = {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(qseed + 1);
            let names = ["s0", "s1"];
            let atoms: Vec<epq_logic::Formula> = (0..2)
                .map(|_| {
                    epq_logic::Formula::atom(
                        "E",
                        &[
                            names[rng.gen_range(0..2usize)],
                            names[rng.gen_range(0..2usize)],
                        ],
                    )
                })
                .collect();
            epq_logic::Formula::exists(&names, epq_logic::Formula::conjunction(atoms))
        };
        let formula = epq_logic::Formula::Or(
            Box::new(free.formula().clone()),
            Box::new(sentence),
        );
        let query = epq_logic::Query::new(formula, free.liberal().to_vec()).unwrap();
        let sig = data::digraph_signature();
        let dec = plus_decomposition(&query, &sig).unwrap();
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), 2, 0.5);
        let mut oracle_fn = |d: &epq_structures::Structure| {
            count_ep_with(&dec, query.liberal_count(), d, &FptEngine)
        };
        let recovered =
            oracle::recover_plus_counts(&dec, query.liberal_count(), &b, &mut oracle_fn);
        prop_assert_eq!(recovered.len(), dec.plus.len());
        for (formula, count) in &recovered {
            let direct = brute::count_pp_brute(formula, &b);
            prop_assert_eq!(count, &direct, "formula {}", formula);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_counts_match_sequential_loop_at_every_thread_count(
        qseed in 0u64..10_000,
        sseed in 0u64..10_000,
        batch in 1usize..=12,
        n in 1usize..=4,
    ) {
        let query = queries::random_ucq(&mut StdRng::seed_from_u64(qseed), 2, 3, 2, 0.3);
        let sig = data::digraph_signature();
        let structures =
            data::random_digraph_batch(&mut StdRng::seed_from_u64(sseed), batch, n, 0.4);
        let prepared = PreparedQuery::prepare(&query, &sig).unwrap();
        // The reference: one-at-a-time counting through the plain API
        // (itself cross-checked against brute force elsewhere).
        let sequential: Vec<_> = structures
            .iter()
            .map(|b| count_ep(&query, &sig, b, &FptEngine).unwrap())
            .collect();
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(
                prepared.count_batch(&structures, threads),
                sequential.clone(),
                "threads = {}", threads
            );
        }
        prop_assert_eq!(count_ep_batch(&prepared, &structures), sequential);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The streaming tentpole invariant: after **every** checkpoint of
    /// a random insert sequence, `LiveCount::current` equals a
    /// from-scratch `PreparedQuery::count` on the same snapshot — for
    /// the cached-relalg maintenance path at 1/2/4 worker threads and
    /// for the DP-table fallback path, with a brute-force cross-check
    /// on the final structure.
    #[test]
    fn live_count_agrees_with_recount_after_random_inserts(
        qseed in 0u64..10_000,
        lseed in 0u64..10_000,
        n in 1usize..=4,
        inserts in 1usize..=24,
        checkpoint_every in 1usize..=5,
        e_weight in 0u32..=3,
    ) {
        // A random two-relation UCQ (some draws include sentence
        // disjuncts via fully-quantified random CQs) over a random
        // skew between the two relations.
        let sig = epq_structures::Signature::from_symbols([("E", 2), ("F", 2)]);
        let query = queries::random_ucq_over(
            &mut StdRng::seed_from_u64(qseed), &sig, 2, 3, 2, 0.3);
        let log = data::random_insert_log(
            &mut StdRng::seed_from_u64(lseed),
            &sig,
            n,
            inserts,
            checkpoint_every,
            &[e_weight, 1],
        );

        // Maintenance configurations: cached relational algebra at
        // three thread caps, plus the DP-table (fpt) fallback.
        let mut maintainers: Vec<LiveCount> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                let prepared = PreparedQuery::prepare_uncached(&query, &sig)
                    .unwrap()
                    .with_engine(Box::new(RelalgEngine));
                LiveCount::new(prepared, log.open()).unwrap().with_threads(threads)
            })
            .collect();
        maintainers.push({
            let prepared = PreparedQuery::prepare_uncached(&query, &sig).unwrap();
            LiveCount::new(prepared, log.open()).unwrap()
        });
        prop_assert!(!maintainers.last().unwrap().uses_cached_relalg());

        for op in &log.ops {
            let counts: Vec<_> = maintainers
                .iter_mut()
                .map(|m| m.apply(op))
                .collect();
            if let Some(Some(first)) = counts.first() {
                let reference = maintainers[0].recount_from_scratch();
                prop_assert_eq!(first, &reference, "cached relalg (1 thread) vs recount");
                for (i, count) in counts.iter().enumerate() {
                    prop_assert_eq!(
                        count.as_ref().unwrap(),
                        &reference,
                        "maintainer {} vs recount", i
                    );
                }
            }
        }
        // Final cross-check against ground truth on the full replay.
        let final_structure = log.replay();
        let expected = brute::count_ep_brute(&query, &final_structure);
        for (i, m) in maintainers.iter_mut().enumerate() {
            prop_assert_eq!(&m.current(), &expected, "maintainer {} vs brute force", i);
        }
    }
}
