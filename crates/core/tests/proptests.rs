//! Property tests for `epq-core`: the oracle reductions round-trip on
//! random queries/structures, and the batched prepared-query API is
//! bit-identical to sequential counting at every thread count.

use epq_core::count::{count_ep, count_ep_with};
use epq_core::iex::star;
use epq_core::oracle;
use epq_core::plus::plus_decomposition;
use epq_core::prepared::{count_ep_batch, PreparedQuery};
use epq_counting::brute;
use epq_counting::engines::FptEngine;
use epq_logic::dnf;
use epq_workloads::{data, queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // The oracle pipeline multiplies structure sizes (products B × C^ℓ
    // verified by brute force), so keep the case budget and the inputs
    // deliberately small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_free_recovery_roundtrips_on_random_ucqs(
        qseed in 0u64..5000,
        sseed in 0u64..5000,
    ) {
        // Quantifier-free disjuncts keep every star term free; two
        // variables and two disjuncts keep the Vandermonde products
        // (whose recovered counts the test verifies by brute force)
        // small enough for the debug profile.
        let (disjuncts, n) = (2usize, 2usize);
        let query = queries::random_ucq(
            &mut StdRng::seed_from_u64(qseed), disjuncts, 2, 2, 0.0);
        let sig = data::digraph_signature();
        let ds = dnf::disjuncts(&query, &sig).unwrap();
        prop_assume!(ds.iter().all(|d| d.is_free()));
        let star_terms = star(&ds);
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), n, 0.45);
        let mut oracle_fn =
            |d: &epq_structures::Structure| count_ep(&query, &sig, d, &FptEngine).unwrap();
        let recovered = oracle::recover_all_free_counts(&star_terms, &b, &mut oracle_fn);
        prop_assert_eq!(recovered.counts.len(), star_terms.len());
        prop_assert!(recovered.oracle_queries >= 1);
        for (i, count) in &recovered.counts {
            let direct = brute::count_pp_brute(&star_terms[*i].formula, &b);
            prop_assert_eq!(count, &direct, "star term {}", i);
        }
    }

    #[test]
    fn general_recovery_roundtrips_with_sentence_disjuncts(
        qseed in 0u64..5000,
        sseed in 0u64..5000,
    ) {
        // A free part plus a random fully-quantified sentence disjunct
        // (built over fresh variable names so the sentence's binders
        // cannot capture the free part's liberal variables).
        let free = queries::random_ucq(&mut StdRng::seed_from_u64(qseed), 2, 2, 1, 0.0);
        let sentence = {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(qseed + 1);
            let names = ["s0", "s1"];
            let atoms: Vec<epq_logic::Formula> = (0..2)
                .map(|_| {
                    epq_logic::Formula::atom(
                        "E",
                        &[
                            names[rng.gen_range(0..2usize)],
                            names[rng.gen_range(0..2usize)],
                        ],
                    )
                })
                .collect();
            epq_logic::Formula::exists(&names, epq_logic::Formula::conjunction(atoms))
        };
        let formula = epq_logic::Formula::Or(
            Box::new(free.formula().clone()),
            Box::new(sentence),
        );
        let query = epq_logic::Query::new(formula, free.liberal().to_vec()).unwrap();
        let sig = data::digraph_signature();
        let dec = plus_decomposition(&query, &sig).unwrap();
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), 2, 0.5);
        let mut oracle_fn = |d: &epq_structures::Structure| {
            count_ep_with(&dec, query.liberal_count(), d, &FptEngine)
        };
        let recovered =
            oracle::recover_plus_counts(&dec, query.liberal_count(), &b, &mut oracle_fn);
        prop_assert_eq!(recovered.len(), dec.plus.len());
        for (formula, count) in &recovered {
            let direct = brute::count_pp_brute(formula, &b);
            prop_assert_eq!(count, &direct, "formula {}", formula);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_counts_match_sequential_loop_at_every_thread_count(
        qseed in 0u64..10_000,
        sseed in 0u64..10_000,
        batch in 1usize..=12,
        n in 1usize..=4,
    ) {
        let query = queries::random_ucq(&mut StdRng::seed_from_u64(qseed), 2, 3, 2, 0.3);
        let sig = data::digraph_signature();
        let structures =
            data::random_digraph_batch(&mut StdRng::seed_from_u64(sseed), batch, n, 0.4);
        let prepared = PreparedQuery::prepare(&query, &sig).unwrap();
        // The reference: one-at-a-time counting through the plain API
        // (itself cross-checked against brute force elsewhere).
        let sequential: Vec<_> = structures
            .iter()
            .map(|b| count_ep(&query, &sig, b, &FptEngine).unwrap())
            .collect();
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(
                prepared.count_batch(&structures, threads),
                sequential.clone(),
                "threads = {}", threads
            );
        }
        prop_assert_eq!(count_ep_batch(&prepared, &structures), sequential);
    }
}
