//! The `φ⁺` construction (Section 5.4 of the paper; Example 5.21).
//!
//! Given an ep-query `φ`:
//!
//! 1. rewrite into disjunctive form and **normalize** (no sentence
//!    disjunct maps into any other disjunct);
//! 2. split into the **all-free part** `φ_af` (the free disjuncts) and
//!    the **sentence disjuncts**;
//! 3. build `φ*_af` by inclusion–exclusion with cancellation
//!    (Proposition 5.16);
//! 4. `φ⁻_af` keeps the `φ*_af` formulas that do **not** logically entail
//!    any sentence disjunct;
//! 5. `φ⁺ = φ⁻_af ∪ {sentence disjuncts}`.
//!
//! Theorem 3.1 (the equivalence theorem) states that counting for `{φ}`
//! and counting for `φ⁺` are interreducible; Theorem 3.2 reads the
//! trichotomy off the treewidth profile of `φ⁺`.

use crate::iex::{star, SignedPp};
use epq_logic::query::LogicError;
use epq_logic::{dnf, PpFormula, Query};
use epq_structures::Signature;

/// The full decomposition produced on the way to `φ⁺` (all intermediate
/// stages are exposed — the oracle reductions and the classifier need
/// them).
#[derive(Clone, Debug)]
pub struct PlusDecomposition {
    /// The normalized disjuncts of `φ`.
    pub disjuncts: Vec<PpFormula>,
    /// The free disjuncts (the all-free part `φ_af`).
    pub all_free: Vec<PpFormula>,
    /// The sentence disjuncts of `φ`.
    pub sentences: Vec<PpFormula>,
    /// `φ*_af`: signed, cancelled inclusion–exclusion terms of `φ_af`.
    pub star_af: Vec<SignedPp>,
    /// `kept[i]` ⇔ star term `i` belongs to `φ⁻_af` (it entails no
    /// sentence disjunct) — precomputed here so the counting hot path
    /// ([`crate::count`]) never rebuilds a lookup set per structure.
    /// [`PlusDecomposition::minus_af`] derives the index list from
    /// this single source of truth.
    pub kept: Vec<bool>,
    /// `φ⁺ = φ⁻_af ∪ sentences`.
    pub plus: Vec<PpFormula>,
}

impl PlusDecomposition {
    /// Indices into `star_af` of the formulas in `φ⁻_af` (those that
    /// do not entail any sentence disjunct), derived from
    /// [`PlusDecomposition::kept`].
    pub fn minus_af(&self) -> Vec<usize> {
        self.kept
            .iter()
            .enumerate()
            .filter(|(_, &k)| k)
            .map(|(i, _)| i)
            .collect()
    }

    /// The formulas of `φ⁻_af`.
    pub fn minus_af_formulas(&self) -> Vec<&PpFormula> {
        self.minus_af()
            .into_iter()
            .map(|i| &self.star_af[i].formula)
            .collect()
    }
}

/// Computes the `φ⁺` decomposition of a query (Theorem 3.1's algorithm).
pub fn plus_decomposition(
    query: &Query,
    signature: &Signature,
) -> Result<PlusDecomposition, LogicError> {
    let raw = dnf::disjuncts(query, signature)?;
    Ok(plus_decomposition_of_normalized(dnf::normalize(raw)))
}

/// The `φ⁺` construction starting from already **normalized** disjuncts
/// (the output of [`dnf::normalize`]). [`crate::prepared`] uses this to
/// avoid re-expanding the DNF after computing a query's canonical cache
/// key from the same disjunct list.
pub fn plus_decomposition_of_normalized(disjuncts: Vec<PpFormula>) -> PlusDecomposition {
    let (all_free, sentences): (Vec<PpFormula>, Vec<PpFormula>) =
        disjuncts.iter().cloned().partition(|d| d.is_free());
    let star_af = if all_free.is_empty() {
        Vec::new()
    } else {
        star(&all_free)
    };
    let kept: Vec<bool> = star_af
        .iter()
        .map(|term| !sentences.iter().any(|theta| term.formula.entails(theta)))
        .collect();
    let mut plus: Vec<PpFormula> = star_af
        .iter()
        .zip(&kept)
        .filter(|(_, &k)| k)
        .map(|(term, _)| term.formula.clone())
        .collect();
    plus.extend(sentences.iter().cloned());
    PlusDecomposition {
        disjuncts,
        all_free,
        sentences,
        star_af,
        kept,
        plus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_logic::parser::parse_query;

    fn decompose(text: &str) -> PlusDecomposition {
        let q = parse_query(text).unwrap();
        let sig = epq_logic::query::infer_signature([q.formula()]).unwrap();
        plus_decomposition(&q, &sig).unwrap()
    }

    /// Example 5.21: θ(V) = φ1 ∨ φ2 ∨ φ3 ∨ θ1 with V = {w,x,y,z},
    /// φ1 = E(x,y)∧E(y,z), φ2 = E(z,w)∧E(w,x), φ3 = E(w,x)∧E(x,y),
    /// θ1 = ∃a,b,c,d . E(a,b)∧E(b,c)∧E(c,d).
    fn example_5_21() -> PlusDecomposition {
        decompose(
            "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y)) \
             | (exists a, b, c, d . E(a,b) & E(b,c) & E(c,d))",
        )
    }

    #[test]
    fn example_5_21_theta_plus() {
        let dec = example_5_21();
        // All four disjuncts survive normalization (θ1 maps into no free
        // disjunct *with pins*: the free disjuncts' structures contain a
        // directed 3-path? φ1 = x→y→z is a 2-path; θ1 needs a 3-path —
        // no hom. φ-pairs are not present as disjuncts.)
        assert_eq!(dec.disjuncts.len(), 4);
        assert_eq!(dec.all_free.len(), 3);
        assert_eq!(dec.sentences.len(), 1);
        // θ*_af = {φ1, φ1∧φ3} (Example 5.15).
        assert_eq!(dec.star_af.len(), 2);
        // φ1∧φ3 (the 3-path w→x→y→z) entails θ1; φ1 does not.
        assert_eq!(dec.minus_af().len(), 1, "θ⁻_af = {{φ1}}");
        let kept = &dec.star_af[dec.minus_af()[0]];
        assert_eq!(kept.formula.structure().tuple_count(), 2);
        // θ⁺ = {φ1, θ1}.
        assert_eq!(dec.plus.len(), 2);
        assert!(dec.plus[1].is_sentence());
    }

    #[test]
    fn pure_pp_query_has_singleton_plus() {
        let dec = decompose("E(x,y) & E(y,z)");
        assert_eq!(dec.disjuncts.len(), 1);
        assert_eq!(dec.sentences.len(), 0);
        assert_eq!(dec.plus.len(), 1);
    }

    #[test]
    fn pure_sentence_query() {
        let dec = decompose("exists a, b . E(a,b)");
        assert_eq!(dec.all_free.len(), 0);
        assert_eq!(dec.sentences.len(), 1);
        assert_eq!(dec.star_af.len(), 0);
        assert_eq!(dec.plus.len(), 1);
    }

    #[test]
    fn normalization_happens_before_split() {
        // A free disjunct subsumed by a sentence disjunct disappears:
        // (E(x,y) ∧ E(y,x)) ∨ ∃a,b (E(a,b) ∧ E(b,a)).
        let dec = decompose("(x, y) := (E(x,y) & E(y,x)) | (exists a, b . E(a,b) & E(b,a))");
        assert_eq!(dec.disjuncts.len(), 1);
        assert!(dec.all_free.is_empty());
        assert_eq!(dec.plus.len(), 1);
        assert!(dec.plus[0].is_sentence());
    }

    #[test]
    fn mixed_query_with_unrelated_sentence() {
        // E(x,y) ∨ ∃a F(a,a): the free part survives (no entailment
        // across different relations).
        let dec = decompose("(x, y) := E(x,y) | (exists a . F(a,a))");
        assert_eq!(dec.all_free.len(), 1);
        assert_eq!(dec.sentences.len(), 1);
        assert_eq!(dec.minus_af().len(), 1);
        assert_eq!(dec.plus.len(), 2);
    }

    #[test]
    fn kept_mask_drives_minus_af() {
        for text in [
            "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y)) \
             | (exists a, b, c, d . E(a,b) & E(b,c) & E(c,d))",
            "(x, y) := E(x,y) | F(x,y) | (exists a, b . E(a,b) & F(a,b))",
            "E(x,y) & E(y,z)",
            "exists a, b . E(a,b)",
        ] {
            let dec = decompose(text);
            assert_eq!(dec.kept.len(), dec.star_af.len(), "{text}");
            for &i in &dec.minus_af() {
                assert!(dec.kept[i], "{text}");
            }
            assert_eq!(
                dec.minus_af().len(),
                dec.kept.iter().filter(|&&k| k).count(),
                "{text}"
            );
            assert_eq!(
                dec.minus_af_formulas().len(),
                dec.minus_af().len(),
                "{text}"
            );
        }
    }

    #[test]
    fn entailing_star_terms_are_filtered() {
        // φ = E(x,y) ∨ F(x,y) ∨ ∃a,b (E(a,b) ∧ F(a,b)).
        // φ*_af = {E, F, E∧F}; E∧F (glued on x,y) entails the sentence
        // ∃a,b(E(a,b)∧F(a,b)) → φ⁻_af = {E, F}.
        let dec = decompose("(x, y) := E(x,y) | F(x,y) | (exists a, b . E(a,b) & F(a,b))");
        assert_eq!(dec.star_af.len(), 3);
        assert_eq!(dec.minus_af().len(), 2);
        assert_eq!(dec.plus.len(), 3);
    }
}
