//! The trichotomy classifier (Theorem 3.2).
//!
//! For a set Φ of ep-formulas of bounded arity, with Φ⁺ the derived
//! pp-formula set of Theorem 3.1:
//!
//! 1. Φ⁺ satisfies the **tractability condition** (cores *and* contract
//!    graphs of bounded treewidth) → `param-count[Φ]` is **FPT**;
//! 2. Φ⁺ satisfies only the **contraction condition** (contract graphs
//!    bounded) → interreducible with **p-Clique** (W\[1\]-equivalent);
//! 3. otherwise → **p-#Clique-hard** (#W\[1\]-hard).
//!
//! Boundedness is a property of infinite families, so the API computes
//! exact per-formula width measures ([`PpAnalysis`], [`QueryAnalysis`])
//! and classifies *against an explicit width bound* ([`classify_widths`]),
//! or reports the measured growth of a family
//! ([`FamilyReport`]). The benchmark harness prints the trichotomy table
//! (experiment T1) from these reports.

use crate::plus::plus_decomposition;
use epq_graph::{treewidth, TreewidthBound};
use epq_logic::query::LogicError;
use epq_logic::{contract, PpFormula, Query};
use epq_structures::Signature;
use std::fmt;

/// The three regimes of Theorem 3.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Regime {
    /// Case 1: fixed-parameter tractable.
    Fpt,
    /// Case 2: interreducible with p-Clique under counting
    /// FPT-reductions (W\[1\]-equivalent).
    CliqueEquivalent,
    /// Case 3: at least as hard as p-#Clique (#W\[1\]-hard).
    SharpCliqueHard,
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regime::Fpt => write!(f, "FPT"),
            Regime::CliqueEquivalent => write!(f, "Clique-equivalent (W[1])"),
            Regime::SharpCliqueHard => write!(f, "#Clique-hard (#W[1])"),
        }
    }
}

/// Width measures of a single pp-formula (computed on its core, as the
/// conditions require).
#[derive(Clone, Debug)]
pub struct PpAnalysis {
    /// The core of the formula.
    pub core: PpFormula,
    /// Treewidth of the core's Gaifman graph.
    pub core_treewidth: TreewidthBound,
    /// Treewidth of contract(core).
    pub contract_treewidth: TreewidthBound,
}

/// Analyzes one pp-formula: core it, measure both treewidths.
pub fn analyze_pp(pp: &PpFormula) -> PpAnalysis {
    let core = pp.core();
    let core_treewidth = treewidth::treewidth_bound(&core.structure().gaifman_graph());
    let contract_treewidth = treewidth::treewidth_bound(&contract::contract_graph(&core));
    PpAnalysis {
        core,
        core_treewidth,
        contract_treewidth,
    }
}

/// The analysis of an ep-query: its `φ⁺` with per-formula measures.
#[derive(Clone, Debug)]
pub struct QueryAnalysis {
    /// Analyses of each formula in `φ⁺`.
    pub plus_analyses: Vec<PpAnalysis>,
    /// Maximum core treewidth over `φ⁺` (upper bounds).
    pub max_core_treewidth: usize,
    /// Maximum contract treewidth over `φ⁺` (upper bounds).
    pub max_contract_treewidth: usize,
}

/// Computes `φ⁺` and analyzes every formula in it.
///
/// This is the uncached primitive; [`crate::prepared::classify_query_cached`]
/// (and [`crate::prepared::PreparedQuery`]) memoize the result process-wide
/// by the query's canonical form.
pub fn classify_query(query: &Query, signature: &Signature) -> Result<QueryAnalysis, LogicError> {
    let dec = plus_decomposition(query, signature)?;
    Ok(analyze_decomposition(&dec))
}

/// Analyzes every formula of an already-computed `φ⁺` decomposition
/// (the per-query phase split out so prepared queries can run it
/// lazily and share the result).
pub fn analyze_decomposition(dec: &crate::plus::PlusDecomposition) -> QueryAnalysis {
    let plus_analyses: Vec<PpAnalysis> = dec.plus.iter().map(analyze_pp).collect();
    let max_core_treewidth = plus_analyses
        .iter()
        .map(|a| a.core_treewidth.upper())
        .max()
        .unwrap_or(0);
    let max_contract_treewidth = plus_analyses
        .iter()
        .map(|a| a.contract_treewidth.upper())
        .max()
        .unwrap_or(0);
    QueryAnalysis {
        plus_analyses,
        max_core_treewidth,
        max_contract_treewidth,
    }
}

/// Applies Theorem 3.2 given width measures and a width bound `w`
/// (the set is viewed as "bounded" when all its widths are ≤ `w`).
pub fn classify_widths(max_core_tw: usize, max_contract_tw: usize, w: usize) -> Regime {
    let contraction = max_contract_tw <= w;
    let tractability = contraction && max_core_tw <= w;
    if tractability {
        Regime::Fpt
    } else if contraction {
        Regime::CliqueEquivalent
    } else {
        Regime::SharpCliqueHard
    }
}

/// Width growth of a query family `{φ_k}`, for deciding boundedness
/// empirically (the trichotomy table of experiment T1).
#[derive(Clone, Debug)]
pub struct FamilyReport {
    /// Family name for reports.
    pub name: String,
    /// Per-member `(k, max core tw, max contract tw)`.
    pub measures: Vec<(usize, usize, usize)>,
}

impl FamilyReport {
    /// Builds the report by classifying each family member.
    pub fn build(
        name: impl Into<String>,
        members: impl IntoIterator<Item = (usize, Query, Signature)>,
    ) -> Result<Self, LogicError> {
        let mut measures = Vec::new();
        for (k, query, signature) in members {
            let analysis = classify_query(&query, &signature)?;
            measures.push((
                k,
                analysis.max_core_treewidth,
                analysis.max_contract_treewidth,
            ));
        }
        Ok(FamilyReport {
            name: name.into(),
            measures,
        })
    }

    /// Whether the measured core treewidths grow with k (strictly larger
    /// in the last member than the first).
    pub fn core_treewidth_grows(&self) -> bool {
        match (self.measures.first(), self.measures.last()) {
            (Some(first), Some(last)) => last.1 > first.1,
            _ => false,
        }
    }

    /// Whether the measured contract treewidths grow with k.
    pub fn contract_treewidth_grows(&self) -> bool {
        match (self.measures.first(), self.measures.last()) {
            (Some(first), Some(last)) => last.2 > first.2,
            _ => false,
        }
    }

    /// The regime suggested by the measured growth: growing widths are
    /// read as "unbounded" (correct for the monotone families in the
    /// benchmark catalog; documented in EXPERIMENTS.md).
    pub fn inferred_regime(&self) -> Regime {
        if self.contract_treewidth_grows() {
            Regime::SharpCliqueHard
        } else if self.core_treewidth_grows() {
            Regime::CliqueEquivalent
        } else {
            Regime::Fpt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_counting::clique;
    use epq_logic::parser::parse_query;
    use epq_logic::query::infer_signature;

    fn analyze_text(text: &str) -> QueryAnalysis {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        classify_query(&q, &sig).unwrap()
    }

    #[test]
    fn path_queries_have_width_one() {
        let a = analyze_text("E(x,y) & E(y,z) & E(z,w)");
        assert_eq!(a.max_core_treewidth, 1);
        assert_eq!(a.max_contract_treewidth, 1);
        assert_eq!(classify_widths(1, 1, 2), Regime::Fpt);
    }

    #[test]
    fn clique_queries_have_full_width() {
        // The k-clique query: core tw = contract tw = k−1.
        for k in 2..=4 {
            let pp = clique::clique_pp(k);
            let analysis = analyze_pp(&pp);
            assert_eq!(analysis.core_treewidth.upper(), k - 1, "core tw, k={k}");
            assert_eq!(
                analysis.contract_treewidth.upper(),
                k - 1,
                "contract tw, k={k}"
            );
        }
        assert_eq!(classify_widths(3, 3, 2), Regime::SharpCliqueHard);
    }

    #[test]
    fn quantified_clique_queries_separate_the_conditions() {
        // θ_k(x) = x plus a fully quantified k-clique attached to x:
        // core treewidth grows, but the contract graph is a single vertex.
        // This is the case-2 (Clique-equivalent) pattern: the count is
        // decision-like (which vertices see a k-clique).
        for k in [3, 4] {
            let vars: Vec<String> = (1..=k).map(|i| format!("u{i}")).collect();
            let mut atoms = vec![format!("E(x,{})", vars[0])];
            for i in 0..k {
                for j in i + 1..k {
                    atoms.push(format!("E({},{})", vars[i], vars[j]));
                }
            }
            let text = format!("(x) := exists {} . {}", vars.join(", "), atoms.join(" & "));
            let analysis = analyze_text(&text);
            assert_eq!(analysis.max_contract_treewidth, 0, "k={k}");
            assert_eq!(analysis.max_core_treewidth, k - 1, "k={k}");
        }
        assert_eq!(classify_widths(3, 0, 2), Regime::CliqueEquivalent);
    }

    #[test]
    fn classification_is_on_the_core() {
        // A query that *looks* wide but cores down: redundant clique atoms
        // over the same two variables.
        let a = analyze_text("(x) := exists u, v, w . E(x,u) & E(x,v) & E(x,w)");
        assert_eq!(a.max_core_treewidth, 1);
        assert_eq!(a.max_contract_treewidth, 0);
    }

    #[test]
    fn ucq_classification_uses_plus() {
        // Example 5.21's θ: θ⁺ = {φ1 (a 2-path), θ1 (a quantified 3-path
        // sentence)} — all widths 1, FPT regime.
        let a = analyze_text(
            "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y)) \
             | (exists a, b, c, d . E(a,b) & E(b,c) & E(c,d))",
        );
        assert_eq!(a.plus_analyses.len(), 2);
        assert_eq!(a.max_core_treewidth, 1);
        assert_eq!(a.max_contract_treewidth, 1);
    }

    #[test]
    fn cancellation_can_lower_the_classification_width() {
        // Example 4.2: the raw inclusion–exclusion terms include a 4-cycle
        // (tw 2), but φ* cancels it — the analysis sees only tw 1.
        let a =
            analyze_text("(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))");
        assert_eq!(a.max_core_treewidth, 1);
    }

    #[test]
    fn family_report_growth_detection() {
        let members = (2..=4).map(|k| {
            let q = clique::clique_query(k);
            (k, q, clique::graph_signature())
        });
        let report = FamilyReport::build("cliques", members).unwrap();
        assert!(report.core_treewidth_grows());
        assert!(report.contract_treewidth_grows());
        assert_eq!(report.inferred_regime(), Regime::SharpCliqueHard);
    }

    #[test]
    fn path_family_is_flat() {
        let members = (2..=5).map(|k| {
            let atoms: Vec<String> = (0..k).map(|i| format!("E(v{i},v{})", i + 1)).collect();
            let q = parse_query(&atoms.join(" & ")).unwrap();
            let sig = infer_signature([q.formula()]).unwrap();
            (k, q, sig)
        });
        let report = FamilyReport::build("paths", members).unwrap();
        assert!(!report.core_treewidth_grows());
        assert!(!report.contract_treewidth_grows());
        assert_eq!(report.inferred_regime(), Regime::Fpt);
    }

    #[test]
    fn regime_display() {
        assert_eq!(Regime::Fpt.to_string(), "FPT");
        assert!(Regime::CliqueEquivalent.to_string().contains("W[1]"));
        assert!(Regime::SharpCliqueHard.to_string().contains("#W[1]"));
    }
}
