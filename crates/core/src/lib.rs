//! # epq-core — Chen & Mengel's classification, executable
//!
//! The primary crate of the `epq` workspace (S7 in `DESIGN.md`): the
//! original contributions of *"Counting Answers to Existential Positive
//! Queries: A Complexity Classification"* (PODS 2016), implemented as
//! running code on top of the substrate crates.
//!
//! * [`equivalence`] — **counting equivalence** decided via *renaming
//!   equivalence* (Theorem 5.4) and **semi-counting equivalence** decided
//!   via the liberal part `φ̂` (Theorem 5.9);
//! * [`iex`] — the **inclusion–exclusion expansion** of a disjunctive
//!   ep-formula and the cancellation step that produces `φ*`
//!   (Proposition 5.16, Examples 4.2 / 5.15);
//! * [`plus`] — the **`φ⁺` construction** of Section 5.4 (all-free part,
//!   entailment filtering against sentence disjuncts, Example 5.21);
//! * [`count`] — the complete **ep answer-counting algorithm**: sentence
//!   disjunct check, then the signed `φ*` sum (the forward direction of
//!   the equivalence theorem / Theorem 3.2(1)'s algorithm);
//! * [`classify`] — the **trichotomy classifier** (Theorem 3.2): compute
//!   `φ⁺`, core and contract treewidths, and the regime;
//! * [`distinguish`] — the **deterministic** Lemma 5.12/5.13
//!   constructions (padding scans and exact product amplification),
//!   complementing the randomized search in [`oracle`];
//! * [`oracle`] — the **reverse reductions** of the equivalence theorem as
//!   executable oracle algorithms: distinguishing-structure search
//!   (Lemma 5.12), Vandermonde recovery over products `B × C^ℓ`
//!   (Example 4.3 / Theorem 5.20), class splitting (Lemma 5.18), and the
//!   treated-structure tricks for the general case (Appendix A);
//! * [`prepared`] — the **prepared-query architecture**: the per-query
//!   phase (normalize → `φ⁺` → width analysis) computed once and
//!   memoized process-wide by canonical form, with batched,
//!   pool-parallel per-structure counting ([`count_ep_batch`]);
//! * [`incremental`] — **streaming maintenance**: [`LiveCount`] keeps a
//!   prepared query's answer count current while the structure grows
//!   tuple by tuple, recomputing only the disjuncts that read a dirty
//!   relation (cached relational-algebra intermediates; full per-term
//!   recount when a dirty relation feeds a DP-table engine).

pub mod classify;
pub mod count;
pub mod distinguish;
pub mod equivalence;
pub mod iex;
pub mod incremental;
pub mod oracle;
pub mod plus;
pub mod prepared;

pub use classify::{classify_query, QueryAnalysis, Regime};
pub use count::count_ep;
pub use equivalence::{counting_equivalent, renaming_equivalent, semi_counting_equivalent};
pub use iex::{inclusion_exclusion_terms, star, SignedPp};
pub use incremental::{LiveCount, LiveCountStats};
pub use plus::{plus_decomposition, PlusDecomposition};
pub use prepared::{
    classifier_cache_clear, classifier_cache_stats, classify_query_cached, count_ep_batch,
    CacheStats, PreparedQuery,
};
