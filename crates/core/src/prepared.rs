//! Prepared queries: pay the per-query pipeline once, count many times.
//!
//! The paper's counting algorithm (Theorem 3.2(1)) splits into a
//! **per-query** phase — normalize into disjuncts, build the `φ⁺`
//! decomposition (Section 5.4), measure core/contract treewidths — and
//! a **per-structure** phase — the sentence check plus the signed
//! `φ*_af` sum. The decomposition depends only on `φ`, which is exactly
//! what the data-complexity reading of the trichotomy assumes is
//! amortized. [`PreparedQuery`] makes that split explicit:
//!
//! * [`PreparedQuery::prepare`] runs the per-query phase once and
//!   memoizes it in a **process-wide cache keyed by the query's
//!   canonical form**, so repeated preparation of α-equivalent or
//!   reordered queries is a hash lookup;
//! * [`PreparedQuery::count`] / [`PreparedQuery::count_with`] run only
//!   the per-structure phase;
//! * [`count_ep_batch`] / [`PreparedQuery::count_batch`] fan the
//!   per-structure phase across the shared `epq-pool` workers, one job
//!   per structure, results in input order and **bit-identical** to a
//!   sequential loop (each job is the sequential per-structure
//!   algorithm; the pool only schedules which worker runs it);
//! * [`PreparedQuery::analysis`] computes the trichotomy width measures
//!   **lazily** and shares them through the same cache entry — counting
//!   never pays for treewidth, and classification is computed at most
//!   once per canonical query per process.
//!
//! The canonical cache key renders each normalized disjunct's
//! Chandra–Merlin structure with liberal elements fixed at their
//! canonical positions and quantified elements relabeled to the
//! lexicographically minimal layout, then sorts the disjunct encodings.
//! Equal keys therefore guarantee semantically identical queries (same
//! counts on every structure, same width profile); renamed bound
//! variables, reordered atoms, and reordered disjuncts all collide onto
//! one entry.

use crate::classify::{analyze_decomposition, classify_widths, QueryAnalysis, Regime};
use crate::count::count_ep_with;
use crate::plus::{plus_decomposition_of_normalized, PlusDecomposition};
use epq_bigint::Natural;
use epq_counting::engines::{FptEngine, PpCountingEngine};
use epq_logic::query::LogicError;
use epq_logic::{dnf, PpFormula, Query};
use epq_structures::{Signature, Structure};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Above this many quantified variables per disjunct, the key falls
/// back to the identity labeling (still sound — only cache *hits* are
/// lost) instead of minimizing over `q!` relabelings.
const MAX_CANON_QUANTIFIED: usize = 8;

/// Entry bound for the process-wide cache: before any insert would
/// push the map past this size, arbitrary entries are evicted one at a
/// time (no per-entry bookkeeping; a mixed workload never flips to a
/// fully cold cache), bounding memory under adversarial query streams.
const CACHE_CAPACITY: usize = 4096;

/// The shared, immutable product of the per-query phase: the `φ⁺`
/// decomposition eagerly, the width analysis lazily.
struct PreparedEntry {
    decomposition: PlusDecomposition,
    analysis: OnceLock<QueryAnalysis>,
}

impl PreparedEntry {
    fn analysis(&self) -> &QueryAnalysis {
        self.analysis
            .get_or_init(|| analyze_decomposition(&self.decomposition))
    }
}

type Cache = Mutex<HashMap<String, Arc<PreparedEntry>>>;

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Inserts a key while holding the map at or under [`CACHE_CAPACITY`]
/// entries: arbitrary entries are evicted one at a time first. Every
/// insert path — canonical keys, fast keys, and alias inserts on the
/// canonical-hit path — goes through here, so the bound holds under
/// any query stream.
fn insert_bounded(
    map: &mut HashMap<String, Arc<PreparedEntry>>,
    key: String,
    entry: Arc<PreparedEntry>,
) {
    while map.len() >= CACHE_CAPACITY && !map.contains_key(&key) {
        match map.keys().next().cloned() {
            Some(k) => {
                map.remove(&k);
            }
            None => break,
        }
    }
    map.insert(key, entry);
}

static CACHE_HITS: AtomicUsize = AtomicUsize::new(0);
static CACHE_MISSES: AtomicUsize = AtomicUsize::new(0);

/// A snapshot of the classifier-cache counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Prepares answered from the cache.
    pub hits: usize,
    /// Prepares that ran the per-query phase.
    pub misses: usize,
    /// Entries currently resident.
    pub entries: usize,
}

/// Returns the process-wide classifier-cache counters.
pub fn classifier_cache_stats() -> CacheStats {
    CacheStats {
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
        entries: cache().lock().expect("cache poisoned").len(),
    }
}

/// Empties the process-wide classifier cache (the counters keep
/// accumulating). Intended for tests and benchmarks that need a cold
/// cache; concurrent [`PreparedQuery::prepare`] calls simply miss.
pub fn classifier_cache_clear() {
    cache().lock().expect("cache poisoned").clear();
}

/// An ep-query with its whole per-query phase precomputed: parsed
/// query, `φ⁺` decomposition, (lazily) the trichotomy analysis, and a
/// chosen counting engine. See the [module docs](self).
pub struct PreparedQuery {
    query: Query,
    signature: Signature,
    entry: Arc<PreparedEntry>,
    engine: Box<dyn PpCountingEngine>,
    cache_hit: bool,
}

impl PreparedQuery {
    /// Runs (or looks up) the per-query phase. The default engine is
    /// [`FptEngine`]; swap it with [`PreparedQuery::with_engine`].
    pub fn prepare(query: &Query, signature: &Signature) -> Result<Self, LogicError> {
        Self::build(query, signature, true)
    }

    /// [`PreparedQuery::prepare`] bypassing the process-wide cache
    /// (always recomputes; never inserts). For benchmarks measuring the
    /// un-amortized pipeline and for tests that need isolation.
    pub fn prepare_uncached(query: &Query, signature: &Signature) -> Result<Self, LogicError> {
        Self::build(query, signature, false)
    }

    fn build(query: &Query, signature: &Signature, use_cache: bool) -> Result<Self, LogicError> {
        // The DNF + normalization pass is shared between the key and
        // the decomposition, so a cache hit pays it exactly once.
        let raw = dnf::disjuncts(query, signature)?;
        let disjuncts = dnf::normalize(raw);
        if !use_cache {
            let entry = Arc::new(PreparedEntry {
                decomposition: plus_decomposition_of_normalized(disjuncts),
                analysis: OnceLock::new(),
            });
            return Ok(Self::from_entry(query, signature, entry, false));
        }
        // Two probes share one key namespace (equal strings imply
        // equivalent queries regardless of which labeling produced
        // them): first the cheap identity-labeled key — repeated
        // preparation of the same spelling is a hash lookup — then the
        // canonical (minimized) key that folds α-variants together.
        // The O(q!) minimization runs only when the cheap probe
        // misses, and its result is aliased so it runs once per
        // spelling.
        let fast_key = encoded_key(signature, query.liberal_count(), &disjuncts, false);
        {
            let map = cache().lock().expect("cache poisoned");
            if let Some(entry) = map.get(&fast_key).cloned() {
                drop(map);
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                return Ok(Self::from_entry(query, signature, entry, true));
            }
        }
        let canonical_key = encoded_key(signature, query.liberal_count(), &disjuncts, true);
        {
            let mut map = cache().lock().expect("cache poisoned");
            if let Some(entry) = map.get(&canonical_key).cloned() {
                insert_bounded(&mut map, fast_key, Arc::clone(&entry));
                drop(map);
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                return Ok(Self::from_entry(query, signature, entry, true));
            }
        }
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(PreparedEntry {
            decomposition: plus_decomposition_of_normalized(disjuncts),
            analysis: OnceLock::new(),
        });
        let mut map = cache().lock().expect("cache poisoned");
        // A racing prepare may have inserted the same key; keep the
        // resident entry so lazy analyses are shared.
        let entry = match map.get(&canonical_key).cloned() {
            Some(resident) => resident,
            None => {
                insert_bounded(&mut map, canonical_key, Arc::clone(&entry));
                entry
            }
        };
        insert_bounded(&mut map, fast_key, Arc::clone(&entry));
        drop(map);
        Ok(Self::from_entry(query, signature, entry, false))
    }

    fn from_entry(
        query: &Query,
        signature: &Signature,
        entry: Arc<PreparedEntry>,
        cache_hit: bool,
    ) -> Self {
        PreparedQuery {
            query: query.clone(),
            signature: signature.clone(),
            entry,
            engine: Box::new(FptEngine),
            cache_hit,
        }
    }

    /// Replaces the counting engine used by [`PreparedQuery::count`]
    /// and [`PreparedQuery::count_batch`].
    pub fn with_engine(mut self, engine: Box<dyn PpCountingEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// The parsed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The signature the query was prepared against.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The `φ⁺` decomposition (shared with every canonically-equal
    /// prepared query in the process).
    pub fn decomposition(&self) -> &PlusDecomposition {
        &self.entry.decomposition
    }

    /// Number of liberal variables of the query.
    pub fn liberal_count(&self) -> usize {
        self.query.liberal_count()
    }

    /// The chosen counting engine.
    pub fn engine(&self) -> &dyn PpCountingEngine {
        self.engine.as_ref()
    }

    /// Whether this preparation was answered from the process-wide
    /// cache.
    pub fn was_cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// The trichotomy width analysis of `φ⁺`, computed on first access
    /// and memoized in the shared cache entry.
    pub fn analysis(&self) -> &QueryAnalysis {
        self.entry.analysis()
    }

    /// The Theorem 3.2 regime at width bound `w` (see
    /// [`classify_widths`]).
    pub fn regime(&self, width_bound: usize) -> Regime {
        let analysis = self.analysis();
        classify_widths(
            analysis.max_core_treewidth,
            analysis.max_contract_treewidth,
            width_bound,
        )
    }

    /// Counts `|φ(B)|` with the prepared engine (per-structure phase
    /// only).
    pub fn count(&self, b: &Structure) -> Natural {
        self.count_with(b, self.engine.as_ref())
    }

    /// Counts `|φ(B)|` with an explicit engine.
    pub fn count_with(&self, b: &Structure, engine: &dyn PpCountingEngine) -> Natural {
        count_ep_with(
            &self.entry.decomposition,
            self.query.liberal_count(),
            b,
            engine,
        )
    }

    /// Counts `|φ(Bᵢ)|` for every structure, fanning one job per
    /// structure across up to `threads` pool workers. Results come back
    /// in input order and are bit-identical to a sequential
    /// [`PreparedQuery::count`] loop at every thread count (each job
    /// *is* that sequential per-structure computation).
    pub fn count_batch(&self, structures: &[Structure], threads: usize) -> Vec<Natural> {
        let decomposition = &self.entry.decomposition;
        let liberal_count = self.query.liberal_count();
        let engine = self.engine.as_ref();
        let jobs: Vec<_> = structures
            .iter()
            .map(|b| move || count_ep_with(decomposition, liberal_count, b, engine))
            .collect();
        epq_pool::run_jobs(threads.max(1), jobs)
    }
}

/// Counts a prepared query over a batch of structures on every
/// available hardware thread — the amortized-classification,
/// parallel-fan-out entry point of the crate. See
/// [`PreparedQuery::count_batch`] for the determinism contract.
pub fn count_ep_batch(prepared: &PreparedQuery, structures: &[Structure]) -> Vec<Natural> {
    prepared.count_batch(structures, epq_pool::available_threads())
}

/// [`crate::classify::classify_query`] through the process-wide
/// prepared-query cache: the expensive `φ⁺`/treewidth work runs at most
/// once per canonical query per process.
pub fn classify_query_cached(
    query: &Query,
    signature: &Signature,
) -> Result<QueryAnalysis, LogicError> {
    Ok(PreparedQuery::prepare(query, signature)?.analysis().clone())
}

/// The cache key: signature layout, liberal count, and the sorted
/// encodings of the normalized disjuncts. With `canonical` set, each
/// disjunct's quantified elements are relabeled to the
/// lexicographically minimal layout (α-variants collide); without it,
/// the identity labeling is used (cheap; exact spellings collide).
/// Both flavors share one namespace soundly: equal key strings mean
/// equal encoded structure views — under *some* labeling — so the
/// queries are equivalent however the keys were produced.
fn encoded_key(
    signature: &Signature,
    liberal_count: usize,
    disjuncts: &[PpFormula],
    canonical: bool,
) -> String {
    let mut key = String::from("sig=");
    for (_, name, arity) in signature.iter() {
        let _ = write!(key, "{name}/{arity},");
    }
    let _ = write!(key, ";s={liberal_count};d=");
    let mut parts: Vec<String> = disjuncts.iter().map(|d| encode_pp(d, canonical)).collect();
    parts.sort_unstable();
    key.push_str(&parts.join("|"));
    key
}

/// An encoding of one disjunct's structure view `(A, S)`: liberal
/// elements keep their canonical positions `0..s` (sorted by name —
/// renaming free variables order-preservingly cannot change them),
/// quantified elements are either kept as-is (`canonical = false`) or
/// relabeled to minimize the encoding lexicographically, and tuples
/// are listed sorted per relation. Two disjuncts encode equally iff
/// their structure views coincide up to a relabeling of quantified
/// elements — which makes the formulas logically equivalent, hence
/// count- and width-equivalent.
fn encode_pp(pp: &PpFormula, canonical: bool) -> String {
    let s = pp.liberal_count();
    let n = pp.structure().universe_size();
    let q = n - s;
    let encode = |perm: &[u32]| -> String {
        let map = |e: u32| -> u32 {
            if (e as usize) < s {
                e
            } else {
                s as u32 + perm[e as usize - s]
            }
        };
        let mut out = String::new();
        let _ = write!(out, "n{n}s{s}");
        for (rel, name, _) in pp.signature().iter() {
            let mut tuples: Vec<Vec<u32>> = pp
                .structure()
                .relation(rel)
                .tuples()
                .map(|t| t.iter().map(|&e| map(e)).collect())
                .collect();
            tuples.sort_unstable();
            let _ = write!(out, "{name}:");
            for t in tuples {
                let _ = write!(out, "{t:?}");
            }
            out.push(';');
        }
        out
    };
    let identity: Vec<u32> = (0..q as u32).collect();
    if !canonical || q > MAX_CANON_QUANTIFIED {
        // Identity labeling: either the cheap first-probe key, or the
        // sound fallback for very wide quantifier prefixes (identical
        // spellings still collide; α-variants may miss the cache).
        return encode(&identity);
    }
    let mut best: Option<String> = None;
    let mut perm = identity;
    for_each_permutation(&mut perm, 0, &mut |p| {
        let enc = encode(p);
        if best.as_ref().map_or(true, |b| enc < *b) {
            best = Some(enc);
        }
    });
    best.expect("at least the identity permutation is visited")
}

/// Visits every permutation of `items` (in-place, restoring order).
fn for_each_permutation(items: &mut Vec<u32>, k: usize, f: &mut impl FnMut(&[u32])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        for_each_permutation(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_counting::brute::count_ep_brute;
    use epq_counting::engines::BruteForceEngine;
    use epq_logic::parser::parse_query;
    use epq_logic::query::infer_signature;

    /// Serializes every test in this module that touches the
    /// process-wide cache (all `prepare` calls mutate the hit/miss
    /// counters), so `classifier_cache_clear` and the counter
    /// assertions cannot race a sibling test.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn prepare_text(text: &str) -> PreparedQuery {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        PreparedQuery::prepare(&q, &sig).unwrap()
    }

    fn example_c() -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 3)] {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    #[test]
    fn cache_hits_on_alpha_equivalent_and_reordered_queries() {
        let _guard = test_lock();
        // A relation name unique to this test keeps the key disjoint
        // from every other test in the binary.
        let first = prepare_text("(x) := (exists u, v . R9(x,u) & R9(u,v)) | R9(x,x)");
        assert!(!first.was_cache_hit(), "first preparation must miss");
        // Same query with renamed bound variables, reordered atoms,
        // reordered disjuncts, and a renamed (order-preserved) free
        // variable.
        let second = prepare_text("(w) := R9(w,w) | (exists p, q . R9(q,p) & R9(w,q))");
        assert!(
            second.was_cache_hit(),
            "canonically-equal query must hit the classifier cache"
        );
        // The shared entry carries one analysis for both spellings.
        assert_eq!(
            first.analysis().max_core_treewidth,
            second.analysis().max_core_treewidth
        );
        // And the cached decomposition still counts correctly.
        let b = {
            let sig = Signature::from_symbols([("R9", 2)]);
            let mut s = Structure::new(sig, 3);
            s.add_tuple_named("R9", &[0, 1]);
            s.add_tuple_named("R9", &[1, 2]);
            s.add_tuple_named("R9", &[2, 2]);
            s
        };
        assert_eq!(first.count(&b), second.count(&b));
        assert_eq!(
            first.count(&b),
            count_ep_brute(second.query(), &b),
            "cached decomposition agrees with brute force"
        );
    }

    #[test]
    fn clear_empties_the_cache() {
        let _guard = test_lock();
        let text = "(x, y) := R8(x,y) | (exists a . R8(a,a))";
        assert!(!prepare_text(text).was_cache_hit());
        assert!(prepare_text(text).was_cache_hit());
        classifier_cache_clear();
        assert!(
            !prepare_text(text).was_cache_hit(),
            "a cleared cache must miss again"
        );
        let stats = classifier_cache_stats();
        assert!(stats.entries >= 1);
        assert!(stats.hits >= 1 && stats.misses >= 2);
    }

    #[test]
    fn prepare_uncached_never_touches_the_cache() {
        let _guard = test_lock();
        let q = parse_query("(x) := R7(x,x)").unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        let before = classifier_cache_stats();
        let p = PreparedQuery::prepare_uncached(&q, &sig).unwrap();
        assert!(!p.was_cache_hit());
        let after = classifier_cache_stats();
        assert_eq!(before.hits, after.hits);
        assert_eq!(before.misses, after.misses);
    }

    #[test]
    fn count_matches_count_ep_on_paper_example() {
        let _guard = test_lock();
        let p = prepare_text("(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))");
        assert_eq!(p.count(&example_c()).to_u64(), Some(24));
        assert_eq!(
            p.count_with(&example_c(), &BruteForceEngine).to_u64(),
            Some(24)
        );
    }

    #[test]
    fn batch_counts_are_bit_identical_to_a_sequential_loop() {
        let _guard = test_lock();
        let p = prepare_text("(x, y) := E(x,y) | (exists a . E(a,a) & E(x,a))");
        let structures: Vec<Structure> = (0..9usize)
            .map(|i| {
                let sig = Signature::from_symbols([("E", 2)]);
                let mut s = Structure::new(sig, 2 + i % 3);
                s.add_tuple_named("E", &[0, (i % 2) as u32]);
                if i % 3 == 2 {
                    s.add_tuple_named("E", &[1, 1]);
                }
                s
            })
            .collect();
        let sequential: Vec<Natural> = structures.iter().map(|b| p.count(b)).collect();
        for threads in [1usize, 2, 4] {
            assert_eq!(
                p.count_batch(&structures, threads),
                sequential,
                "threads = {threads}"
            );
        }
        assert_eq!(count_ep_batch(&p, &structures), sequential);
    }

    #[test]
    fn regime_reads_off_the_lazy_analysis() {
        let _guard = test_lock();
        let p = prepare_text("E(x,y) & E(y,z) & E(x,z)");
        assert_eq!(p.analysis().max_core_treewidth, 2);
        assert_eq!(p.regime(2), Regime::Fpt);
        assert_eq!(p.regime(1), Regime::SharpCliqueHard);
    }

    #[test]
    fn distinct_queries_get_distinct_keys() {
        let sig = Signature::from_symbols([("E", 2)]);
        let key_of = |text: &str| {
            let q = parse_query(text).unwrap();
            let raw = dnf::disjuncts(&q, &sig).unwrap();
            let normalized = dnf::normalize(raw);
            encoded_key(&sig, q.liberal_count(), &normalized, true)
        };
        // Liberal order matters (E(x,y) vs E(y,x) count differently on
        // asymmetric structures only via the liberal positions, but
        // their decompositions differ).
        assert_ne!(key_of("E(x,y)"), key_of("E(y,x)"));
        assert_ne!(key_of("E(x,y)"), key_of("(x,y,z) := E(x,y)"));
        assert_ne!(key_of("E(x,y)"), key_of("E(x,y) & E(y,x)"));
        // α-variants collide.
        assert_eq!(
            key_of("(x) := exists u, v . E(x,u) & E(u,v)"),
            key_of("(x) := exists a, b . E(b,a) & E(x,b)")
        );
    }
}
