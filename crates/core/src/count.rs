//! The complete ep answer-counting algorithm (the forward direction of
//! the equivalence theorem; the algorithm behind Theorem 3.2(1)).
//!
//! Given `φ(V)` and **B**:
//!
//! 1. if some **sentence disjunct** of (normalized) `φ` holds on **B**,
//!    every assignment satisfies `φ`: return `|B|^|V|`;
//! 2. otherwise `φ` and its all-free part agree pointwise on **B**, so
//!    return the signed `φ*_af` sum — where a term that entails a
//!    sentence disjunct contributes 0 (its answer set is empty when no
//!    sentence disjunct holds), exactly the appendix's answer policy for
//!    queries outside `φ⁻_af`.
//!
//! Each surviving pp count is delegated to a pluggable engine (the FPT
//! algorithm by default), which is what makes the whole pipeline FPT when
//! `φ⁺` satisfies the tractability condition.

use crate::plus::PlusDecomposition;
use crate::prepared::PreparedQuery;
use epq_bigint::{Integer, Natural};
use epq_counting::engines::PpCountingEngine;
use epq_logic::query::LogicError;
use epq_logic::Query;
use epq_structures::{hom, Signature, Structure};

/// Whether a sentence pp-formula holds on **B** (a plain homomorphism
/// check on the atom part; isolated liberal elements need a nonempty
/// universe).
pub fn sentence_holds(theta: &epq_logic::PpFormula, b: &Structure) -> bool {
    debug_assert!(theta.is_sentence());
    if theta.structure().universe_size() > 0 && b.universe_size() == 0 {
        return false;
    }
    hom::homomorphism_exists(theta.structure(), b)
}

/// Counts `|φ(B)|` using a precomputed [`PlusDecomposition`].
pub fn count_ep_with(
    decomposition: &PlusDecomposition,
    liberal_count: usize,
    b: &Structure,
    engine: &dyn PpCountingEngine,
) -> Natural {
    for theta in &decomposition.sentences {
        if sentence_holds(theta, b) {
            return Natural::from(b.universe_size()).pow(liberal_count as u32);
        }
    }
    // No sentence disjunct holds: terms outside φ⁻_af count 0. The
    // membership mask is precomputed at decomposition time, so this
    // per-structure hot path allocates nothing per call.
    let mut acc = Integer::zero();
    for (term, &kept) in decomposition.star_af.iter().zip(&decomposition.kept) {
        if !kept {
            continue;
        }
        let count = Integer::from(engine.count(&term.formula, b));
        acc += &(&term.coefficient * &count);
    }
    assert!(!acc.is_negative(), "ep count must be non-negative");
    acc.into_magnitude()
}

/// Counts `|φ(B)|` for an arbitrary ep-query: the paper's counting
/// algorithm end to end (normalize → sentence check → signed `φ*` sum).
///
/// A thin wrapper over [`PreparedQuery`]: the per-query phase goes
/// through the process-wide prepared-query cache, so repeated calls
/// with canonically-equal queries pay it once. Hold a [`PreparedQuery`]
/// directly (or use [`crate::prepared::count_ep_batch`]) to amortize
/// explicitly over many structures.
pub fn count_ep(
    query: &Query,
    signature: &Signature,
    b: &Structure,
    engine: &dyn PpCountingEngine,
) -> Result<Natural, LogicError> {
    Ok(PreparedQuery::prepare(query, signature)?.count_with(b, engine))
}

/// Convenience: parse, infer the signature, and count with the FPT
/// engine. Panics on malformed input — intended for examples and tests.
pub fn count_ep_text(query_text: &str, b: &Structure) -> Natural {
    let query = epq_logic::parser::parse_query(query_text).expect("query parses");
    epq_logic::query::check_against_signature(query.formula(), b.signature())
        .expect("query matches the structure's signature");
    let prepared =
        PreparedQuery::prepare(&query, b.signature()).expect("prepared query construction");
    prepared.count(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_counting::brute::count_ep_brute;
    use epq_counting::engines::{BruteForceEngine, FptEngine};
    use epq_logic::parser::parse_query;
    use epq_structures::Signature;

    fn example_c() -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 3)] {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    fn check_against_brute(text: &str, b: &Structure) {
        let q = parse_query(text).unwrap();
        let sig = b.signature().clone();
        let expected = count_ep_brute(&q, b);
        for engine in [&FptEngine as &dyn PpCountingEngine, &BruteForceEngine] {
            let got = count_ep(&q, &sig, b, engine).unwrap();
            assert_eq!(got, expected, "query {text} with engine {}", engine.name());
        }
    }

    #[test]
    fn matches_brute_force_on_paper_examples() {
        let b = example_c();
        for text in [
            // Example 4.1.
            "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))",
            // Example 4.2.
            "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))",
            // Example 5.21 (with the sentence disjunct).
            "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y)) \
             | (exists a, b, c, d . E(a,b) & E(b,c) & E(c,d))",
        ] {
            check_against_brute(text, &b);
        }
    }

    #[test]
    fn sentence_disjunct_saturates_the_count() {
        let b = example_c();
        // C contains a directed 3-path, so the sentence disjunct holds and
        // the count is |B|^4 = 256.
        let text = "(w,x,y,z) := E(x,y) | (exists a, b, c, d . E(a,b) & E(b,c) & E(c,d))";
        assert_eq!(count_ep_text(text, &b).to_u64(), Some(256));
    }

    #[test]
    fn sentence_disjunct_false_reduces_to_free_part() {
        // Structure with edges but no directed 2-path: 0→1, 2→3.
        let sig = Signature::from_symbols([("E", 2)]);
        let mut b = Structure::new(sig, 4);
        b.add_tuple_named("E", &[0, 1]);
        b.add_tuple_named("E", &[2, 3]);
        let text = "(x, y) := E(x,y) | (exists a, b, c . E(a,b) & E(b,c))";
        // No 2-path → count = |E| = 2.
        assert_eq!(count_ep_text(text, &b).to_u64(), Some(2));
        check_against_brute(text, &b);
    }

    #[test]
    fn mixed_queries_against_brute_force() {
        let b = example_c();
        for text in [
            "(x, y) := E(x,y) | E(y,x)",
            "(x, y, z) := E(x,y) | E(y,z)",
            "(x) := E(x,x) | (exists u . E(x,u) & E(u,u))",
            "(x) := (exists u . E(x,u)) & (E(x,x) | (exists v . E(v,x)))",
            "(x, y) := (E(x,y) & E(y,x)) | (exists a . E(a,a))",
        ] {
            check_against_brute(text, &b);
        }
    }

    #[test]
    fn pure_sentence_queries_count_zero_or_one() {
        let b = example_c();
        assert_eq!(count_ep_text("exists a . E(a,a)", &b).to_u64(), Some(1));
        let sig = Signature::from_symbols([("E", 2)]);
        let mut no_loop = Structure::new(sig, 3);
        no_loop.add_tuple_named("E", &[0, 1]);
        assert_eq!(
            count_ep_text("exists a . E(a,a)", &no_loop).to_u64(),
            Some(0)
        );
        assert_eq!(
            count_ep_text("(exists a . E(a,a)) | (exists b, c . E(b,c))", &no_loop).to_u64(),
            Some(1)
        );
    }

    #[test]
    fn empty_structure() {
        let sig = Signature::from_symbols([("E", 2)]);
        let empty = Structure::new(sig, 0);
        assert_eq!(count_ep_text("E(x,y) | E(y,x)", &empty).to_u64(), Some(0));
    }

    #[test]
    fn filtered_star_terms_do_not_contribute() {
        // φ = E(x,y) ∨ F(x,y) ∨ ∃a,b(E(a,b)∧F(a,b)): the E∧F star term is
        // outside φ⁻_af. On a structure where the sentence fails, the term
        // must count 0 — consistency check against brute force.
        let sig = Signature::from_symbols([("E", 2), ("F", 2)]);
        let mut b = Structure::new(sig.clone(), 3);
        b.add_tuple_named("E", &[0, 1]);
        b.add_tuple_named("F", &[1, 2]);
        let text = "(x, y) := E(x,y) | F(x,y) | (exists a, b . E(a,b) & F(a,b))";
        let q = parse_query(text).unwrap();
        let expected = count_ep_brute(&q, &b);
        let got = count_ep(&q, &sig, &b, &FptEngine).unwrap();
        assert_eq!(got, expected);
        assert_eq!(got.to_u64(), Some(2));
    }
}
