//! Inclusion–exclusion expansion and the `φ*` cancellation
//! (Section 5.3, Proposition 5.16; Examples 4.2 and 5.15).
//!
//! For a disjunctive ep-formula `φ = φ₁ ∨ … ∨ φ_s` (disjuncts sharing the
//! liberal set), inclusion–exclusion gives
//!
//! ```text
//! |φ(B)| = Σ_{∅≠J⊆[s]} (−1)^{|J|+1} |φ_J(B)|,    φ_J = ⋀_{j∈J} φ_j.
//! ```
//!
//! Terms whose formulas are **counting equivalent** (Theorem 5.4) are
//! merged by adding coefficients; zero coefficients vanish. The surviving
//! signed formulas are `φ*` — in Example 4.2/5.15 the seven raw terms
//! collapse to `3·|φ₁(B)| − 2·|(φ₁∧φ₃)(B)|`, eliminating the only
//! treewidth-2 terms.
//!
//! One deliberate refinement over the paper's text: each conjunction is
//! replaced by its **core** before merging. Cores are logically
//! equivalent (answer-preserving, so all counts are unchanged), make
//! counting-equivalence checks cheaper, and are the objects whose
//! treewidth the tractability condition measures anyway.

use crate::equivalence::counting_equivalent;
use epq_bigint::{Integer, Natural};
use epq_counting::PpCountingEngine;
use epq_logic::PpFormula;
use epq_structures::Structure;

/// A pp-formula with an integer coefficient in a signed sum.
#[derive(Clone, Debug)]
pub struct SignedPp {
    /// The formula.
    pub formula: PpFormula,
    /// Its (nonzero, after cancellation) coefficient.
    pub coefficient: Integer,
}

/// The raw inclusion–exclusion expansion: all `2^s − 1` signed
/// conjunctions, subsets ordered by size then lexicographically, each
/// replaced by its core.
///
/// # Panics
/// Panics on an empty disjunct list, or if `s` exceeds 24 (the expansion
/// would be astronomically large; the formula is the parameter).
pub fn inclusion_exclusion_terms(disjuncts: &[PpFormula]) -> Vec<SignedPp> {
    let s = disjuncts.len();
    assert!(s >= 1, "inclusion-exclusion needs at least one disjunct");
    assert!(
        s <= 24,
        "inclusion-exclusion over {s} disjuncts is infeasible"
    );
    let mut subsets: Vec<u32> = (1..(1u32 << s)).collect();
    subsets.sort_by_key(|j| (j.count_ones(), *j));
    subsets
        .into_iter()
        .map(|j| {
            let members: Vec<&PpFormula> = (0..s)
                .filter(|i| j & (1 << i) != 0)
                .map(|i| &disjuncts[i])
                .collect();
            let conjunction = PpFormula::conjoin(&members);
            let sign = if j.count_ones() % 2 == 1 { 1 } else { -1 };
            SignedPp {
                formula: conjunction.core(),
                coefficient: Integer::from(sign),
            }
        })
        .collect()
}

/// Merges counting-equivalent terms and drops zero coefficients,
/// producing `φ*` with its coefficients (Proposition 5.16). Terms keep
/// first-appearance order.
pub fn merge_terms(terms: Vec<SignedPp>) -> Vec<SignedPp> {
    let mut merged: Vec<SignedPp> = Vec::new();
    for term in terms {
        match merged
            .iter_mut()
            .find(|m| counting_equivalent(&m.formula, &term.formula))
        {
            Some(m) => m.coefficient += &term.coefficient,
            None => merged.push(term),
        }
    }
    merged.retain(|m| !m.coefficient.is_zero());
    merged
}

/// The `φ*` of a disjunct list: inclusion–exclusion then cancellation.
/// For every structure **B**: `|⋁ disjuncts (B)| = Σ cᵢ·|φᵢ*(B)|`.
pub fn star(disjuncts: &[PpFormula]) -> Vec<SignedPp> {
    merge_terms(inclusion_exclusion_terms(disjuncts))
}

/// Evaluates the signed sum `Σ cᵢ·|φᵢ(B)|` with the given engine. The
/// result of a `φ*` evaluation is a count, hence non-negative; this is
/// asserted.
pub fn evaluate_signed_sum(
    terms: &[SignedPp],
    b: &Structure,
    engine: &dyn PpCountingEngine,
) -> Natural {
    let mut acc = Integer::zero();
    for term in terms {
        let count = Integer::from(engine.count(&term.formula, b));
        acc += &(&term.coefficient * &count);
    }
    assert!(
        !acc.is_negative(),
        "signed φ* sum must be a count (got {acc})"
    );
    acc.into_magnitude()
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_counting::engines::FptEngine;
    use epq_logic::parser::parse_query;
    use epq_logic::{dnf, Query};
    use epq_structures::Signature;

    fn disjuncts_of(text: &str) -> (Query, Vec<PpFormula>) {
        let q = parse_query(text).unwrap();
        let sig = epq_logic::query::infer_signature([q.formula()]).unwrap();
        let ds = dnf::disjuncts(&q, &sig).unwrap();
        (q, ds)
    }

    fn example_c() -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 3)] {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    /// Example 4.2 / 5.15: φ = φ1 ∨ φ2 ∨ φ3 over V = {w,x,y,z} with
    /// φ1 = E(x,y)∧E(y,z), φ2 = E(z,w)∧E(w,x), φ3 = E(w,x)∧E(x,y).
    fn example_4_2() -> (Query, Vec<PpFormula>) {
        disjuncts_of("(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))")
    }

    #[test]
    fn example_5_15_star_has_two_terms_with_coefficients_3_and_minus_2() {
        let (_, ds) = example_4_2();
        assert_eq!(ds.len(), 3);
        let raw = inclusion_exclusion_terms(&ds);
        assert_eq!(raw.len(), 7);
        let star_terms = star(&ds);
        assert_eq!(star_terms.len(), 2, "φ* = {{φ1, φ1∧φ3}}");
        let mut coefficients: Vec<i64> = star_terms
            .iter()
            .map(|t| t.coefficient.to_i64().unwrap())
            .collect();
        coefficients.sort_unstable();
        assert_eq!(coefficients, vec![-2, 3]);
        // The 3-coefficient term is a single path of length 2 (3 atoms
        // would be the pair-conjunction): check atom counts.
        let three = star_terms
            .iter()
            .find(|t| t.coefficient.to_i64() == Some(3))
            .unwrap();
        assert_eq!(three.formula.structure().tuple_count(), 2);
        let minus_two = star_terms
            .iter()
            .find(|t| t.coefficient.to_i64() == Some(-2))
            .unwrap();
        assert_eq!(minus_two.formula.structure().tuple_count(), 3);
    }

    #[test]
    fn example_4_2_cancelled_terms_had_higher_treewidth() {
        // The cancelled terms (the 4-cycle conjunctions) have treewidth 2;
        // the surviving φ* terms have treewidth 1 — the paper's point
        // about the savings.
        let (_, ds) = example_4_2();
        let raw = inclusion_exclusion_terms(&ds);
        let star_terms = star(&ds);
        let tw = |pp: &PpFormula| {
            epq_graph::treewidth_exact(&pp.core().structure().gaifman_graph()).unwrap()
        };
        let max_raw = raw.iter().map(|t| tw(&t.formula)).max().unwrap();
        let max_star = star_terms.iter().map(|t| tw(&t.formula)).max().unwrap();
        assert_eq!(max_raw, 2);
        assert_eq!(max_star, 1);
    }

    #[test]
    fn star_identity_on_example_4_1() {
        let (q, ds) = disjuncts_of("(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))");
        let b = example_c();
        let star_terms = star(&ds);
        let via_star = evaluate_signed_sum(&star_terms, &b, &FptEngine);
        let brute = epq_counting::brute::count_ep_brute(&q, &b);
        assert_eq!(via_star, brute);
    }

    #[test]
    fn star_identity_on_example_4_2() {
        let (q, ds) = example_4_2();
        let b = example_c();
        let star_terms = star(&ds);
        let via_star = evaluate_signed_sum(&star_terms, &b, &FptEngine);
        let brute = epq_counting::brute::count_ep_brute(&q, &b);
        assert_eq!(via_star, brute);
    }

    #[test]
    fn star_of_single_disjunct_is_itself() {
        let (_, ds) = disjuncts_of("E(x,y) & E(y,z)");
        let star_terms = star(&ds);
        assert_eq!(star_terms.len(), 1);
        assert_eq!(star_terms[0].coefficient.to_i64(), Some(1));
    }

    #[test]
    fn duplicate_disjuncts_collapse() {
        // φ ∨ φ: |φ∨φ| = 2|φ| − |φ∧φ| = |φ| → φ* = {φ} with coefficient 1.
        let (_, ds) = disjuncts_of("E(x,y) | E(x,y)");
        let star_terms = star(&ds);
        assert_eq!(star_terms.len(), 1);
        assert_eq!(star_terms[0].coefficient.to_i64(), Some(1));
    }

    #[test]
    fn raw_terms_are_ordered_subsets() {
        let (_, ds) = disjuncts_of("A(x) | B(x) | C(x)");
        let raw = inclusion_exclusion_terms(&ds);
        assert_eq!(raw.len(), 7);
        // Sizes: three singletons (+1), three pairs (−1), one triple (+1).
        let signs: Vec<i64> = raw
            .iter()
            .map(|t| t.coefficient.to_i64().unwrap())
            .collect();
        assert_eq!(signs, vec![1, 1, 1, -1, -1, -1, 1]);
    }

    #[test]
    fn signed_sum_rejects_negative_totals() {
        // Constructing a deliberately bogus signed sum must panic.
        let (_, ds) = disjuncts_of("E(x,y)");
        let mut terms = star(&ds);
        terms[0].coefficient = Integer::from(-1);
        let b = example_c();
        let result = std::panic::catch_unwind(|| evaluate_signed_sum(&terms, &b, &FptEngine));
        assert!(result.is_err());
    }
}
