//! Deterministic distinguishing structures: the constructive content of
//! Lemmas 5.12 and 5.13.
//!
//! [`crate::oracle::find_distinguishing_structure`] uses a verified
//! randomized search; this module implements the paper's own
//! constructions as deterministic algorithms:
//!
//! * **Lemma 5.13** ([`separating_structure`]): for two formulas that are
//!   *not* semi-counting equivalent, find a structure on which **every**
//!   pp-formula is satisfiable and the two counts differ. The proof takes
//!   any base witness `B` with differing counts and pads it to `B + kI`;
//!   the counts are polynomials in `k`, so they stay different for some
//!   `k ≤ deg + 1`. We enumerate deterministic base candidates built from
//!   the formulas' own structures (their disjoint unions and blow-ups)
//!   before falling back to a seeded search, then run the padding scan.
//!
//! * **Lemma 5.12** ([`amplified_distinguishing_structure`]): the
//!   induction that merges pairwise separators into one distinguisher.
//!   Given `D` distinguishing the first n−1 representatives, if the n-th
//!   ties with some `φᵢ` on `D`, take a pairwise separator `D′` and form
//!   `C = Dˡ × D′` with `ℓ` chosen so that the gaps `|φ(D)|ˡ` dominate
//!   the maximal `D′`-factor — the paper's inequality, evaluated with
//!   exact bignum arithmetic.

use crate::equivalence::{blow_up, semi_counting_equivalent};
use epq_bigint::Natural;
use epq_counting::brute::count_pp_brute;
use epq_logic::PpFormula;
use epq_structures::{ops, Structure};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lemma 5.13: a structure on which every pp-formula is satisfiable and
/// `|a(·)| ≠ |b(·)|`, both nonzero.
///
/// # Panics
/// Panics if `a` and `b` are semi-counting equivalent (no such structure
/// exists) or if the base-witness search exhausts its budget.
pub fn separating_structure(a: &PpFormula, b: &PpFormula) -> Structure {
    assert!(
        !semi_counting_equivalent(a, b),
        "separating_structure requires non-semi-counting-equivalent formulas"
    );
    let base = base_witness(a, b).expect("base witness search exhausted");
    // Padding scan: counts on B + kI are polynomials in k of degree at
    // most the number of components, so they separate for some small k.
    let degree_bound = a.components().len().max(b.components().len()) + 1;
    for k in 1..=degree_bound.max(2) {
        let padded = ops::add_units(&base, k);
        let ca = count_pp_brute(a, &padded);
        let cb = count_pp_brute(b, &padded);
        if !ca.is_zero() && !cb.is_zero() && ca != cb {
            return padded;
        }
    }
    unreachable!("padding polynomials must separate within the degree bound");
}

/// Finds a base structure where the two counts differ with at least one
/// of them positive (the raw witness behind Lemma 5.13). Deterministic
/// candidates first (built from the formulas themselves), then a seeded
/// random sweep.
fn base_witness(a: &PpFormula, b: &PpFormula) -> Option<Structure> {
    let differ = |s: &Structure| count_pp_brute(a, s) != count_pp_brute(b, s);
    // Candidates derived from the formulas' own structures: each
    // formula's structure, their disjoint union, and 2-fold blow-ups of
    // small element subsets.
    let mut candidates: Vec<Structure> = vec![a.structure().clone(), b.structure().clone()];
    candidates.push(ops::disjoint_union(a.structure(), b.structure()));
    for source in [a.structure(), b.structure()] {
        for e in 0..source.universe_size().min(3) as u32 {
            candidates.push(blow_up(source, &[e], 2));
        }
    }
    for c in &candidates {
        if differ(c) {
            return Some(c.clone());
        }
    }
    // Seeded random sweep with growing universes.
    let signature = a.signature().clone();
    let mut rng = StdRng::seed_from_u64(0xD15C_0517);
    for universe in 1..=8usize {
        for _ in 0..200 {
            let density = rng.gen_range(0.1..0.8);
            let mut s = Structure::new(signature.clone(), universe);
            for (rel, _, arity) in signature.iter() {
                let cells = universe.pow(arity as u32).min(256);
                let mut tuple = vec![0u32; arity];
                for _ in 0..cells {
                    for t in tuple.iter_mut() {
                        *t = rng.gen_range(0..universe as u32);
                    }
                    if rng.gen_bool(density) {
                        s.add_tuple(rel, &tuple);
                    }
                }
            }
            if differ(&s) {
                return Some(s);
            }
        }
    }
    None
}

/// Lemma 5.12 by its inductive proof: builds one structure `C` with
/// every pp-formula satisfiable and all representatives' counts pairwise
/// distinct, by combining pairwise separators with exact-arithmetic
/// product amplification.
///
/// # Panics
/// Panics if two representatives are semi-counting equivalent.
pub fn amplified_distinguishing_structure(representatives: &[&PpFormula]) -> Structure {
    for (i, a) in representatives.iter().enumerate() {
        for b in &representatives[i + 1..] {
            assert!(
                !semi_counting_equivalent(a, b),
                "representatives must be pairwise non-semi-counting-equivalent"
            );
        }
    }
    let signature = match representatives.first() {
        None => return ops::one_point(epq_structures::Signature::new()),
        Some(r) => r.signature().clone(),
    };
    // Base case: the one-point padding of the empty structure satisfies
    // everything; with 0 or 1 representatives we are done.
    let mut current = ops::one_point(signature);
    if representatives.len() <= 1 {
        return current;
    }
    for n in 1..representatives.len() {
        current = extend_distinguisher(&current, &representatives[..n], representatives[n]);
    }
    current
}

/// One induction step: `d` distinguishes `settled`; extend to also
/// distinguish `next`.
fn extend_distinguisher(d: &Structure, settled: &[&PpFormula], next: &PpFormula) -> Structure {
    let count_next = count_pp_brute(next, d);
    let counts: Vec<Natural> = settled.iter().map(|f| count_pp_brute(f, d)).collect();
    debug_assert!(counts.iter().all(|c| !c.is_zero()));
    debug_assert!(!count_next.is_zero());
    let tied = counts.iter().position(|c| *c == count_next);
    let Some(tied) = tied else {
        return d.clone(); // already distinct from everyone
    };
    // D′ separates `next` from the tied representative; both counts on D′
    // are positive and distinct (Lemma 5.13's guarantee).
    let d_prime = separating_structure(settled[tied], next);
    // The D′-factor of any formula is at most M = |D′|^s (s = |lib|).
    let s = next.liberal_count() as u32;
    let m = Natural::from(d_prime.universe_size()).pow(s);
    // Choose ℓ so that for every pair x < y among the D-counts,
    // x^ℓ · M < y^ℓ. Then the D-part gaps dominate any D′ factor.
    let mut all_counts = counts.clone();
    all_counts.push(count_next);
    all_counts.sort();
    all_counts.dedup();
    let mut l = 1u32;
    loop {
        let separated = all_counts.windows(2).all(|w| {
            let low = w[0].pow(l);
            let high = w[1].pow(l);
            &low * &m < high
        });
        if separated {
            break;
        }
        l += 1;
        assert!(
            l <= 64,
            "amplification exponent runaway (counts too close?)"
        );
    }
    // The construction materializes D^ℓ × D′ — existence proofs are free,
    // structures are not. Guard against an infeasible blow-up; callers in
    // that regime should use the randomized search
    // (`crate::oracle::find_distinguishing_structure`) instead.
    let blow_up_size = (d.universe_size() as f64).powi(l as i32) * d_prime.universe_size() as f64;
    assert!(
        blow_up_size <= 250_000.0,
        "Lemma 5.12 amplification would materialize {blow_up_size:.0} elements; \
         use oracle::find_distinguishing_structure for this instance"
    );
    ops::direct_product(&ops::power(d, l as usize), &d_prime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::is_distinguishing;
    use epq_logic::parser::parse_query;
    use epq_structures::Signature;

    fn pp(text: &str) -> PpFormula {
        let sig = Signature::from_symbols([("E", 2)]);
        PpFormula::from_query(&parse_query(text).unwrap(), &sig).unwrap()
    }

    #[test]
    fn separator_for_edge_vs_looped_edge() {
        let a = pp("E(x,y)");
        let b = pp("E(x,y) & E(y,y)");
        let s = separating_structure(&a, &b);
        let ca = count_pp_brute(&a, &s);
        let cb = count_pp_brute(&b, &s);
        assert!(!ca.is_zero() && !cb.is_zero() && ca != cb);
    }

    #[test]
    fn separator_for_different_quantified_shapes() {
        let a = pp("(x) := exists u . E(x,u)");
        let b = pp("(x) := exists u . E(u,x)");
        let s = separating_structure(&a, &b);
        assert_ne!(count_pp_brute(&a, &s), count_pp_brute(&b, &s));
    }

    #[test]
    #[should_panic(expected = "non-semi-counting-equivalent")]
    fn separator_rejects_equivalent_pair() {
        let a = pp("E(x,y)");
        let b = pp("E(y,x)"); // counting equivalent by renaming
        let _ = separating_structure(&a, &b);
    }

    #[test]
    fn amplified_distinguisher_on_three_formulas() {
        let f1 = pp("E(x,y)");
        let f2 = pp("E(x,y) & E(y,y)");
        let f3 = pp("E(x,y) & E(y,x)");
        let c = amplified_distinguishing_structure(&[&f1, &f2, &f3]);
        assert!(is_distinguishing(&c, &[&f1, &f2, &f3]));
    }

    #[test]
    fn amplified_distinguisher_matches_lemma_for_pairs() {
        let f1 = pp("(x, y) := E(x,y) & E(y,x)");
        let f2 = pp("(x, y) := E(x,x) & E(y,y)");
        let c = amplified_distinguishing_structure(&[&f1, &f2]);
        assert!(is_distinguishing(&c, &[&f1, &f2]));
    }

    #[test]
    fn amplified_distinguisher_trivial_cases() {
        let c0 = amplified_distinguishing_structure(&[]);
        assert_eq!(c0.universe_size(), 1);
        let f = pp("E(x,y)");
        let c1 = amplified_distinguishing_structure(&[&f]);
        assert!(!count_pp_brute(&f, &c1).is_zero());
    }

    #[test]
    fn amplified_structure_keeps_every_formula_satisfiable() {
        let f1 = pp("E(x,y)");
        let f2 = pp("E(x,y) & E(y,y)");
        let c = amplified_distinguishing_structure(&[&f1, &f2]);
        // Unrelated formulas must also be satisfiable (Lemma 5.12's first
        // condition) — the one-point padding survives products.
        let probe = pp("E(a,b) & E(b,c) & E(c,a)");
        assert!(!count_pp_brute(&probe, &c).is_zero());
    }
}

#[cfg(test)]
mod end_to_end {
    use super::*;
    use epq_bigint::linalg::solve_transposed_vandermonde;
    use epq_bigint::{Integer, Rational};
    use epq_logic::parser::parse_query;
    use epq_structures::Signature;

    #[test]
    fn vandermonde_recovery_with_amplified_structure() {
        // Two inequivalent formulas, signed sum, recover the two counts
        // from sums on B × C^ℓ with the deterministic C.
        let sig = Signature::from_symbols([("E", 2)]);
        let f1 = PpFormula::from_query(&parse_query("E(x,y)").unwrap(), &sig).unwrap();
        let f2 = PpFormula::from_query(&parse_query("(x, y) := E(x,y) & E(y,y)").unwrap(), &sig)
            .unwrap();
        let c = amplified_distinguishing_structure(&[&f1, &f2]);
        let mut b = Structure::new(sig, 3);
        for (u, v) in [(0, 1), (1, 1), (1, 2)] {
            b.add_tuple_named("E", &[u, v]);
        }
        // "Oracle": w1·|f1(D)| + w2·|f2(D)| with secret weights 1 and 1.
        let oracle = |d: &Structure| count_pp_brute(&f1, d) + count_pp_brute(&f2, d);
        let xs = vec![
            Rational::from(Integer::from(count_pp_brute(&f1, &c))),
            Rational::from(Integer::from(count_pp_brute(&f2, &c))),
        ];
        let ys: Vec<Rational> = (0..2)
            .map(|l| {
                let d = ops::direct_product(&b, &ops::power(&c, l));
                Rational::from(Integer::from(oracle(&d)))
            })
            .collect();
        let w = solve_transposed_vandermonde(&xs, &ys).unwrap();
        assert_eq!(
            w[0].to_integer().unwrap().into_magnitude(),
            count_pp_brute(&f1, &b)
        );
        assert_eq!(
            w[1].to_integer().unwrap().into_magnitude(),
            count_pp_brute(&f2, &b)
        );
    }
}
