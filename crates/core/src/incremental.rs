//! Incremental counting: maintain `|φ(B)|` while **B** grows tuple by
//! tuple.
//!
//! The per-structure phase of the counting algorithm (see
//! [`crate::count`]) is a sentence check plus a signed sum of pp counts
//! — and each of those pieces reads only the relations its formula
//! mentions. [`LiveCount`] exploits that read-set structure to keep the
//! answer count of a [`PreparedQuery`] current over a
//! [`LiveStructure`] without recounting from scratch:
//!
//! * **per-disjunct read sets** — every sentence disjunct and every
//!   kept `φ*` term is keyed on the relations its atoms read; an
//!   insert into relation `R` dirties only the pieces reading `R`, and
//!   every other piece keeps its cached result;
//! * **monotone sentence latches** — inserts only add tuples (the
//!   universe is fixed), so homomorphism existence is monotone: a
//!   sentence disjunct that holds keeps holding, and once one holds
//!   the count is pinned at `|B|^s` forever — reconciliation becomes
//!   O(1);
//! * **cached relational-algebra intermediates** — when the prepared
//!   engine is scan-based
//!   ([`epq_counting::engines::PpCountingEngine::scan_based`], the
//!   `relalg` family), affected terms re-evaluate through an
//!   [`epq_relalg::ScanCache`]: only atoms over dirty relations
//!   rescan, the joins replay on mostly-cached inputs;
//! * **the DP-table fallback** — for every other engine (`fpt`,
//!   `hom-dp`, the brute enumerators) a dirty relation feeds DP
//!   tables or enumeration state that cannot be patched, so each
//!   *affected* term is fully recounted through the engine (clean
//!   terms still come from the cache).
//!
//! Reconciliation is **lazy**: inserts only flip dirty bits, and the
//! affected pieces recompute once per [`LiveCount::current`] call, not
//! once per insert — a burst of inserts between two checkpoints costs
//! one reconciliation. The maintained count is always exactly the
//! number a from-scratch [`PreparedQuery::count`] on the current
//! snapshot returns (asserted by the `tests` here, the workspace
//! proptests, and the `P4` experiment gate).

use crate::count::sentence_holds;
use crate::prepared::PreparedQuery;
use epq_bigint::{Integer, Natural};
use epq_logic::PpFormula;
use epq_relalg::{count_pp_cached, ScanCache};
use epq_structures::{LiveStructure, RelId, StreamOp, Structure};
use std::fmt;

/// Error from [`LiveCount::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveCountError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LiveCountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "live count error: {}", self.message)
    }
}

impl std::error::Error for LiveCountError {}

/// Counters describing how much work incremental maintenance actually
/// did (for tests, the `P4` experiment, and capacity planning).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveCountStats {
    /// Inserts that added a tuple.
    pub inserts: u64,
    /// [`LiveCount::current`] calls that had dirty state to reconcile.
    pub reconciles: u64,
    /// `φ*` terms re-counted (they read a dirty relation).
    pub term_recounts: u64,
    /// `φ*` terms served from the per-term cache.
    pub term_reuses: u64,
    /// Of the recounts, how many went through the prepared (non
    /// scan-based) engine — the DP-table fallback path.
    pub engine_fallbacks: u64,
    /// Sentence disjuncts re-checked.
    pub sentence_rechecks: u64,
}

/// A [`PreparedQuery`] paired with a [`LiveStructure`], maintaining
/// `|φ(B)|` under tuple insertion. See the [module docs](self).
pub struct LiveCount {
    prepared: PreparedQuery,
    live: LiveStructure,
    /// Worker cap for the cached relational-algebra joins.
    threads: usize,
    /// Affected terms re-evaluate through [`ScanCache`]d relational
    /// algebra iff the prepared engine is scan-based; otherwise each
    /// one is fully recounted by that engine.
    cached_relalg: bool,
    /// Lazily checked sentence truth; `Some(true)` is a permanent
    /// latch (insertion is monotone for homomorphism existence).
    sentence_true: Vec<Option<bool>>,
    /// Relations each sentence disjunct reads.
    sentence_reads: Vec<Vec<RelId>>,
    /// Cached per-term counts, aligned with `decomposition().star_af`
    /// (only kept terms are ever computed).
    term_counts: Vec<Option<Natural>>,
    /// Relations each star term reads.
    term_reads: Vec<Vec<RelId>>,
    scans: ScanCache,
    /// The reconciled total, invalidated by any effective insert.
    total: Option<Natural>,
    stats: LiveCountStats,
}

/// The relations a pp-formula reads: every signature symbol with at
/// least one atom in the formula's structure view.
fn read_set(pp: &PpFormula) -> Vec<RelId> {
    pp.signature()
        .iter()
        .filter(|(rel, _, _)| !pp.structure().relation(*rel).is_empty())
        .map(|(rel, _, _)| rel)
        .collect()
}

fn reads_any(reads: &[RelId], dirty: &[RelId]) -> bool {
    reads.iter().any(|r| dirty.contains(r))
}

impl LiveCount {
    /// Pairs a prepared query with a live structure. The structure's
    /// signature must be the one the query was prepared against.
    ///
    /// Any dirty flags already set on `live` (e.g. from
    /// [`LiveStructure::from_structure`]) are absorbed by the first
    /// [`LiveCount::current`] call, which computes every piece anyway.
    pub fn new(prepared: PreparedQuery, live: LiveStructure) -> Result<Self, LiveCountError> {
        if prepared.signature() != live.signature() {
            return Err(LiveCountError {
                message: "live structure's signature differs from the prepared query's".into(),
            });
        }
        let dec = prepared.decomposition();
        let sentence_reads = dec.sentences.iter().map(read_set).collect();
        let term_reads = dec.star_af.iter().map(|t| read_set(&t.formula)).collect();
        let sentences = dec.sentences.len();
        let terms = dec.star_af.len();
        let cached_relalg = prepared.engine().scan_based();
        Ok(LiveCount {
            prepared,
            live,
            threads: 1,
            cached_relalg,
            sentence_true: vec![None; sentences],
            sentence_reads,
            term_counts: vec![None; terms],
            term_reads,
            scans: ScanCache::new(),
            total: None,
            stats: LiveCountStats::default(),
        })
    }

    /// Caps the worker threads of the cached relational-algebra joins
    /// (ignored on the engine-fallback path, whose engines carry their
    /// own thread configuration). Counts are identical at every cap.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The prepared query.
    pub fn prepared(&self) -> &PreparedQuery {
        &self.prepared
    }

    /// The live structure (read-only; insert through
    /// [`LiveCount::insert_tuple`] so the maintainer sees every write).
    pub fn live(&self) -> &LiveStructure {
        &self.live
    }

    /// The current structure snapshot.
    pub fn snapshot(&self) -> &Structure {
        self.live.snapshot()
    }

    /// Whether affected terms re-evaluate through cached
    /// relational-algebra scans (`true`) or the prepared engine's full
    /// per-term recount (`false`, the DP-table fallback).
    pub fn uses_cached_relalg(&self) -> bool {
        self.cached_relalg
    }

    /// The maintenance-work counters.
    pub fn stats(&self) -> LiveCountStats {
        self.stats
    }

    /// Inserts a tuple, returning whether it was new. Cheap: flips
    /// dirty bits only — reconciliation happens at the next
    /// [`LiveCount::current`].
    pub fn insert_tuple(&mut self, rel: RelId, tuple: &[u32]) -> bool {
        let added = self.live.insert_tuple(rel, tuple);
        if added {
            self.stats.inserts += 1;
            self.total = None;
        }
        added
    }

    /// [`LiveCount::insert_tuple`] by relation name.
    pub fn insert_tuple_named(&mut self, name: &str, tuple: &[u32]) -> bool {
        let rel = self
            .live
            .signature()
            .lookup(name)
            .unwrap_or_else(|| panic!("unknown relation {name:?}"));
        self.insert_tuple(rel, tuple)
    }

    /// Applies one stream operation: inserts return `None`,
    /// checkpoints return the reconciled count.
    pub fn apply(&mut self, op: &StreamOp) -> Option<Natural> {
        match op {
            StreamOp::Insert { rel, tuple } => {
                self.insert_tuple(*rel, tuple);
                None
            }
            StreamOp::Checkpoint => Some(self.current()),
        }
    }

    /// The current `|φ(B)|`, reconciling whatever the inserts since
    /// the last call dirtied. Always equals a from-scratch
    /// [`PreparedQuery::count`] on [`LiveCount::snapshot`].
    pub fn current(&mut self) -> Natural {
        if let (Some(total), false) = (&self.total, self.live.any_dirty()) {
            return total.clone();
        }
        self.stats.reconciles += 1;
        let dirty = self.live.dirty_relations();
        for &rel in &dirty {
            self.scans.invalidate(rel);
        }
        // Split borrows: the decomposition lives inside `prepared`,
        // the caches and the structure are sibling fields.
        let Self {
            ref prepared,
            ref live,
            threads,
            cached_relalg,
            ref mut sentence_true,
            ref sentence_reads,
            ref mut term_counts,
            ref term_reads,
            ref mut scans,
            ref mut stats,
            ..
        } = *self;
        let dec = prepared.decomposition();
        let b = live.snapshot();

        // Sentence disjuncts: latch truth, recheck the false ones only
        // when a relation they read changed.
        let mut saturated = false;
        for (i, theta) in dec.sentences.iter().enumerate() {
            let verdict = match sentence_true[i] {
                Some(true) => true,
                Some(false) if !reads_any(&sentence_reads[i], &dirty) => false,
                _ => {
                    stats.sentence_rechecks += 1;
                    let holds = sentence_holds(theta, b);
                    sentence_true[i] = Some(holds);
                    holds
                }
            };
            if verdict {
                saturated = true;
                break;
            }
        }
        let total = if saturated {
            // A sentence disjunct holds (and, by monotonicity, always
            // will): every assignment satisfies φ. The stale term
            // caches are unreachable from now on.
            Natural::from(b.universe_size()).pow(prepared.liberal_count() as u32)
        } else {
            // The signed φ*_af sum over the kept terms, recounting
            // exactly the terms that read a dirty relation.
            let mut acc = Integer::zero();
            for (i, term) in dec.star_af.iter().enumerate() {
                if !dec.kept[i] {
                    continue;
                }
                let stale = term_counts[i].is_none() || reads_any(&term_reads[i], &dirty);
                if stale {
                    stats.term_recounts += 1;
                    let count = if cached_relalg {
                        count_pp_cached(&term.formula, b, scans, threads)
                    } else {
                        stats.engine_fallbacks += 1;
                        prepared.engine().count(&term.formula, b)
                    };
                    term_counts[i] = Some(count);
                } else {
                    stats.term_reuses += 1;
                }
                let count = term_counts[i].as_ref().expect("just reconciled");
                acc += &(&term.coefficient * &Integer::from(count.clone()));
            }
            assert!(!acc.is_negative(), "ep count must be non-negative");
            acc.into_magnitude()
        };
        self.live.clear_dirty();
        self.total = Some(total.clone());
        total
    }

    /// The reference computation: the prepared query's full
    /// per-structure phase on the current snapshot, ignoring every
    /// cache. [`LiveCount::current`] must always equal this.
    pub fn recount_from_scratch(&self) -> Natural {
        self.prepared.count(self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_counting::engines::{BruteForceEngine, RelalgEngine};
    use epq_logic::parser::parse_query;
    use epq_logic::query::infer_signature;
    use epq_structures::Signature;

    fn prepare(text: &str) -> PreparedQuery {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        PreparedQuery::prepare_uncached(&q, &sig).unwrap()
    }

    fn live_for(prepared: &PreparedQuery, n: usize) -> LiveStructure {
        LiveStructure::new(prepared.signature().clone(), n)
    }

    /// Inserts a scripted sequence one tuple at a time, asserting
    /// incremental == from-scratch after every single insert.
    fn check_sequence(query: &str, n: usize, inserts: &[(&str, &[u32])]) {
        for scan_based in [true, false] {
            let mut prepared = prepare(query);
            if scan_based {
                prepared = prepared.with_engine(Box::new(RelalgEngine));
            }
            let live = live_for(&prepared, n);
            let mut lc = LiveCount::new(prepared, live).unwrap();
            assert_eq!(lc.uses_cached_relalg(), scan_based);
            assert_eq!(lc.current(), lc.recount_from_scratch(), "empty structure");
            for (name, tuple) in inserts {
                lc.insert_tuple_named(name, tuple);
                assert_eq!(
                    lc.current(),
                    lc.recount_from_scratch(),
                    "query {query}, after insert {name}{tuple:?}, scan_based {scan_based}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_recount_on_single_relation_queries() {
        check_sequence(
            "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))",
            4,
            &[
                ("E", &[0, 1]),
                ("E", &[1, 2]),
                ("E", &[2, 3]),
                ("E", &[3, 3]),
            ],
        );
    }

    #[test]
    fn agrees_with_recount_on_multi_relation_queries() {
        check_sequence(
            "(x, y) := E(x,y) | F(x,y) | (exists a, b . E(a,b) & F(a,b))",
            3,
            &[
                ("E", &[0, 1]),
                ("F", &[1, 2]),
                ("F", &[0, 1]),
                ("E", &[1, 2]),
                ("F", &[2, 2]),
            ],
        );
    }

    #[test]
    fn sentence_saturation_latches() {
        let prepared =
            prepare("(x, y) := E(x,y) | (exists a . F(a,a))").with_engine(Box::new(RelalgEngine));
        let live = live_for(&prepared, 3);
        let mut lc = LiveCount::new(prepared, live).unwrap();
        lc.insert_tuple_named("E", &[0, 1]);
        assert_eq!(lc.current().to_u64(), Some(1));
        // The F loop fires the sentence: count pins at |B|² = 9.
        lc.insert_tuple_named("F", &[2, 2]);
        assert_eq!(lc.current().to_u64(), Some(9));
        assert_eq!(lc.recount_from_scratch().to_u64(), Some(9));
        let rechecks = lc.stats().sentence_rechecks;
        // Saturated maintenance is O(1): further inserts recheck
        // nothing and recount nothing.
        let recounts = lc.stats().term_recounts;
        lc.insert_tuple_named("E", &[1, 2]);
        assert_eq!(lc.current().to_u64(), Some(9));
        assert_eq!(lc.stats().sentence_rechecks, rechecks);
        assert_eq!(lc.stats().term_recounts, recounts);
        assert_eq!(lc.current(), lc.recount_from_scratch());
    }

    #[test]
    fn unaffected_terms_are_reused() {
        // φ*: E-term, F-term, E∧F-term. Inserting only into F must
        // never recount the E-only term.
        let prepared = prepare("(x, y) := E(x,y) | F(x,y)").with_engine(Box::new(RelalgEngine));
        let live = live_for(&prepared, 4);
        let mut lc = LiveCount::new(prepared, live).unwrap();
        lc.insert_tuple_named("E", &[0, 1]);
        let _ = lc.current();
        let baseline = lc.stats();
        for i in 0..3u32 {
            lc.insert_tuple_named("F", &[i, i + 1]);
            assert_eq!(lc.current(), lc.recount_from_scratch());
        }
        let after = lc.stats();
        assert!(
            after.term_reuses > baseline.term_reuses,
            "the E-only term must be served from cache: {after:?}"
        );
        // Three reconciles touching only F: the E term is reused each
        // time, so recounts grow by at most 2 per reconcile (F, E∧F).
        assert!(after.term_recounts - baseline.term_recounts <= 6);
    }

    #[test]
    fn lazy_reconciliation_batches_inserts() {
        let prepared = prepare("(x, y) := E(x,y) | F(x,y)").with_engine(Box::new(RelalgEngine));
        let live = live_for(&prepared, 5);
        let mut lc = LiveCount::new(prepared, live).unwrap();
        for i in 0..4u32 {
            lc.insert_tuple_named("E", &[i, i + 1]);
        }
        let _ = lc.current();
        let stats = lc.stats();
        assert_eq!(stats.reconciles, 1, "one checkpoint, one reconcile");
        // Repeated current() without inserts is a cache hit.
        let _ = lc.current();
        assert_eq!(lc.stats().reconciles, 1);
    }

    #[test]
    fn engine_fallback_recounts_through_the_prepared_engine() {
        let prepared = prepare("(x) := E(x,x) | F(x,x)").with_engine(Box::new(BruteForceEngine));
        let live = live_for(&prepared, 3);
        let mut lc = LiveCount::new(prepared, live).unwrap();
        assert!(!lc.uses_cached_relalg());
        lc.insert_tuple_named("E", &[1, 1]);
        assert_eq!(lc.current(), lc.recount_from_scratch());
        assert!(lc.stats().engine_fallbacks > 0);
        lc.insert_tuple_named("F", &[2, 2]);
        assert_eq!(lc.current(), lc.recount_from_scratch());
    }

    #[test]
    fn threads_do_not_change_counts() {
        let inserts: &[(&str, &[u32])] = &[
            ("E", &[0, 1]),
            ("E", &[1, 2]),
            ("F", &[2, 0]),
            ("E", &[2, 2]),
            ("F", &[0, 0]),
        ];
        let reference: Vec<Natural> = {
            let prepared =
                prepare("(x, y) := (E(x,y) & E(y,x)) | F(x,y)").with_engine(Box::new(RelalgEngine));
            let live = live_for(&prepared, 3);
            let mut lc = LiveCount::new(prepared, live).unwrap();
            inserts
                .iter()
                .map(|(name, t)| {
                    lc.insert_tuple_named(name, t);
                    lc.current()
                })
                .collect()
        };
        for threads in [2usize, 4] {
            let prepared =
                prepare("(x, y) := (E(x,y) & E(y,x)) | F(x,y)").with_engine(Box::new(RelalgEngine));
            let live = live_for(&prepared, 3);
            let mut lc = LiveCount::new(prepared, live)
                .unwrap()
                .with_threads(threads);
            let got: Vec<Natural> = inserts
                .iter()
                .map(|(name, t)| {
                    lc.insert_tuple_named(name, t);
                    lc.current()
                })
                .collect();
            assert_eq!(got, reference, "threads {threads}");
        }
    }

    #[test]
    fn duplicate_inserts_do_not_invalidate() {
        let prepared = prepare("E(x,y)").with_engine(Box::new(RelalgEngine));
        let live = live_for(&prepared, 3);
        let mut lc = LiveCount::new(prepared, live).unwrap();
        assert!(lc.insert_tuple_named("E", &[0, 1]));
        assert_eq!(lc.current().to_u64(), Some(1));
        let reconciles = lc.stats().reconciles;
        assert!(!lc.insert_tuple_named("E", &[0, 1]));
        assert_eq!(lc.current().to_u64(), Some(1));
        assert_eq!(lc.stats().reconciles, reconciles, "duplicate is a no-op");
    }

    #[test]
    fn pre_loaded_structures_start_dirty_and_reconcile() {
        let prepared = prepare("E(x,y) & E(y,z)").with_engine(Box::new(RelalgEngine));
        let mut s = Structure::new(prepared.signature().clone(), 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            s.add_tuple_named("E", &[u, v]);
        }
        let mut lc = LiveCount::new(prepared, LiveStructure::from_structure(s)).unwrap();
        assert_eq!(lc.current(), lc.recount_from_scratch());
        lc.insert_tuple_named("E", &[3, 3]);
        assert_eq!(lc.current(), lc.recount_from_scratch());
    }

    #[test]
    fn signature_mismatch_is_reported() {
        let prepared = prepare("E(x,y)");
        let other = LiveStructure::new(Signature::from_symbols([("F", 2)]), 2);
        let err = LiveCount::new(prepared, other).err().expect("must fail");
        assert!(err.message.contains("signature"));
    }

    #[test]
    fn stream_ops_apply() {
        use epq_structures::StreamLog;
        let log = StreamLog::parse(
            "universe 3\nrel E/2\ninsert E 0 1\ncheckpoint\ninsert E 1 2\ninsert E 2 0\ncheckpoint\n",
        )
        .unwrap();
        let q = parse_query("(x) := exists u . E(x,u)").unwrap();
        let prepared = PreparedQuery::prepare_uncached(&q, &log.signature)
            .unwrap()
            .with_engine(Box::new(RelalgEngine));
        let mut lc = LiveCount::new(prepared, log.open()).unwrap();
        let counts: Vec<u64> = log
            .ops
            .iter()
            .filter_map(|op| lc.apply(op))
            .map(|n| n.to_u64().unwrap())
            .collect();
        assert_eq!(counts, vec![1, 3]);
    }
}
