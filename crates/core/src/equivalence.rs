//! Counting equivalence and semi-counting equivalence.
//!
//! **Theorem 5.4**: two pp-formulas are *counting equivalent* (same number
//! of answers on every finite structure) iff they are *renaming
//! equivalent*: there are surjections `h : S₁ → S₂` and `h′ : S₂ → S₁`
//! each extending to a homomorphism of the underlying structures. Since
//! counting equivalence forces `|S₁| = |S₂|` (Observation 5.5), the
//! surjections are bijections, and the check is a backtracking search
//! over liberal bijections with incremental homomorphism-extension
//! pruning.
//!
//! **Theorem 5.9**: two *free* pp-formulas are *semi-counting equivalent*
//! (equal counts whenever both counts are positive) iff their liberal
//! parts `φ̂` are counting equivalent.
//!
//! The proof of Theorem 5.4 constructs blow-up structures `D_{j,T}` to
//! extract surjective-map counts by a Vandermonde argument; that
//! construction is implemented and validated here too ([`blow_up`],
//! [`count_extendable_maps`], [`count_surjective_extendable_maps`]).

use epq_bigint::{Integer, Natural};
use epq_logic::PpFormula;
use epq_structures::{hom, Structure};

/// Whether two pp-formulas are renaming equivalent (Definition 5.3):
/// bijections between the liberal sets extending to homomorphisms in both
/// directions.
pub fn renaming_equivalent(a: &PpFormula, b: &PpFormula) -> bool {
    if a.signature() != b.signature() {
        return false;
    }
    if a.liberal_count() != b.liberal_count() {
        return false;
    }
    liberal_bijection_extends(a, b) && liberal_bijection_extends(b, a)
}

/// Whether some bijection `S_a → S_b` extends to a homomorphism
/// `A → B` (liberal elements are `0..s` on both sides).
fn liberal_bijection_extends(a: &PpFormula, b: &PpFormula) -> bool {
    let s = a.liberal_count();
    // Fast path: no liberal variables — plain homomorphism existence.
    if s == 0 {
        return hom::homomorphism_exists(a.structure(), b.structure());
    }
    let mut assignment: Vec<u32> = Vec::with_capacity(s);
    let mut used = vec![false; s];
    search_bijection(a, b, &mut assignment, &mut used)
}

fn search_bijection(
    a: &PpFormula,
    b: &PpFormula,
    assignment: &mut Vec<u32>,
    used: &mut Vec<bool>,
) -> bool {
    let s = a.liberal_count();
    if assignment.len() == s {
        return true; // pruning already established extendability
    }
    let i = assignment.len() as u32;
    for j in 0..s as u32 {
        if used[j as usize] {
            continue;
        }
        assignment.push(j);
        used[j as usize] = true;
        // Incremental pruning: the partial bijection must itself extend.
        let pins: Vec<(u32, u32)> = assignment
            .iter()
            .enumerate()
            .map(|(x, &y)| (x as u32, y))
            .collect();
        let feasible = hom::homomorphism_exists_pinned(a.structure(), b.structure(), &pins);
        if feasible && search_bijection(a, b, assignment, used) {
            return true;
        }
        assignment.pop();
        used[j as usize] = false;
        let _ = i;
    }
    false
}

/// Whether two pp-formulas are counting equivalent — decided via
/// Theorem 5.4 (counting equivalence = renaming equivalence).
pub fn counting_equivalent(a: &PpFormula, b: &PpFormula) -> bool {
    renaming_equivalent(a, b)
}

/// Whether two free pp-formulas are semi-counting equivalent — decided
/// via Theorem 5.9 (`φ̂` counting equivalence).
pub fn semi_counting_equivalent(a: &PpFormula, b: &PpFormula) -> bool {
    counting_equivalent(&a.hat(), &b.hat())
}

/// Empirically tests counting equivalence on a battery of structures
/// (used to validate Theorem 5.4's procedure in tests; *not* a decision
/// procedure).
pub fn empirically_counting_equivalent(
    a: &PpFormula,
    b: &PpFormula,
    battery: &[Structure],
) -> bool {
    battery.iter().all(|s| {
        epq_counting::brute::count_pp_brute(a, s) == epq_counting::brute::count_pp_brute(b, s)
    })
}

/// The blow-up structure `D_{j,T}` from the proof of Theorem 5.4: every
/// element of `t_set` is replaced by `j` interchangeable copies, and
/// relations are lifted through the copy map.
///
/// Homomorphism counts into `D_{j,T}` stratify by how many of a map's
/// distinguished images land in `T`:
/// `|hom(A, D_{j,T})| = Σ_i j^i · |hom_{i,T}(A, B)|` — the Vandermonde
/// identity validated in this module's tests.
pub fn blow_up(b: &Structure, t_set: &[u32], j: usize) -> Structure {
    assert!(j >= 1, "blow-up factor must be at least 1");
    let in_t = |e: u32| t_set.contains(&e);
    // New universe: for each element of T, j copies; others, one.
    let mut first_copy = Vec::with_capacity(b.universe_size());
    let mut total = 0u32;
    for e in 0..b.universe_size() as u32 {
        first_copy.push(total);
        total += if in_t(e) { j as u32 } else { 1 };
    }
    let copies = |e: u32| -> Vec<u32> {
        let base = first_copy[e as usize];
        if in_t(e) {
            (base..base + j as u32).collect()
        } else {
            vec![base]
        }
    };
    let mut out = Structure::new(b.signature().clone(), total as usize);
    let mut stack_tuple = Vec::new();
    for (rel, _, arity) in b.signature().iter() {
        for t in b.relation(rel).tuples() {
            // Cartesian product of per-position copy sets.
            let choices: Vec<Vec<u32>> = t.iter().map(|&e| copies(e)).collect();
            let mut indices = vec![0usize; arity];
            loop {
                stack_tuple.clear();
                stack_tuple.extend((0..arity).map(|p| choices[p][indices[p]]));
                out.add_tuple(rel, &stack_tuple);
                // Odometer.
                let mut p = 0;
                loop {
                    if p == arity {
                        break;
                    }
                    indices[p] += 1;
                    if indices[p] < choices[p].len() {
                        break;
                    }
                    indices[p] = 0;
                    p += 1;
                }
                if p == arity {
                    break;
                }
            }
        }
    }
    out
}

/// Counts maps `f : S_a → B` extending to homomorphisms `A → B`
/// (i.e. `|φ_a(B)|` — answer counting restated; brute force).
pub fn count_extendable_maps(a: &PpFormula, b: &Structure) -> Natural {
    epq_counting::brute::count_pp_brute(a, b)
}

/// Counts maps `f : S_a → S_target ⊆ B` that are **surjective onto**
/// `targets` and extend to homomorphisms — the quantity
/// `|surj(A, B, S)|` at the heart of Theorem 5.4's proof. Brute force.
pub fn count_surjective_extendable_maps(a: &PpFormula, b: &Structure, targets: &[u32]) -> Natural {
    let s = a.liberal_count();
    let mut count = Natural::zero();
    let one = Natural::one();
    epq_counting::brute::for_each_assignment(b.universe_size(), s, &mut |values| {
        let onto = targets.iter().all(|t| values.iter().any(|v| v == t));
        let within = values.iter().all(|v| targets.contains(v));
        if onto && within && a.satisfied_by(b, values) {
            count += &one;
        }
    });
    count
}

/// The stratified counts `hom_{i,T}(A, B, S)` for i = 0, …, |S| —
/// extendable maps `f : S → B` sending *exactly* `i` liberal variables
/// into `t_set` — recovered **only** from the answer counts
/// `|φ(D_{j,T})|` on blow-up structures, exactly as in the proof of
/// Theorem 5.4: `|φ(D_{j,T})| = Σ_i jⁱ · hom_{i,T}`, a Vandermonde
/// system over j = 1, …, |S|+1.
pub fn stratified_counts_via_blow_ups(
    phi: &PpFormula,
    b: &Structure,
    t_set: &[u32],
    count_on: &mut dyn FnMut(&Structure) -> Natural,
) -> Vec<Natural> {
    use epq_bigint::Rational;
    let s = phi.liberal_count();
    // |φ(D_{j,T})| = Σ_i hom_{i,T} · jⁱ is a polynomial in j of degree
    // ≤ |S| whose coefficients are the strata — interpolate through
    // j = 1, …, |S|+1 with exact rational arithmetic.
    let points: Vec<(Rational, Rational)> = (1..=s + 1)
        .map(|j| {
            let d = blow_up(b, t_set, j);
            (
                Rational::from(j as i64),
                Rational::from(Integer::from(count_on(&d))),
            )
        })
        .collect();
    let coefficients =
        epq_bigint::linalg::interpolate_polynomial(&points).expect("distinct j values interpolate");
    coefficients
        .into_iter()
        .map(|c| {
            let int = c.to_integer().expect("stratified counts are integers");
            assert!(!int.is_negative(), "stratified counts are non-negative");
            int.into_magnitude()
        })
        .collect()
}

/// Surjective-map counting through the blow-up oracle (the full
/// Theorem 5.4 pipeline): inclusion–exclusion over `T ⊆ targets` of the
/// all-inside-`T` strata,
/// `|surj| = Σ_{T⊆targets} (−1)^{|targets∖T|} · hom_{|S|,T}`.
pub fn count_surjective_via_blow_ups(phi: &PpFormula, b: &Structure, targets: &[u32]) -> Natural {
    let s = phi.liberal_count();
    let mut total = Integer::zero();
    let k = targets.len();
    for mask in 0u32..(1 << k) {
        let t_subset: Vec<u32> = (0..k)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| targets[i])
            .collect();
        // hom_{|S|,T}: all liberal variables inside T. The blow-up oracle
        // here is direct counting; swap in any |φ(·)| oracle.
        let mut oracle = |d: &Structure| epq_counting::brute::count_pp_brute(phi, d);
        let strata = stratified_counts_via_blow_ups(phi, b, &t_subset, &mut oracle);
        let all_inside = strata.get(s).cloned().unwrap_or_else(Natural::zero);
        let sign = if (k - t_subset.len()) % 2 == 0 { 1 } else { -1 };
        total += &(&Integer::from(sign) * &Integer::from(all_inside));
    }
    assert!(
        !total.is_negative(),
        "surjection count must be non-negative"
    );
    total.into_magnitude()
}

#[cfg(test)]
mod tests {
    use super::*;
    use epq_logic::parser::parse_query;
    use epq_logic::query::infer_signature;
    use epq_logic::Formula;
    use epq_structures::Signature;

    fn pp_of(text: &str) -> PpFormula {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        PpFormula::from_query(&q, &sig).unwrap()
    }

    fn pp_with(text: &str, sig: &Signature) -> PpFormula {
        let q = parse_query(text).unwrap();
        PpFormula::from_query(&q, sig).unwrap()
    }

    fn battery() -> Vec<Structure> {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut out = Vec::new();
        let edge_sets: [&[(u32, u32)]; 5] = [
            &[(0, 1), (1, 2), (2, 3), (3, 3)],
            &[(0, 0)],
            &[(0, 1), (1, 0)],
            &[(0, 1), (1, 2), (2, 0)],
            &[(0, 1), (0, 2), (1, 2)],
        ];
        for (i, edges) in edge_sets.iter().enumerate() {
            let n = 2
                + (i + 2) % 3
                + edges.iter().flat_map(|&(a, b)| [a, b]).max().unwrap_or(0) as usize;
            let mut s = Structure::new(sig.clone(), n);
            for &(u, v) in *edges {
                s.add_tuple_named("E", &[u, v]);
            }
            out.push(s);
        }
        out
    }

    #[test]
    fn example_5_2_renamed_formulas_are_counting_equivalent() {
        // φ1(x,y) = E(x,y) and φ2(w,z) = E(w,z).
        let phi1 = pp_of("E(x,y)");
        let phi2 = pp_of("E(w,z)");
        assert!(counting_equivalent(&phi1, &phi2));
        assert!(empirically_counting_equivalent(&phi1, &phi2, &battery()));
    }

    #[test]
    fn different_liberal_counts_are_never_equivalent() {
        let phi1 = pp_of("E(x,y)");
        let phi2 = pp_of("(x,y,z) := E(x,y)");
        assert!(!counting_equivalent(&phi1, &phi2));
    }

    #[test]
    fn direction_asymmetry_is_detected() {
        // E(x,y) vs E(y,x): counting equivalent (rename swaps).
        let a = pp_of("E(x,y)");
        let b = pp_of("E(y,x)");
        assert!(counting_equivalent(&a, &b));
        // E(x,y) vs E(x,y) & E(y,x): not equivalent.
        let c = pp_of("E(x,y) & E(y,x)");
        assert!(!counting_equivalent(&a, &c));
        assert!(!empirically_counting_equivalent(&a, &c, &battery()));
    }

    #[test]
    fn example_4_2_paths_are_counting_equivalent() {
        // φ1 = E(x,y) ∧ E(y,z), φ2 = E(z,w) ∧ E(w,x), φ3 = E(w,x) ∧ E(x,y),
        // all with V = {w,x,y,z}: pairwise counting equivalent.
        let phi1 = pp_of("(w,x,y,z) := E(x,y) & E(y,z)");
        let phi2 = pp_of("(w,x,y,z) := E(z,w) & E(w,x)");
        let phi3 = pp_of("(w,x,y,z) := E(w,x) & E(x,y)");
        assert!(counting_equivalent(&phi1, &phi2));
        assert!(counting_equivalent(&phi2, &phi3));
        assert!(counting_equivalent(&phi1, &phi3));
        // And the pair conjunctions from the example:
        let c13 = PpFormula::conjoin(&[&phi1, &phi3]);
        let c23 = PpFormula::conjoin(&[&phi2, &phi3]);
        assert!(counting_equivalent(&c13, &c23));
        let c12 = PpFormula::conjoin(&[&phi1, &phi2]);
        assert!(!counting_equivalent(&c12, &c13));
    }

    #[test]
    fn theorem_5_4_agrees_with_empirical_on_curated_pairs() {
        let pairs = [
            ("E(x,y)", "E(a,b)", true),
            ("E(x,y) & E(y,z)", "E(a,b) & E(b,c)", true),
            ("E(x,y) & E(y,z)", "E(a,b) & E(a,c)", false),
            ("(x) := exists u . E(x,u)", "(y) := exists v . E(y,v)", true),
            (
                "(x) := exists u . E(x,u)",
                "(y) := exists v . E(v,y)",
                false,
            ),
            ("E(x,x)", "E(y,y)", true),
        ];
        for (ta, tb, expected) in pairs {
            let a = pp_of(ta);
            let b = pp_of(tb);
            assert_eq!(counting_equivalent(&a, &b), expected, "{ta} vs {tb}");
            if !expected {
                assert!(
                    !empirically_counting_equivalent(&a, &b, &battery()),
                    "battery should separate {ta} and {tb}"
                );
            } else {
                assert!(empirically_counting_equivalent(&a, &b, &battery()));
            }
        }
    }

    #[test]
    fn example_5_7_semi_counting_equivalence() {
        // φ1(x,y) = E(x,y), φ2(x,y) = ∃z (E(x,y) ∧ F(z)): semi-counting
        // equivalent but not counting equivalent.
        let sig = Signature::from_symbols([("E", 2), ("F", 1)]);
        let phi1 = pp_with("E(x,y)", &sig);
        let phi2 = pp_with("(x,y) := exists z . E(x,y) & F(z)", &sig);
        assert!(semi_counting_equivalent(&phi1, &phi2));
        assert!(!counting_equivalent(&phi1, &phi2));
        // Empirically: on a structure with empty F they differ.
        let mut b = Structure::new(sig.clone(), 2);
        b.add_tuple_named("E", &[0, 1]);
        assert!(!empirically_counting_equivalent(&phi1, &phi2, &[b.clone()]));
        // With F nonempty they agree.
        let mut b2 = b.clone();
        b2.add_tuple_named("F", &[0]);
        assert!(empirically_counting_equivalent(&phi1, &phi2, &[b2]));
    }

    #[test]
    fn semi_counting_equivalence_is_weaker() {
        // Any counting-equivalent pair is semi-counting equivalent.
        let a = pp_of("E(x,y) & E(y,z)");
        let b = pp_of("E(a,b) & E(b,c)");
        assert!(counting_equivalent(&a, &b));
        assert!(semi_counting_equivalent(&a, &b));
    }

    #[test]
    fn blow_up_structure_shape() {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut b = Structure::new(sig, 3);
        b.add_tuple_named("E", &[0, 1]);
        b.add_tuple_named("E", &[1, 2]);
        // Blow element 1 into 3 copies.
        let d = blow_up(&b, &[1], 3);
        assert_eq!(d.universe_size(), 5);
        // (0,1) lifts to 3 tuples; (1,2) lifts to 3 tuples.
        assert_eq!(d.tuple_count(), 6);
    }

    #[test]
    fn blow_up_vandermonde_identity() {
        // |hom(A, D_{j,T})| = Σ_i j^i |hom_{i,T}(A, B)| where hom_{i,T}
        // counts homs sending exactly i elements of A into T.
        use epq_structures::hom::count_homomorphisms;
        let sig = Signature::from_symbols([("E", 2)]);
        let mut b = Structure::new(sig.clone(), 3);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (1, 1)] {
            b.add_tuple_named("E", &[u, v]);
        }
        let mut a = Structure::new(sig, 2);
        a.add_tuple_named("E", &[0, 1]);
        let t_set = [1u32, 2u32];
        for j in 1..=3usize {
            let d = blow_up(&b, &t_set, j);
            let lhs = count_homomorphisms(&a, &d);
            // Brute-force stratified counts on B.
            let mut rhs = Natural::zero();
            epq_counting::brute::for_each_assignment(3, 2, &mut |values| {
                if b.has_tuple(b.signature().lookup("E").unwrap(), values) {
                    let i = values.iter().filter(|v| t_set.contains(v)).count();
                    rhs += &Natural::from(j as u64).pow(i as u32);
                }
            });
            assert_eq!(lhs, rhs, "j = {j}");
        }
    }

    #[test]
    fn stratified_counts_recovered_from_blow_ups_match_brute_force() {
        // Theorem 5.4's proof pipeline: hom_{i,T} from |φ(D_{j,T})| only.
        let sig = Signature::from_symbols([("E", 2)]);
        let phi = pp_with("E(x,y)", &sig);
        let mut b = Structure::new(sig, 3);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (1, 1)] {
            b.add_tuple_named("E", &[u, v]);
        }
        let t_set = [1u32, 2u32];
        let mut oracle = |d: &Structure| epq_counting::brute::count_pp_brute(&phi, d);
        let strata = stratified_counts_via_blow_ups(&phi, &b, &t_set, &mut oracle);
        assert_eq!(strata.len(), 3); // i = 0, 1, 2
                                     // Brute-force stratified counts.
        let mut expected = vec![Natural::zero(); 3];
        epq_counting::brute::for_each_assignment(3, 2, &mut |values| {
            if phi.satisfied_by(&b, values) {
                let i = values.iter().filter(|v| t_set.contains(v)).count();
                expected[i] += &Natural::one();
            }
        });
        assert_eq!(strata, expected);
        // Sanity: total over strata = |φ(B)|.
        let total = strata
            .iter()
            .fold(Natural::zero(), |acc, x| acc + x.clone());
        assert_eq!(total, epq_counting::brute::count_pp_brute(&phi, &b));
    }

    #[test]
    fn surjective_counts_via_blow_ups_match_direct() {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut b = Structure::new(sig.clone(), 3);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (1, 1)] {
            b.add_tuple_named("E", &[u, v]);
        }
        for text in ["E(x,y)", "E(x,y) & E(y,z)", "(x, y) := E(x,y) & E(y,y)"] {
            let phi = pp_with(text, &sig);
            for targets in [vec![0u32, 1], vec![1, 2], vec![0, 1, 2], vec![1]] {
                let via_oracle = count_surjective_via_blow_ups(&phi, &b, &targets);
                let direct = count_surjective_extendable_maps(&phi, &b, &targets);
                assert_eq!(via_oracle, direct, "{text} onto {targets:?}");
            }
        }
    }

    #[test]
    fn surjective_count_nonzero_for_identity() {
        let a = pp_of("E(x,y)");
        // On a structure where E = {(0,1)}, the map x→0,y→1 is onto {0,1}.
        let sig = Signature::from_symbols([("E", 2)]);
        let mut b = Structure::new(sig, 2);
        b.add_tuple_named("E", &[0, 1]);
        assert_eq!(
            count_surjective_extendable_maps(&a, &b, &[0, 1]).to_u64(),
            Some(1)
        );
        assert_eq!(
            count_surjective_extendable_maps(&a, &b, &[0]).to_u64(),
            Some(0)
        );
    }

    #[test]
    fn equivalence_with_quantified_parts() {
        // ∃u E(x,u) ∧ E(u,y) vs renamed copy.
        let a = pp_of("(x,y) := exists u . E(x,u) & E(u,y)");
        let b = pp_of("(p,q) := exists m . E(p,m) & E(m,q)");
        assert!(counting_equivalent(&a, &b));
        // vs the reversed middle: not equivalent.
        let c = pp_of("(x,y) := exists u . E(u,x) & E(u,y)");
        assert!(!counting_equivalent(&a, &c));
    }

    use epq_logic::Var;
    #[test]
    fn sentences_equivalence() {
        // Sentences with the same liberal set: equivalence = mutual homs.
        let s1 = Formula::exists(&["a", "b"], Formula::atom("E", &["a", "b"]));
        let s2 = Formula::exists(&["c", "d", "e"], {
            Formula::atom("E", &["c", "d"]).and(Formula::atom("E", &["d", "e"]))
        });
        let sig = Signature::from_symbols([("E", 2)]);
        let q1 = epq_logic::Query::new(s1, [Var::new("x")]).unwrap();
        let q2 = epq_logic::Query::new(s2, [Var::new("x")]).unwrap();
        let p1 = PpFormula::from_query(&q1, &sig).unwrap();
        let p2 = PpFormula::from_query(&q2, &sig).unwrap();
        // ∃ edge vs ∃ path of length 2: not counting equivalent (a
        // structure with an edge but no 2-path separates them).
        assert!(!counting_equivalent(&p1, &p2));
    }
}
