//! The reverse reductions of the equivalence theorem, as executable
//! oracle algorithms (Example 4.3, Lemmas 5.12/5.13/5.18, Theorem 5.20,
//! Appendix A).
//!
//! Given only an oracle for `|φ(·)|` (the ep-query's counting function),
//! these algorithms recover the counts `|ψ(B)|` of every pp-formula
//! `ψ ∈ φ⁺`:
//!
//! 1. **Distinguishing structure** (Lemma 5.12): find **C** on which
//!    every pp-formula is satisfiable and representatives of distinct
//!    semi-counting-equivalence classes have distinct counts. The paper
//!    proves existence by product/disjoint-union amplification; we search
//!    candidate structures that contain a *diagonal element* (an element
//!    `a` with `(a,…,a)` in every relation — making every pp-formula
//!    satisfiable by the constant-`a` assignment) and verify the defining
//!    property before use, escalating size until it holds.
//! 2. **Vandermonde recovery** (Example 4.3 / Theorem 5.20): query the
//!    oracle on **B** × **C**^ℓ for ℓ = 0, …, s−1; since
//!    `|ψ(B × C^ℓ)| = |ψ(B)| · |ψ(C)|^ℓ`, the per-class signed sums fall
//!    out of a transposed Vandermonde system solved exactly over ℚ.
//! 3. **Class splitting** (Lemma 5.18): within one semi-counting
//!    equivalence class, repeatedly pick a hom-minimal formula `ψᵢ`; on
//!    products with `ψᵢ`'s own structure every other class member
//!    vanishes, isolating `cᵢ·|ψᵢ(B)|·|ψᵢ(Cᵢ)|`.
//! 4. **General case** (Appendix A): sentence disjuncts are decided by
//!    the saturation test on `A × B`; for `ψ ∈ φ⁻_af` the recovery runs
//!    on `B × C_ψ` where `C_ψ` is `ψ`'s own structure — on every queried
//!    product the factor `C_ψ` falsifies *all* sentence disjuncts (ψ
//!    entails none of them), so the φ-oracle agrees with the φ_af-oracle
//!    there. (The appendix uses the disjoint union of all `φ⁻_af`
//!    structures instead; with *disconnected* sentence disjuncts that
//!    union can accidentally satisfy a sentence disjunct no single member
//!    entails, so we use the per-target structure — same spirit, verified
//!    correct. The deviation is documented in DESIGN.md.)

use crate::equivalence::semi_counting_equivalent;
use crate::iex::SignedPp;
use crate::plus::PlusDecomposition;
use epq_bigint::linalg::solve_transposed_vandermonde;
use epq_bigint::{Integer, Natural, Rational};
use epq_counting::brute::count_pp_brute;
use epq_logic::PpFormula;
use epq_structures::{hom, ops, Structure};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// A counting oracle for some fixed query: maps a structure to a count.
pub type CountOracle<'a> = dyn FnMut(&Structure) -> Natural + 'a;

/// Searches for a distinguishing structure for the given class
/// representatives (Lemma 5.12): every pp-formula over the signature is
/// satisfiable on the result (diagonal element), and the representatives'
/// counts are pairwise distinct. Deterministic (seeded) randomized search
/// with size escalation.
///
/// # Panics
/// Panics if two representatives are semi-counting equivalent (then no
/// such structure exists), or if the search exhausts its budget.
pub fn find_distinguishing_structure(representatives: &[&PpFormula]) -> Structure {
    for (i, a) in representatives.iter().enumerate() {
        for b in &representatives[i + 1..] {
            assert!(
                !semi_counting_equivalent(a, b),
                "representatives must be pairwise non-semi-counting-equivalent"
            );
        }
    }
    let signature = match representatives.first() {
        None => return ops::one_point(epq_structures::Signature::new()),
        Some(r) => r.signature().clone(),
    };
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    for universe in 2..=9usize {
        let attempts = 60 * representatives.len().max(1);
        for _ in 0..attempts {
            let density = rng.gen_range(0.15..0.75);
            let mut c = Structure::new(signature.clone(), universe);
            // Diagonal element 0: every pp-formula is satisfiable.
            for (rel, _, arity) in signature.iter() {
                c.add_tuple(rel, &vec![0; arity]);
            }
            for (rel, _, arity) in signature.iter() {
                let mut tuple = vec![0u32; arity];
                let cells = universe.pow(arity as u32).min(512);
                for _ in 0..cells {
                    for t in tuple.iter_mut() {
                        *t = rng.gen_range(0..universe as u32);
                    }
                    if rng.gen_bool(density) {
                        c.add_tuple(rel, &tuple);
                    }
                }
            }
            if is_distinguishing(&c, representatives) {
                return c;
            }
        }
    }
    panic!("distinguishing-structure search exhausted its budget");
}

/// Verifies the Lemma 5.12 property for `c`.
pub fn is_distinguishing(c: &Structure, representatives: &[&PpFormula]) -> bool {
    let counts: Vec<Natural> = representatives
        .iter()
        .map(|r| count_pp_brute(r, c))
        .collect();
    if counts.iter().any(|x| x.is_zero()) {
        return false;
    }
    for (i, a) in counts.iter().enumerate() {
        for b in &counts[i + 1..] {
            if a == b {
                return false;
            }
        }
    }
    true
}

/// The result of recovering pp counts from an ep oracle.
#[derive(Clone, Debug)]
pub struct RecoveredCounts {
    /// `(star-term index, |ψ(B)|)` for every term of `φ*`.
    pub counts: Vec<(usize, Natural)>,
    /// Number of oracle queries spent.
    pub oracle_queries: usize,
}

/// Recovers `|ψ(B)|` for every `ψ ∈ φ*` of an **all-free** disjunctive
/// ep-formula, given an oracle for `|φ(·)|` (Theorem 5.20's reduction
/// from count\[Φ*\] to count\[Φ\]).
///
/// `star` must be the output of [`crate::iex::star`] on the disjuncts of
/// `φ` (so that `|φ(D)| = Σ c_ψ |ψ(D)|` holds for every `D`).
pub fn recover_all_free_counts(
    star: &[SignedPp],
    b: &Structure,
    oracle: &mut CountOracle,
) -> RecoveredCounts {
    let queries = Rc::new(RefCell::new(0usize));
    let oracle = Rc::new(RefCell::new(oracle));
    let q2 = Rc::clone(&queries);
    let o2 = Rc::clone(&oracle);
    let counts = recover_with(star, b, &move |d: &Structure| {
        *q2.borrow_mut() += 1;
        (o2.borrow_mut())(d)
    });
    let total = *queries.borrow();
    RecoveredCounts {
        counts,
        oracle_queries: total,
    }
}

type SumFn<'a> = Rc<dyn Fn(&Structure) -> Integer + 'a>;

fn recover_with<'a>(
    star: &[SignedPp],
    b: &Structure,
    oracle: &'a (dyn Fn(&Structure) -> Natural + 'a),
) -> Vec<(usize, Natural)> {
    if star.is_empty() {
        return Vec::new();
    }
    // Group into semi-counting-equivalence classes.
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for (i, term) in star.iter().enumerate() {
        match classes
            .iter_mut()
            .find(|class| semi_counting_equivalent(&star[class[0]].formula, &term.formula))
        {
            Some(class) => class.push(i),
            None => classes.push(vec![i]),
        }
    }
    let representatives: Vec<&PpFormula> = classes
        .iter()
        .map(|class| &star[class[0]].formula)
        .collect();
    let c = find_distinguishing_structure(&representatives);

    // x_j = |ψ_j(C)| (equal within a class since all counts on C are
    // positive and the class is semi-counting equivalent).
    let xs: Vec<Rational> = representatives
        .iter()
        .map(|r| Rational::from(Integer::from(count_pp_brute(r, &c))))
        .collect();

    // The per-class signed sums on an arbitrary structure D, recovered by
    // s oracle queries on D × C^ℓ and a Vandermonde solve.
    let class_sums = {
        let c = c.clone();
        let xs = xs.clone();
        move |d: &Structure| -> Vec<Integer> {
            let ys: Vec<Rational> = (0..xs.len())
                .map(|l| {
                    let product = ops::direct_product(d, &ops::power(&c, l));
                    Rational::from(Integer::from(oracle(&product)))
                })
                .collect();
            let solution = solve_transposed_vandermonde(&xs, &ys)
                .expect("distinct class counts give a nonsingular system");
            solution
                .into_iter()
                .map(|w| w.to_integer().expect("class sums are integers"))
                .collect()
        }
    };
    let class_sums = Rc::new(class_sums);

    // Split each class with Lemma 5.18.
    let mut results: Vec<(usize, Natural)> = Vec::new();
    for (j, class) in classes.iter().enumerate() {
        let terms: Vec<(usize, PpFormula, Integer)> = class
            .iter()
            .map(|&i| (i, star[i].formula.clone(), star[i].coefficient.clone()))
            .collect();
        let sums = Rc::clone(&class_sums);
        let base: SumFn = Rc::new(move |d: &Structure| sums(d)[j].clone());
        split_class(&terms, base, b, &mut results);
    }
    results.sort_by_key(|&(i, _)| i);
    results
}

/// Lemma 5.18: recovers each `|ψᵢ(B)|` from an oracle for the signed
/// class sum `Σ cᵢ·|ψᵢ(·)|`, for pairwise semi-counting-equivalent,
/// pairwise non-counting-equivalent formulas with nonzero coefficients.
fn split_class<'a>(
    terms: &[(usize, PpFormula, Integer)],
    class_sum: SumFn<'a>,
    b: &Structure,
    results: &mut Vec<(usize, Natural)>,
) {
    if terms.is_empty() {
        return;
    }
    // Find a hom-minimal formula: no other member's structure maps into it
    // (Proposition 5.19; minimality exists because members are pairwise
    // non-hom-equivalent by Proposition 5.17).
    let minimal = (0..terms.len())
        .find(|&i| {
            terms.iter().enumerate().all(|(j, (_, other, _))| {
                j == i || !hom::homomorphism_exists(other.structure(), terms[i].1.structure())
            })
        })
        .expect("a hom-minimal class member exists");
    let (index, formula, coefficient) = &terms[minimal];
    let c_i: Structure = formula.structure().clone();
    // |ψᵢ(Cᵢ)| ≥ 1 (the identity assignment extends).
    let count_on_ci = Integer::from(count_pp_brute(formula, &c_i));
    assert!(!count_on_ci.is_zero());
    let denominator = coefficient * &count_on_ci;

    // class_sum(B × Cᵢ) = cᵢ·|ψᵢ(B)|·|ψᵢ(Cᵢ)| — all other members vanish.
    let value = class_sum(&ops::direct_product(b, &c_i));
    let count_b = value.div_exact(&denominator);
    assert!(
        !count_b.is_negative(),
        "recovered count must be non-negative"
    );
    results.push((*index, count_b.into_magnitude()));

    // Remaining members: subtract ψᵢ's contribution from the sum.
    let rest: Vec<(usize, PpFormula, Integer)> = terms
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != minimal)
        .map(|(_, t)| t.clone())
        .collect();
    if rest.is_empty() {
        return;
    }
    let coefficient = coefficient.clone();
    let parent = Rc::clone(&class_sum);
    let reduced: SumFn = Rc::new(move |d: &Structure| {
        let on_product = parent(&ops::direct_product(d, &c_i));
        let psi_on_d = on_product.div_exact(&denominator);
        &parent(d) - &(&coefficient * &psi_on_d)
    });
    split_class(&rest, reduced, b, results);
}

/// Recovers `|ψ(B)|` for every formula of `φ⁺` — the general-case
/// reduction of Appendix A. Returns `(formula, count)` pairs in the order
/// of `decomposition.plus`.
pub fn recover_plus_counts(
    decomposition: &PlusDecomposition,
    liberal_count: usize,
    b: &Structure,
    oracle: &mut CountOracle,
) -> Vec<(PpFormula, Natural)> {
    let mut results = Vec::new();
    // φ⁻_af members: recover on B × C_ψ where C_ψ is ψ's own structure.
    for star_index in decomposition.minus_af() {
        let psi = &decomposition.star_af[star_index].formula;
        let c_psi = psi.structure().clone();
        let target = ops::direct_product(b, &c_psi);
        let recovered = recover_all_free_counts(&decomposition.star_af, &target, oracle);
        let on_product = recovered
            .counts
            .iter()
            .find(|(i, _)| *i == star_index)
            .expect("recovery covers every star term")
            .1
            .clone();
        let on_c = count_pp_brute(psi, &c_psi);
        let (count, remainder) = on_product.div_rem(&on_c);
        assert!(remainder.is_zero(), "product counts factor exactly");
        results.push((psi.clone(), count));
    }
    // Sentence disjuncts: the A × B saturation test.
    for theta in &decomposition.sentences {
        let a = theta.structure();
        let product = ops::direct_product(a, b);
        let observed = oracle(&product);
        let saturated =
            Natural::from(a.universe_size() * b.universe_size()).pow(liberal_count as u32);
        let count = if observed == saturated && b.universe_size() > 0 {
            Natural::from(b.universe_size()).pow(liberal_count as u32)
        } else {
            Natural::zero()
        };
        results.push((theta.clone(), count));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_ep_with;
    use crate::iex::star;
    use crate::plus::plus_decomposition;
    use epq_counting::brute::count_disjuncts_brute;
    use epq_counting::engines::FptEngine;
    use epq_logic::parser::parse_query;
    use epq_logic::{dnf, Query};
    use epq_structures::Signature;

    fn example_c() -> Structure {
        let sig = Signature::from_symbols([("E", 2)]);
        let mut s = Structure::new(sig, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 3)] {
            s.add_tuple_named("E", &[u, v]);
        }
        s
    }

    fn disjuncts_of(text: &str) -> (Query, Vec<PpFormula>) {
        let q = parse_query(text).unwrap();
        let sig = epq_logic::query::infer_signature([q.formula()]).unwrap();
        let ds = dnf::disjuncts(&q, &sig).unwrap();
        (q, ds)
    }

    /// Example 4.3: the paper's concrete distinguishing structure
    /// C = ({1,2,3,4}, E = {(1,2),(2,3),(3,4),(4,4)}) (0-based here)
    /// separates φ1, φ2, φ1∧φ2 of Example 4.1.
    #[test]
    fn example_4_3_paper_structure_is_distinguishing() {
        let (_, ds) = disjuncts_of("(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))");
        let phi1 = &ds[0];
        let phi2 = &ds[1];
        let conj = PpFormula::conjoin(&[phi1, phi2]);
        let c = example_c();
        assert!(is_distinguishing(&c, &[phi1, phi2, &conj]));
        // The paper's counts are distinct; sanity check them.
        let c1 = count_pp_brute(phi1, &c);
        let c2 = count_pp_brute(phi2, &c);
        let c12 = count_pp_brute(&conj, &c);
        assert!(c1 != c2 && c1 != c12 && c2 != c12);
    }

    #[test]
    fn example_4_3_full_recovery_from_oracle() {
        // Recover |φ1(B)|, |φ2(B)|, |(φ1∧φ2)(B)| from an oracle for
        // |φ(·)| only.
        let (query, ds) = disjuncts_of("(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))");
        let star_terms = star(&ds);
        let b = example_c();
        let sig = b.signature().clone();
        let mut oracle_calls = 0usize;
        let mut oracle = |d: &Structure| {
            oracle_calls += 1;
            crate::count::count_ep(&query, &sig, d, &FptEngine).unwrap()
        };
        let recovered = recover_all_free_counts(&star_terms, &b, &mut oracle);
        assert_eq!(recovered.counts.len(), star_terms.len());
        for (i, count) in &recovered.counts {
            let direct = count_pp_brute(&star_terms[*i].formula, &b);
            assert_eq!(*count, direct, "star term {i}");
        }
        assert!(recovered.oracle_queries > 0);
    }

    #[test]
    fn recovery_on_example_4_2_with_cancellation() {
        let (query, ds) =
            disjuncts_of("(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))");
        let star_terms = star(&ds);
        assert_eq!(star_terms.len(), 2);
        let b = example_c();
        let sig = b.signature().clone();
        let mut oracle =
            |d: &Structure| crate::count::count_ep(&query, &sig, d, &FptEngine).unwrap();
        let recovered = recover_all_free_counts(&star_terms, &b, &mut oracle);
        for (i, count) in &recovered.counts {
            assert_eq!(*count, count_pp_brute(&star_terms[*i].formula, &b));
        }
    }

    #[test]
    fn distinguishing_search_on_semi_equivalent_classes_panics() {
        let (_, ds) = disjuncts_of("(x, y) := E(x,y) | E(y,x)");
        // E(x,y) and E(y,x) with the same liberal set are semi-counting
        // equivalent (renaming) — the search must reject them.
        let result = std::panic::catch_unwind(|| find_distinguishing_structure(&[&ds[0], &ds[1]]));
        assert!(result.is_err());
    }

    #[test]
    fn general_recovery_with_sentence_disjuncts() {
        // Example 5.21's θ — recover |φ1(B)| and |θ1(B)| from the
        // θ-oracle.
        let text = "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) \
                    | (E(w,x) & E(x,y)) \
                    | (exists a, b, c, d . E(a,b) & E(b,c) & E(c,d))";
        let query = parse_query(text).unwrap();
        let sig = Signature::from_symbols([("E", 2)]);
        let dec = plus_decomposition(&query, &sig).unwrap();
        assert_eq!(dec.plus.len(), 2);

        // Structure without a directed 3-path: θ1 false.
        let mut b = Structure::new(sig.clone(), 4);
        b.add_tuple_named("E", &[0, 1]);
        b.add_tuple_named("E", &[2, 3]);
        let mut oracle = |d: &Structure| count_ep_with(&dec, query.liberal_count(), d, &FptEngine);
        let recovered = recover_plus_counts(&dec, query.liberal_count(), &b, &mut oracle);
        assert_eq!(recovered.len(), 2);
        for (formula, count) in &recovered {
            assert_eq!(*count, count_pp_brute(formula, &b), "{formula}");
        }

        // Structure with a 3-path: θ1 true, |θ1(B)| = |B|^4.
        let b2 = example_c();
        let mut oracle2 = |d: &Structure| count_ep_with(&dec, query.liberal_count(), d, &FptEngine);
        let recovered2 = recover_plus_counts(&dec, query.liberal_count(), &b2, &mut oracle2);
        for (formula, count) in &recovered2 {
            assert_eq!(*count, count_pp_brute(formula, &b2), "{formula}");
        }
        let theta_count = &recovered2.last().unwrap().1;
        assert_eq!(theta_count.to_u64(), Some(256));
    }

    #[test]
    fn class_splitting_exercises_lemma_5_18() {
        // A union whose star terms contain two semi-counting-equivalent
        // but non-counting-equivalent members: E(x,y) ∨ (E(x,y) ∧ E(y,y)).
        // Star: E(x,y) [+1], E(x,y)∧E(y,y) [cancels to ... compute].
        let (query, ds) = disjuncts_of("(x, y) := E(x,y) | (E(x,y) & E(y,y))");
        let star_terms = star(&ds);
        // Check that at least one semi-counting-equivalence class has two
        // members (the whole point of this test).
        let mut found_multi = false;
        for (i, a) in star_terms.iter().enumerate() {
            for b in &star_terms[i + 1..] {
                if semi_counting_equivalent(&a.formula, &b.formula) {
                    found_multi = true;
                }
            }
        }
        let b = example_c();
        let sig = b.signature().clone();
        let mut oracle =
            |d: &Structure| crate::count::count_ep(&query, &sig, d, &FptEngine).unwrap();
        let recovered = recover_all_free_counts(&star_terms, &b, &mut oracle);
        for (i, count) in &recovered.counts {
            assert_eq!(*count, count_pp_brute(&star_terms[*i].formula, &b));
        }
        // The union count check: Σ c|ψ(B)| = |φ(B)|.
        let direct = count_disjuncts_brute(&ds, &b);
        let mut acc = Integer::zero();
        for (i, count) in &recovered.counts {
            acc += &(&star_terms[*i].coefficient * &Integer::from(count.clone()));
        }
        assert_eq!(acc.into_magnitude(), direct);
        let _ = found_multi; // documented: classes here may be singletons
    }
}
