//! Query family generators.
//!
//! Families are indexed by a size parameter `k` and come in three width
//! profiles matching the trichotomy's regimes:
//!
//! * flat core & contract treewidth (paths, stars, quantified chains) —
//!   the FPT regime;
//! * growing core treewidth, flat contract treewidth (quantified
//!   cliques) — the Clique-equivalent regime;
//! * growing contract treewidth (free cliques, free grids) — the
//!   #Clique-hard regime.

use epq_logic::query::infer_signature;
use epq_logic::{parser, Formula, Query, Var};
use epq_structures::Signature;
use rand::Rng;

/// `P_k(v0,…,vk) = ⋀ E(v_i, v_{i+1})` — the length-k directed path query
/// (treewidth 1; FPT family).
pub fn path_query(k: usize) -> Query {
    assert!(k >= 1, "paths need at least one edge");
    let atoms = (0..k).map(|i| {
        Formula::Atom(epq_logic::Atom::new(
            "E",
            vec![Var::new(format!("v{i}")), Var::new(format!("v{}", i + 1))],
        ))
    });
    Query::from_formula(Formula::conjunction(atoms)).expect("valid path query")
}

/// The k-cycle query `C_k` (treewidth 2; FPT family).
pub fn cycle_query(k: usize) -> Query {
    assert!(k >= 2, "cycles need at least 2 edges");
    let mut atoms: Vec<Formula> = (0..k - 1)
        .map(|i| {
            Formula::Atom(epq_logic::Atom::new(
                "E",
                vec![Var::new(format!("v{i}")), Var::new(format!("v{}", i + 1))],
            ))
        })
        .collect();
    atoms.push(Formula::Atom(epq_logic::Atom::new(
        "E",
        vec![Var::new(format!("v{}", k - 1)), Var::new("v0")],
    )));
    Query::from_formula(Formula::conjunction(atoms)).expect("valid cycle query")
}

/// The k-leaf out-star query `⋀ E(c, l_i)` (treewidth 1; FPT family).
pub fn star_query(k: usize) -> Query {
    assert!(k >= 1);
    let atoms = (0..k).map(|i| {
        Formula::Atom(epq_logic::Atom::new(
            "E",
            vec![Var::new("c"), Var::new(format!("l{i}"))],
        ))
    });
    Query::from_formula(Formula::conjunction(atoms)).expect("valid star query")
}

/// The quantified-middle path query
/// `Q_k(x, y) = ∃u₁…u_{k−1} . E(x,u₁) ∧ … ∧ E(u_{k−1},y)`
/// (core/contract treewidth 1; FPT family with quantifiers).
pub fn quantified_path_query(k: usize) -> Query {
    assert!(k >= 2, "need at least one quantified middle vertex");
    let middles: Vec<String> = (1..k).map(|i| format!("u{i}")).collect();
    let mut names = vec!["x".to_string()];
    names.extend(middles.iter().cloned());
    names.push("y".to_string());
    let atoms = (0..k).map(|i| {
        Formula::Atom(epq_logic::Atom::new(
            "E",
            vec![Var::new(&names[i]), Var::new(&names[i + 1])],
        ))
    });
    let matrix = Formula::conjunction(atoms);
    let refs: Vec<&str> = middles.iter().map(|s| s.as_str()).collect();
    Query::from_formula(Formula::exists(&refs, matrix)).expect("valid quantified path")
}

/// The free k-clique query (growing core *and* contract treewidth:
/// the #Clique-hard family). Re-exported from `epq-counting`.
pub fn clique_query(k: usize) -> Query {
    epq_counting::clique::clique_query(k)
}

/// The pendant-clique query
/// `W_k(x) = ∃u₁…u_k . E(x,u₁) ∧ ⋀_{i<j} E(u_i,u_j)` — one free vertex
/// attached to a fully quantified k-clique. Core treewidth grows with k,
/// contract treewidth stays 0: the Clique-equivalent family (case 2).
pub fn pendant_clique_query(k: usize) -> Query {
    assert!(k >= 2);
    let us: Vec<String> = (1..=k).map(|i| format!("u{i}")).collect();
    let mut atoms = vec![Formula::Atom(epq_logic::Atom::new(
        "E",
        vec![Var::new("x"), Var::new(&us[0])],
    ))];
    for i in 0..k {
        for j in i + 1..k {
            atoms.push(Formula::Atom(epq_logic::Atom::new(
                "E",
                vec![Var::new(&us[i]), Var::new(&us[j])],
            )));
        }
    }
    let refs: Vec<&str> = us.iter().map(|s| s.as_str()).collect();
    Query::from_formula(Formula::exists(&refs, Formula::conjunction(atoms)))
        .expect("valid pendant clique query")
}

/// The free `r × c` grid query (contract treewidth min(r, c): a
/// polynomially-growing hard family).
pub fn grid_query(rows: usize, cols: usize) -> Query {
    assert!(rows >= 1 && cols >= 1);
    let var = |r: usize, c: usize| format!("g{r}_{c}");
    let mut atoms = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                atoms.push(Formula::Atom(epq_logic::Atom::new(
                    "E",
                    vec![Var::new(var(r, c)), Var::new(var(r, c + 1))],
                )));
            }
            if r + 1 < rows {
                atoms.push(Formula::Atom(epq_logic::Atom::new(
                    "E",
                    vec![Var::new(var(r, c)), Var::new(var(r + 1, c))],
                )));
            }
        }
    }
    Query::from_formula(Formula::conjunction(atoms)).expect("valid grid query")
}

/// A seeded random conjunctive query: `vars` variables named `v0…`,
/// `atoms` binary `E`-atoms over them, each variable quantified with
/// probability `quantify`.
pub fn random_cq<R: Rng>(rng: &mut R, vars: usize, atoms: usize, quantify: f64) -> Query {
    assert!(vars >= 1);
    let names: Vec<String> = (0..vars).map(|i| format!("v{i}")).collect();
    let mut parts = Vec::with_capacity(atoms);
    for _ in 0..atoms {
        let a = rng.gen_range(0..vars);
        let b = rng.gen_range(0..vars);
        parts.push(Formula::Atom(epq_logic::Atom::new(
            "E",
            vec![Var::new(&names[a]), Var::new(&names[b])],
        )));
    }
    let matrix = Formula::conjunction(parts);
    let used = matrix.free_vars();
    let quantified: Vec<&str> = names
        .iter()
        .filter(|n| used.contains(&Var::new(n.as_str())) && rng.gen_bool(quantify))
        .map(|s| s.as_str())
        .collect();
    Query::from_formula(Formula::exists(&quantified, matrix)).expect("valid random CQ")
}

/// A seeded random UCQ: a disjunction of random CQ disjuncts over a
/// shared variable pool. Which variables are quantifiable is decided
/// globally (with probability `quantify` per variable), so no variable is
/// liberal in one disjunct and quantified in another.
pub fn random_ucq<R: Rng>(
    rng: &mut R,
    disjuncts: usize,
    vars: usize,
    atoms: usize,
    quantify: f64,
) -> Query {
    random_ucq_with(rng, disjuncts, vars, atoms, quantify, |rng, names| {
        let a = rng.gen_range(0..names.len());
        let b = rng.gen_range(0..names.len());
        Formula::Atom(epq_logic::Atom::new(
            "E",
            vec![Var::new(&names[a]), Var::new(&names[b])],
        ))
    })
}

/// A seeded random UCQ over an arbitrary signature: like
/// [`random_ucq`], but each atom draws its relation symbol uniformly
/// from `signature` and fills its arity with random variables from the
/// shared pool. Which variables are quantifiable is decided globally,
/// as in [`random_ucq`].
pub fn random_ucq_over<R: Rng>(
    rng: &mut R,
    signature: &Signature,
    disjuncts: usize,
    vars: usize,
    atoms: usize,
    quantify: f64,
) -> Query {
    assert!(!signature.is_empty());
    let symbols: Vec<(String, usize)> = signature
        .iter()
        .map(|(_, name, arity)| (name.to_string(), arity))
        .collect();
    random_ucq_with(rng, disjuncts, vars, atoms, quantify, |rng, names| {
        let (name, arity) = &symbols[rng.gen_range(0..symbols.len())];
        let args: Vec<Var> = (0..*arity)
            .map(|_| Var::new(&names[rng.gen_range(0..names.len())]))
            .collect();
        Formula::Atom(epq_logic::Atom::new(name, args))
    })
}

/// The shared UCQ builder behind [`random_ucq`] and
/// [`random_ucq_over`], parameterized by the atom draw (kept a closure
/// rather than delegation so each caller's seeded RNG sequence stays
/// exactly what it always was).
fn random_ucq_with<R: Rng>(
    rng: &mut R,
    disjuncts: usize,
    vars: usize,
    atoms: usize,
    quantify: f64,
    mut draw_atom: impl FnMut(&mut R, &[String]) -> Formula,
) -> Query {
    assert!(disjuncts >= 1);
    assert!(vars >= 1);
    let names: Vec<String> = (0..vars).map(|i| format!("v{i}")).collect();
    let quantifiable: Vec<bool> = (0..vars).map(|_| rng.gen_bool(quantify)).collect();
    let parts: Vec<Formula> = (0..disjuncts)
        .map(|_| {
            let body: Vec<Formula> = (0..atoms).map(|_| draw_atom(rng, &names)).collect();
            let matrix = Formula::conjunction(body);
            let used = matrix.free_vars();
            let quantified: Vec<&str> = names
                .iter()
                .enumerate()
                .filter(|(i, n)| quantifiable[*i] && used.contains(&Var::new(n.as_str())))
                .map(|(_, s)| s.as_str())
                .collect();
            Formula::exists(&quantified, matrix)
        })
        .collect();
    Query::from_formula(Formula::disjunction(parts)).expect("valid random UCQ")
}

/// Parses a catalog entry; panics on error (catalog strings are static).
pub fn parse_static(text: &str) -> (Query, Signature) {
    let q = parser::parse_query(text).expect("static catalog query parses");
    let sig = infer_signature([q.formula()]).expect("static catalog signature");
    (q, sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_ucq_over_uses_signature_and_is_deterministic() {
        let sig = Signature::from_symbols([("E", 2), ("T", 3)]);
        let a = random_ucq_over(&mut StdRng::seed_from_u64(5), &sig, 2, 3, 2, 0.4);
        let b = random_ucq_over(&mut StdRng::seed_from_u64(5), &sig, 2, 3, 2, 0.4);
        assert_eq!(a.to_string(), b.to_string());
        // Every atom checks against the generating signature.
        epq_logic::query::check_against_signature(a.formula(), &sig).unwrap();
    }

    #[test]
    fn path_query_shape() {
        let q = path_query(3);
        assert_eq!(q.formula().atoms().len(), 3);
        assert_eq!(q.liberal_count(), 4);
        assert!(q.is_pp());
    }

    #[test]
    fn cycle_query_closes() {
        let q = cycle_query(4);
        assert_eq!(q.formula().atoms().len(), 4);
        assert_eq!(q.liberal_count(), 4);
    }

    #[test]
    fn quantified_path_liberal_set() {
        let q = quantified_path_query(3);
        assert_eq!(q.liberal_count(), 2);
        assert_eq!(q.formula().atoms().len(), 3);
    }

    #[test]
    fn pendant_clique_is_single_free_variable() {
        let q = pendant_clique_query(3);
        assert_eq!(q.liberal_count(), 1);
        // 1 pendant edge + C(3,2) clique atoms.
        assert_eq!(q.formula().atoms().len(), 4);
    }

    #[test]
    fn grid_query_atom_count() {
        let q = grid_query(2, 3);
        // edges of a 2×3 grid = 7.
        assert_eq!(q.formula().atoms().len(), 7);
        assert_eq!(q.liberal_count(), 6);
    }

    #[test]
    fn random_cq_is_deterministic_per_seed() {
        let a = random_cq(&mut StdRng::seed_from_u64(1), 4, 5, 0.4);
        let b = random_cq(&mut StdRng::seed_from_u64(1), 4, 5, 0.4);
        assert_eq!(a, b);
        assert!(a.is_pp());
    }

    #[test]
    fn random_ucq_has_requested_disjuncts() {
        let q = random_ucq(&mut StdRng::seed_from_u64(2), 3, 4, 3, 0.3);
        assert!(!q.is_pp());
        let sig = infer_signature([q.formula()]).unwrap();
        let ds = epq_logic::dnf::disjuncts(&q, &sig).unwrap();
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn star_query_center_degree() {
        let q = star_query(5);
        assert_eq!(q.formula().atoms().len(), 5);
        assert_eq!(q.liberal_count(), 6);
    }
}
