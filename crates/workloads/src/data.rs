//! Structure (data) generators.

use epq_structures::live::{StreamLog, StreamOp};
use epq_structures::{RelId, Signature, Structure};
use rand::Rng;

/// The digraph signature `{E/2}`.
pub fn digraph_signature() -> Signature {
    Signature::from_symbols([("E", 2)])
}

/// A random digraph structure: each ordered pair (including loops) is an
/// edge with probability `p`.
pub fn random_digraph<R: Rng>(rng: &mut R, n: usize, p: f64) -> Structure {
    let mut s = Structure::new(digraph_signature(), n);
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if rng.gen_bool(p) {
                s.add_tuple_named("E", &[u, v]);
            }
        }
    }
    s
}

/// A random structure over an arbitrary signature: every possible tuple
/// is present with probability `p` (capped at `max_tuples` draws per
/// relation for large universes).
pub fn random_structure<R: Rng>(
    rng: &mut R,
    signature: &Signature,
    n: usize,
    p: f64,
    max_tuples: usize,
) -> Structure {
    let mut s = Structure::new(signature.clone(), n);
    for (rel, _, arity) in signature.iter() {
        let full = (n as u64).checked_pow(arity as u32).unwrap_or(u64::MAX);
        if full as usize <= max_tuples {
            // Exhaustive sweep.
            let mut tuple = vec![0u32; arity];
            loop {
                if rng.gen_bool(p) {
                    s.add_tuple(rel, &tuple);
                }
                let mut i = 0;
                loop {
                    if i == arity {
                        break;
                    }
                    tuple[i] += 1;
                    if (tuple[i] as usize) < n {
                        break;
                    }
                    tuple[i] = 0;
                    i += 1;
                }
                if i == arity {
                    break;
                }
            }
        } else {
            let draws = (full as f64 * p).min(max_tuples as f64) as usize;
            let mut tuple = vec![0u32; arity];
            for _ in 0..draws {
                for t in tuple.iter_mut() {
                    *t = rng.gen_range(0..n as u32);
                }
                s.add_tuple(rel, &tuple);
            }
        }
    }
    s
}

/// A batch of independent random digraphs on a shared RNG stream —
/// the batch-shaped workload for `epq_core::prepared::count_ep_batch`
/// (one query prepared once, counted across the whole vector).
pub fn random_digraph_batch<R: Rng>(rng: &mut R, count: usize, n: usize, p: f64) -> Vec<Structure> {
    (0..count).map(|_| random_digraph(rng, n, p)).collect()
}

/// A batch of random structures over an arbitrary signature (see
/// [`random_structure`] for the per-structure sampling).
pub fn random_structure_batch<R: Rng>(
    rng: &mut R,
    count: usize,
    signature: &Signature,
    n: usize,
    p: f64,
    max_tuples: usize,
) -> Vec<Structure> {
    (0..count)
        .map(|_| random_structure(rng, signature, n, p, max_tuples))
        .collect()
}

/// A size-sweep batch: one random digraph per size in `sizes` (all from
/// the same RNG stream), for batches whose members grow.
pub fn random_digraph_size_sweep<R: Rng>(rng: &mut R, sizes: &[usize], p: f64) -> Vec<Structure> {
    sizes.iter().map(|&n| random_digraph(rng, n, p)).collect()
}

/// A random streaming insert log over an arbitrary signature — the
/// workload shape of `epq_core::incremental::LiveCount` and the `P4`
/// experiment.
///
/// Produces `inserts` random tuple insertions (elements uniform over
/// `0..n`; duplicates are allowed — ingestion is idempotent), the
/// target relation of each drawn with probability proportional to
/// `weights` (one integer weight per signature symbol — real streams
/// are skewed, with most traffic landing on one relation, which is
/// exactly what makes incremental maintenance pay). A checkpoint is
/// emitted after every `checkpoint_every` inserts and once more at the
/// end if inserts remain unreported.
///
/// # Panics
/// Panics if `weights` does not match the signature, all weights are
/// zero, a weighted relation exists with `n == 0`, or
/// `checkpoint_every == 0`.
pub fn random_insert_log<R: Rng>(
    rng: &mut R,
    signature: &Signature,
    n: usize,
    inserts: usize,
    checkpoint_every: usize,
    weights: &[u32],
) -> StreamLog {
    assert_eq!(
        weights.len(),
        signature.len(),
        "one weight per relation symbol"
    );
    let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    assert!(total > 0, "at least one relation needs a nonzero weight");
    assert!(checkpoint_every >= 1, "checkpoint_every must be positive");
    let mut ops = Vec::with_capacity(inserts + inserts / checkpoint_every + 1);
    let mut since_checkpoint = 0usize;
    for _ in 0..inserts {
        // Cumulative-weight draw (integer arithmetic: the rand shim's
        // float surface is minimal, and determinism per seed matters).
        let mut pick = rng.gen_range(0..total);
        let rel = weights
            .iter()
            .position(|&w| {
                let w = u64::from(w);
                if pick < w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .expect("total weight covers every draw");
        let rel = RelId(rel as u32);
        assert!(n > 0, "cannot draw tuples over an empty universe");
        let tuple: Vec<u32> = (0..signature.arity(rel))
            .map(|_| rng.gen_range(0..n as u32))
            .collect();
        ops.push(StreamOp::Insert { rel, tuple });
        since_checkpoint += 1;
        if since_checkpoint == checkpoint_every {
            ops.push(StreamOp::Checkpoint);
            since_checkpoint = 0;
        }
    }
    if since_checkpoint > 0 {
        ops.push(StreamOp::Checkpoint);
    }
    StreamLog {
        signature: signature.clone(),
        universe: n,
        ops,
    }
}

/// [`random_insert_log`] over the digraph signature `{E/2}`.
pub fn random_digraph_insert_log<R: Rng>(
    rng: &mut R,
    n: usize,
    inserts: usize,
    checkpoint_every: usize,
) -> StreamLog {
    random_insert_log(
        rng,
        &digraph_signature(),
        n,
        inserts,
        checkpoint_every,
        &[1],
    )
}

/// The directed path structure `0 → 1 → … → n−1`.
pub fn path_structure(n: usize) -> Structure {
    let mut s = Structure::new(digraph_signature(), n);
    for i in 1..n as u32 {
        s.add_tuple_named("E", &[i - 1, i]);
    }
    s
}

/// The directed cycle structure on `n` elements.
pub fn cycle_structure(n: usize) -> Structure {
    assert!(n >= 1);
    let mut s = path_structure(n);
    s.add_tuple_named("E", &[n as u32 - 1, 0]);
    s
}

/// The paper's Example 4.3 structure: a 4-path with a self-loop at the
/// end (`E = {(0,1), (1,2), (2,3), (3,3)}` — 0-based).
pub fn example_4_3_structure() -> Structure {
    let mut s = Structure::new(digraph_signature(), 4);
    for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 3)] {
        s.add_tuple_named("E", &[u, v]);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn digraph_density_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(random_digraph(&mut rng, 5, 0.0).tuple_count(), 0);
        assert_eq!(random_digraph(&mut rng, 5, 1.0).tuple_count(), 25);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_digraph(&mut StdRng::seed_from_u64(9), 8, 0.3);
        let b = random_digraph(&mut StdRng::seed_from_u64(9), 8, 0.3);
        assert_eq!(a, b);
    }

    #[test]
    fn random_structure_respects_signature() {
        let sig = Signature::from_symbols([("R", 3), ("P", 1)]);
        let s = random_structure(&mut StdRng::seed_from_u64(4), &sig, 4, 0.5, 1000);
        assert_eq!(s.signature(), &sig);
        assert!(s
            .relation(sig.lookup("R").unwrap())
            .tuples()
            .all(|t| t.len() == 3));
    }

    #[test]
    fn batches_are_deterministic_and_sized() {
        let a = random_digraph_batch(&mut StdRng::seed_from_u64(3), 5, 4, 0.3);
        let b = random_digraph_batch(&mut StdRng::seed_from_u64(3), 5, 4, 0.3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        // Members are independent draws, not copies of one sample.
        assert!(a.iter().any(|s| s != &a[0]));

        let sig = Signature::from_symbols([("R", 2)]);
        let batch = random_structure_batch(&mut StdRng::seed_from_u64(4), 3, &sig, 3, 0.5, 100);
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|s| s.signature() == &sig));

        let sweep = random_digraph_size_sweep(&mut StdRng::seed_from_u64(5), &[2, 4, 6], 0.5);
        assert_eq!(
            sweep.iter().map(|s| s.universe_size()).collect::<Vec<_>>(),
            vec![2, 4, 6]
        );
    }

    #[test]
    fn insert_logs_are_deterministic_and_checkpointed() {
        let sig = Signature::from_symbols([("E", 2), ("F", 2)]);
        let a = random_insert_log(&mut StdRng::seed_from_u64(7), &sig, 6, 25, 10, &[1, 9]);
        let b = random_insert_log(&mut StdRng::seed_from_u64(7), &sig, 6, 25, 10, &[1, 9]);
        assert_eq!(a, b);
        assert_eq!(a.insert_count(), 25);
        // Every 10 inserts plus the trailing remainder checkpoint.
        assert_eq!(a.checkpoint_count(), 3);
        assert_eq!(a.universe, 6);
        // The log round-trips through its text format.
        let reparsed = epq_structures::live::StreamLog::parse(&a.to_string()).unwrap();
        assert_eq!(a, reparsed);
        // Replay respects arities and universe bounds (would panic
        // otherwise) and the skew favors F.
        let replayed = a.replay();
        let f_tuples = replayed.relation(sig.lookup("F").unwrap()).len();
        let e_tuples = replayed.relation(sig.lookup("E").unwrap()).len();
        assert!(f_tuples > e_tuples, "weights should skew toward F");
    }

    #[test]
    fn digraph_insert_log_shape() {
        let log = random_digraph_insert_log(&mut StdRng::seed_from_u64(3), 5, 20, 5);
        assert_eq!(log.signature.len(), 1);
        assert_eq!(log.insert_count(), 20);
        assert_eq!(log.checkpoint_count(), 4);
        // A zero-weight relation is never drawn.
        let sig = Signature::from_symbols([("E", 2), ("F", 2)]);
        let skewed = random_insert_log(&mut StdRng::seed_from_u64(4), &sig, 4, 12, 4, &[0, 1]);
        let replayed = skewed.replay();
        assert!(replayed.relation(sig.lookup("E").unwrap()).is_empty());
        assert!(!replayed.relation(sig.lookup("F").unwrap()).is_empty());
    }

    #[test]
    fn deterministic_structures() {
        assert_eq!(path_structure(4).tuple_count(), 3);
        assert_eq!(cycle_structure(4).tuple_count(), 4);
        assert_eq!(example_4_3_structure().tuple_count(), 4);
    }
}
