//! # epq-workloads — query families and data generators
//!
//! Substrate crate S8 of the `epq` workspace (see `DESIGN.md`).
//!
//! The benchmark experiments and examples need reproducible workloads:
//!
//! * [`queries`] — the query families of the trichotomy table
//!   (experiment T1): paths, cycles, stars, grids, cliques, their
//!   quantified variants, and seeded random CQs/UCQs;
//! * [`data`] — structure generators (random digraphs, random
//!   τ-structures, deterministic paths/cycles);
//! * [`social`] — a synthetic social-network scenario (people, `follows`,
//!   `likes`) with a catalog of realistic UCQ analytics queries, used by
//!   the `social_network` example.
//!
//! Everything is deterministic given a seed.

pub mod data;
pub mod queries;
pub mod social;
