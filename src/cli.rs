//! The `epq` command-line interface.
//!
//! A thin, dependency-free front end over the library: count answers,
//! classify queries, inspect φ*/φ⁺ decompositions, decide counting
//! equivalence, and explain relational-algebra plans. The binary in
//! `src/bin/epq.rs` forwards to [`run`], which writes to any `Write`
//! sink so the whole surface is unit-testable.

use epq_core::classify::classify_query;
use epq_core::equivalence::{counting_equivalent, semi_counting_equivalent};
use epq_core::iex::star;
use epq_core::plus::plus_decomposition;
use epq_core::prepared::PreparedQuery;
use epq_counting::engines::{
    BruteForceEngine, FptEngine, HomDpEngine, ParBruteForceEngine, ParFptEngine, ParRelalgEngine,
    PpCountingEngine, RelalgEngine,
};
use epq_logic::dnf;
use epq_logic::parser::parse_query;
use epq_logic::query::{check_against_signature, infer_signature};
use epq_logic::{PpFormula, Query};
use epq_structures::parse::{parse_structure, parse_structures};
use epq_structures::{Signature, Structure};
use std::io::Write;

/// Usage text for `epq help`.
pub const USAGE: &str = "\
epq — counting answers to existential positive queries (Chen & Mengel, PODS 2016)

USAGE:
  epq count    --query <Q> (--data <FILE> | --data-inline <S> | --batch <FILE>
               | --stream <FILE>) [--engine <E>] [--threads <N>]
  epq classify --query <Q>
  epq star     --query <Q>
  epq plus     --query <Q>
  epq equiv    --query <Q1> --query2 <Q2>
  epq explain  --query <Q> (--data <FILE> | --data-inline <S>)
  epq help

QUERY SYNTAX:    (x, y) := E(x,y) | (exists u . E(x,u) & E(u,y))
STRUCTURE SYNTAX: structure { universe 4  E = { (0,1), (1,2) } }
ENGINES:         fpt (default) | brute-force | relalg | hom-dp
                 | fpt-par | brute-par | relalg-par
THREADS:         --threads N caps the worker threads of the parallel engines,
                 of --batch fan-out, and of the --stream maintainer's joins
                 (default: all hardware threads)
BATCH:           --batch <FILE> reads one or more structure blocks; the query
                 is prepared once and counted per block (one count per line).
                 --threads caps the per-structure fan-out; each job's engine
                 runs single-threaded
STREAM:          --stream <FILE> replays a tuple log (universe N / rel R/k /
                 insert R e... / checkpoint lines) through the incremental
                 maintainer, printing one count per checkpoint (and a final
                 count if the log does not end on one). relalg-family engines
                 maintain through cached scans; DP-table engines recount each
                 affected disjunct in full
";

/// Runs the CLI with `args` (excluding the program name), writing to
/// `out`. Returns an error message on failure.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let io = |e: std::io::Error| format!("I/O error: {e}");
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => write!(out, "{USAGE}").map_err(io),
        Some("count") => {
            let query = required(args, "--query")?;
            if let Some(path) = flag_value(args, "--batch") {
                return count_batch(args, &query, &path, out);
            }
            if let Some(path) = flag_value(args, "--stream") {
                return count_stream(args, &query, &path, out);
            }
            let b = load_structure(args)?;
            let engine = engine_from(args)?;
            let (q, sig) = prepare(&query, Some(&b))?;
            let prepared = PreparedQuery::prepare(&q, &sig)
                .map_err(|e| e.to_string())?
                .with_engine(engine);
            writeln!(out, "{}", prepared.count(&b)).map_err(io)
        }
        Some("classify") => {
            let query = required(args, "--query")?;
            let (q, sig) = prepare(&query, None)?;
            let analysis = classify_query(&q, &sig).map_err(|e| e.to_string())?;
            writeln!(out, "phi+ size: {}", analysis.plus_analyses.len()).map_err(io)?;
            for (i, a) in analysis.plus_analyses.iter().enumerate() {
                writeln!(
                    out,
                    "  [{i}] core tw {:?}, contract tw {:?}: {}",
                    a.core_treewidth, a.contract_treewidth, a.core
                )
                .map_err(io)?;
            }
            writeln!(
                out,
                "max core treewidth: {}\nmax contract treewidth: {}",
                analysis.max_core_treewidth, analysis.max_contract_treewidth
            )
            .map_err(io)?;
            writeln!(
                out,
                "regime at width bound w: FPT if w >= {}, Clique-equivalent if {} > w >= {}, else #Clique-hard",
                analysis.max_core_treewidth.max(analysis.max_contract_treewidth),
                analysis.max_core_treewidth,
                analysis.max_contract_treewidth,
            )
            .map_err(io)
        }
        Some("star") => {
            let query = required(args, "--query")?;
            let (q, sig) = prepare(&query, None)?;
            let ds = dnf::disjuncts(&q, &sig).map_err(|e| e.to_string())?;
            writeln!(out, "disjuncts: {}", ds.len()).map_err(io)?;
            for d in &ds {
                writeln!(out, "  | {d}").map_err(io)?;
            }
            let terms = star(&ds);
            writeln!(out, "phi* terms: {}", terms.len()).map_err(io)?;
            for t in &terms {
                writeln!(out, "  {:>3} x |{}|", t.coefficient.to_string(), t.formula)
                    .map_err(io)?;
            }
            Ok(())
        }
        Some("plus") => {
            let query = required(args, "--query")?;
            let (q, sig) = prepare(&query, None)?;
            let dec = plus_decomposition(&q, &sig).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "normalized disjuncts: {} ({} free, {} sentences)",
                dec.disjuncts.len(),
                dec.all_free.len(),
                dec.sentences.len()
            )
            .map_err(io)?;
            writeln!(out, "phi+ ({} formulas):", dec.plus.len()).map_err(io)?;
            for f in &dec.plus {
                writeln!(out, "  {f}").map_err(io)?;
            }
            Ok(())
        }
        Some("equiv") => {
            let q1 = required(args, "--query")?;
            let q2 = required(args, "--query2")?;
            let (a, b) = prepare_pair(&q1, &q2)?;
            writeln!(out, "counting equivalent: {}", counting_equivalent(&a, &b)).map_err(io)?;
            if a.is_free() && b.is_free() {
                writeln!(
                    out,
                    "semi-counting equivalent: {}",
                    semi_counting_equivalent(&a, &b)
                )
                .map_err(io)?;
            }
            Ok(())
        }
        Some("explain") => {
            let query = required(args, "--query")?;
            let b = load_structure(args)?;
            let (q, sig) = prepare(&query, Some(&b))?;
            let ds = dnf::disjuncts(&q, &sig).map_err(|e| e.to_string())?;
            for (i, d) in ds.iter().enumerate() {
                writeln!(out, "disjunct {i}: {d}").map_err(io)?;
                for step in epq_relalg::engine::explain_pp(d, &b).steps {
                    writeln!(out, "  {step}").map_err(io)?;
                }
            }
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}; try `epq help`")),
    }
}

/// `epq count --batch <FILE>`: parse every structure block, prepare the
/// query once, and fan the per-structure counts across the pool.
fn count_batch(
    args: &[String],
    query_text: &str,
    path: &str,
    out: &mut dyn Write,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let structures = parse_structures(&text).map_err(|e| e.to_string())?;
    let first = &structures[0];
    for (i, s) in structures.iter().enumerate() {
        if s.signature() != first.signature() {
            return Err(format!(
                "batch structures must share one signature; block {i} differs from block 0"
            ));
        }
    }
    // The batch fan-out already saturates the pool, so the per-job
    // engine runs single-threaded — otherwise a parallel engine would
    // multiply up to threads x threads OS threads.
    let engine = engine_with_threads(args, 1)?;
    let threads = threads_from(args)?;
    let (q, sig) = prepare(query_text, Some(first))?;
    let prepared = PreparedQuery::prepare(&q, &sig)
        .map_err(|e| e.to_string())?
        .with_engine(engine);
    for n in prepared.count_batch(&structures, threads) {
        writeln!(out, "{n}").map_err(|e| format!("I/O error: {e}"))?;
    }
    Ok(())
}

/// `epq count --stream <FILE>`: replay a tuple log through the
/// incremental maintainer, printing the count at every checkpoint.
fn count_stream(
    args: &[String],
    query_text: &str,
    path: &str,
    out: &mut dyn Write,
) -> Result<(), String> {
    use epq_core::incremental::LiveCount;
    use epq_structures::live::{StreamLog, StreamOp};

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let log = StreamLog::parse(&text).map_err(|e| e.to_string())?;
    let threads = threads_from(args)?;
    let engine = engine_with_threads_cap(args, threads)?;
    let q = parse_query(query_text).map_err(|e| e.to_string())?;
    check_against_signature(q.formula(), &log.signature).map_err(|e| e.to_string())?;
    let prepared = PreparedQuery::prepare(&q, &log.signature)
        .map_err(|e| e.to_string())?
        .with_engine(engine);
    let mut live = LiveCount::new(prepared, log.open())
        .map_err(|e| e.to_string())?
        .with_threads(threads);
    for op in &log.ops {
        if let Some(count) = live.apply(op) {
            writeln!(out, "{count}").map_err(|e| format!("I/O error: {e}"))?;
        }
    }
    // A log that does not end on a checkpoint still reports its final
    // state — silent trailing inserts would be invisible otherwise.
    if !matches!(log.ops.last(), None | Some(StreamOp::Checkpoint)) {
        writeln!(out, "{}", live.current()).map_err(|e| format!("I/O error: {e}"))?;
    }
    Ok(())
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn required(args: &[String], flag: &str) -> Result<String, String> {
    flag_value(args, flag).ok_or_else(|| format!("missing required {flag} <value>"))
}

fn load_structure(args: &[String]) -> Result<Structure, String> {
    if let Some(text) = flag_value(args, "--data-inline") {
        return parse_structure(&text).map_err(|e| e.to_string());
    }
    let path = required(args, "--data")
        .map_err(|_| "provide --data <file> or --data-inline <text>".to_string())?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_structure(&text).map_err(|e| e.to_string())
}

fn threads_from(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--threads") {
        None => Ok(epq_counting::pool::available_threads()),
        Some(text) => match text.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!(
                "--threads expects a positive integer, got {text:?}"
            )),
        },
    }
}

fn engine_from(args: &[String]) -> Result<Box<dyn PpCountingEngine>, String> {
    let threads = threads_from(args)?;
    engine_with_threads_cap(args, threads)
}

/// [`engine_from`] with an explicit worker cap for the parallel
/// engines (the `--batch` path pins per-job engines to one thread).
fn engine_with_threads(
    args: &[String],
    threads: usize,
) -> Result<Box<dyn PpCountingEngine>, String> {
    // Still validate a user-provided --threads value even though the
    // engine itself is capped.
    let _ = threads_from(args)?;
    engine_with_threads_cap(args, threads)
}

fn engine_with_threads_cap(
    args: &[String],
    threads: usize,
) -> Result<Box<dyn PpCountingEngine>, String> {
    match flag_value(args, "--engine").as_deref() {
        None | Some("fpt") => Ok(Box::new(FptEngine)),
        Some("brute-force") | Some("brute") => Ok(Box::new(BruteForceEngine)),
        Some("relalg") => Ok(Box::new(RelalgEngine)),
        Some("hom-dp") => Ok(Box::new(HomDpEngine)),
        Some("fpt-par") => Ok(Box::new(ParFptEngine::new(threads))),
        Some("brute-par") => Ok(Box::new(ParBruteForceEngine::new(threads))),
        Some("relalg-par") => Ok(Box::new(ParRelalgEngine::new(threads))),
        Some(other) => Err(format!("unknown engine {other:?}")),
    }
}

/// Parses a query, inferring the signature (or validating against the
/// data structure's signature when provided).
fn prepare(query_text: &str, data: Option<&Structure>) -> Result<(Query, Signature), String> {
    let q = parse_query(query_text).map_err(|e| e.to_string())?;
    let sig = match data {
        Some(b) => {
            check_against_signature(q.formula(), b.signature()).map_err(|e| e.to_string())?;
            b.signature().clone()
        }
        None => infer_signature([q.formula()]).map_err(|e| e.to_string())?,
    };
    Ok((q, sig))
}

fn prepare_pair(t1: &str, t2: &str) -> Result<(PpFormula, PpFormula), String> {
    let q1 = parse_query(t1).map_err(|e| e.to_string())?;
    let q2 = parse_query(t2).map_err(|e| e.to_string())?;
    if !q1.is_pp() || !q2.is_pp() {
        return Err("equiv requires primitive positive queries (no |)".into());
    }
    let sig = infer_signature([q1.formula(), q2.formula()]).map_err(|e| e.to_string())?;
    let a = PpFormula::from_query(&q1, &sig).map_err(|e| e.to_string())?;
    let b = PpFormula::from_query(&q2, &sig).map_err(|e| e.to_string())?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).expect("command succeeds");
        String::from_utf8(out).unwrap()
    }

    fn run_err(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).expect_err("command fails")
    }

    const DATA: &str = "structure { universe 4 E = { (0,1), (1,2), (2,3), (3,3) } }";

    #[test]
    fn help_prints_usage() {
        assert!(run_ok(&["help"]).contains("USAGE"));
        assert!(run_ok(&[]).contains("USAGE"));
    }

    #[test]
    fn count_subcommand() {
        let out = run_ok(&[
            "count",
            "--query",
            "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))",
            "--data-inline",
            DATA,
        ]);
        assert_eq!(out.trim(), "24");
    }

    #[test]
    fn count_with_each_engine() {
        for engine in [
            "fpt",
            "brute-force",
            "relalg",
            "hom-dp",
            "fpt-par",
            "brute-par",
            "relalg-par",
        ] {
            let out = run_ok(&[
                "count",
                "--query",
                "E(x,y)",
                "--data-inline",
                DATA,
                "--engine",
                engine,
            ]);
            assert_eq!(out.trim(), "4", "engine {engine}");
        }
    }

    #[test]
    fn parallel_engines_match_fpt_at_each_thread_count() {
        let query = "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))";
        let expected = run_ok(&["count", "--query", query, "--data-inline", DATA]);
        for engine in ["fpt-par", "brute-par", "relalg-par"] {
            for threads in ["1", "2", "4"] {
                let out = run_ok(&[
                    "count",
                    "--query",
                    query,
                    "--data-inline",
                    DATA,
                    "--engine",
                    engine,
                    "--threads",
                    threads,
                ]);
                assert_eq!(out, expected, "engine {engine} at {threads} threads");
            }
        }
    }

    #[test]
    fn bad_thread_counts_are_reported() {
        for bad in ["0", "-2", "many"] {
            let err = run_err(&[
                "count",
                "--query",
                "E(x,y)",
                "--data-inline",
                DATA,
                "--engine",
                "fpt-par",
                "--threads",
                bad,
            ]);
            assert!(err.contains("--threads"), "got: {err}");
        }
    }

    #[test]
    fn classify_subcommand() {
        let out = run_ok(&["classify", "--query", "E(x,y) & E(y,z) & E(x,z)"]);
        assert!(out.contains("max core treewidth: 2"));
        assert!(out.contains("max contract treewidth: 2"));
    }

    #[test]
    fn star_subcommand_shows_cancellation() {
        let out = run_ok(&[
            "star",
            "--query",
            "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))",
        ]);
        assert!(out.contains("disjuncts: 3"));
        assert!(out.contains("phi* terms: 2"));
        assert!(out.contains("  3 x"));
        assert!(out.contains(" -2 x"));
    }

    #[test]
    fn plus_subcommand() {
        let out = run_ok(&[
            "plus",
            "--query",
            "(x, y) := E(x,y) | (exists a, b . E(a,b) & E(b,a))",
        ]);
        assert!(out.contains("1 sentences"));
        assert!(out.contains("phi+ (2 formulas):"));
    }

    #[test]
    fn equiv_subcommand() {
        let out = run_ok(&[
            "equiv",
            "--query",
            "E(x,y) & E(y,z)",
            "--query2",
            "E(a,b) & E(b,c)",
        ]);
        assert!(out.contains("counting equivalent: true"));
        let out = run_ok(&[
            "equiv",
            "--query",
            "E(x,y) & E(y,z)",
            "--query2",
            "E(a,b) & E(a,c)",
        ]);
        assert!(out.contains("counting equivalent: false"));
    }

    #[test]
    fn explain_subcommand() {
        let out = run_ok(&[
            "explain",
            "--query",
            "E(x,y) & E(y,z)",
            "--data-inline",
            DATA,
        ]);
        assert!(out.contains("scan"));
        assert!(out.contains("join"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_err(&["count", "--query", "E(x,y)"]).contains("--data"));
        assert!(run_err(&["count", "--query", "E(x,"]).contains("--data"));
        assert!(run_err(&["frobnicate"]).contains("unknown subcommand"));
        assert!(
            run_err(&["count", "--query", "E(x,", "--data-inline", DATA]).contains("parse error")
        );
        assert!(
            run_err(&["count", "--query", "F(x,y)", "--data-inline", DATA])
                .contains("not in signature")
        );
        assert!(
            run_err(&["equiv", "--query", "E(x,y) | E(y,x)", "--query2", "E(x,y)"])
                .contains("primitive positive")
        );
        assert!(run_err(&[
            "count",
            "--query",
            "E(x,y)",
            "--data-inline",
            DATA,
            "--engine",
            "warp"
        ])
        .contains("unknown engine"));
    }

    #[test]
    fn help_flag_spellings() {
        for spelling in [["--help"], ["-h"], ["help"]] {
            let out = run_ok(&spelling);
            assert!(out.contains("USAGE"), "{spelling:?} should print usage");
            assert!(out.contains("ENGINES"), "{spelling:?} should list engines");
        }
    }

    #[test]
    fn missing_query_flag_is_reported() {
        for sub in ["count", "classify", "star", "plus", "explain"] {
            assert!(
                run_err(&[sub]).contains("missing required --query"),
                "{sub} without --query should name the missing flag"
            );
        }
        assert!(run_err(&["equiv", "--query", "E(x,y)"]).contains("--query2"));
    }

    #[test]
    fn flag_without_value_is_reported() {
        // A flag in final position has no value to consume.
        assert!(run_err(&["count", "--query"]).contains("missing required --query"));
    }

    #[test]
    fn unreadable_data_file_is_reported() {
        let err = run_err(&[
            "count",
            "--query",
            "E(x,y)",
            "--data",
            "/nonexistent/epq-test.structure",
        ]);
        assert!(err.contains("cannot read"), "got: {err}");
    }

    #[test]
    fn unparsable_data_file_is_reported() {
        let dir = std::env::temp_dir().join("epq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.structure");
        std::fs::write(&path, "garbage {{{ not a structure").unwrap();
        let err = run_err(&[
            "count",
            "--query",
            "E(x,y)",
            "--data",
            path.to_str().unwrap(),
        ]);
        assert!(err.contains("parse error"), "got: {err}");
    }

    #[test]
    fn count_batch_prints_one_count_per_block() {
        let dir = std::env::temp_dir().join("epq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("batch.structures");
        std::fs::write(
            &path,
            format!("{DATA}\nstructure {{ universe 2 E = {{ (0,1) }} }}\nstructure {{ universe 3 E/2 = {{ }} }}"),
        )
        .unwrap();
        let query = "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))";
        let out = run_ok(&["count", "--query", query, "--batch", path.to_str().unwrap()]);
        assert_eq!(out.lines().collect::<Vec<_>>(), vec!["24", "0", "0"]);
        // The batch fan-out is bit-identical at every thread count and
        // engine choice.
        for threads in ["1", "2", "4"] {
            let par = run_ok(&[
                "count",
                "--query",
                query,
                "--batch",
                path.to_str().unwrap(),
                "--threads",
                threads,
                "--engine",
                "brute-force",
            ]);
            assert_eq!(par, out, "threads {threads}");
        }
    }

    #[test]
    fn count_batch_rejects_mixed_signatures_and_bad_files() {
        let dir = std::env::temp_dir().join("epq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.structures");
        std::fs::write(
            &path,
            "structure { universe 2 E = { (0,1) } } structure { universe 2 F = { (0,1) } }",
        )
        .unwrap();
        let err = run_err(&[
            "count",
            "--query",
            "E(x,y)",
            "--batch",
            path.to_str().unwrap(),
        ]);
        assert!(err.contains("share one signature"), "got: {err}");
        let err = run_err(&[
            "count",
            "--query",
            "E(x,y)",
            "--batch",
            "/nonexistent/epq-batch.structures",
        ]);
        assert!(err.contains("cannot read"), "got: {err}");
    }

    const STREAM_LOG: &str = "\
# a small ingestion session over the Example 4.3 structure
universe 4
rel E/2
insert E 0 1
checkpoint
insert E 1 2
insert E 2 3
checkpoint
insert E 3 3
";

    #[test]
    fn count_stream_prints_one_count_per_checkpoint() {
        let dir = std::env::temp_dir().join("epq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("feed.stream");
        std::fs::write(&path, STREAM_LOG).unwrap();
        // (x) := exists u . E(x,u): sources after each prefix — {0},
        // {0,1,2}, and finally {0,1,2,3} (the trailing count covers the
        // insert after the last checkpoint).
        let out = run_ok(&[
            "count",
            "--query",
            "(x) := exists u . E(x,u)",
            "--stream",
            path.to_str().unwrap(),
        ]);
        assert_eq!(out.lines().collect::<Vec<_>>(), vec!["1", "3", "4"]);
        // Same counts through every engine and thread cap: incremental
        // maintenance (relalg engines) and the DP fallback agree.
        for engine in ["relalg", "relalg-par", "fpt", "brute-force"] {
            for threads in ["1", "2"] {
                let again = run_ok(&[
                    "count",
                    "--query",
                    "(x) := exists u . E(x,u)",
                    "--stream",
                    path.to_str().unwrap(),
                    "--engine",
                    engine,
                    "--threads",
                    threads,
                ]);
                assert_eq!(again, out, "engine {engine}, threads {threads}");
            }
        }
    }

    #[test]
    fn count_stream_reports_errors() {
        let err = run_err(&[
            "count",
            "--query",
            "E(x,y)",
            "--stream",
            "/nonexistent/epq.stream",
        ]);
        assert!(err.contains("cannot read"), "got: {err}");
        let dir = std::env::temp_dir().join("epq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.stream");
        std::fs::write(&bad, "universe 2\nfrobnicate\n").unwrap();
        let err = run_err(&[
            "count",
            "--query",
            "E(x,y)",
            "--stream",
            bad.to_str().unwrap(),
        ]);
        assert!(err.contains("parse error"), "got: {err}");
        // A query over relations the log never declares is rejected.
        let log = dir.join("f.stream");
        std::fs::write(&log, "universe 2\nrel E/2\ninsert E 0 1\ncheckpoint\n").unwrap();
        let err = run_err(&[
            "count",
            "--query",
            "F(x,y)",
            "--stream",
            log.to_str().unwrap(),
        ]);
        assert!(err.contains("not in signature"), "got: {err}");
    }

    #[test]
    fn count_from_file() {
        let dir = std::env::temp_dir().join("epq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.structure");
        std::fs::write(&path, DATA).unwrap();
        let out = run_ok(&[
            "count",
            "--query",
            "E(x,x)",
            "--data",
            path.to_str().unwrap(),
        ]);
        assert_eq!(out.trim(), "1");
    }
}
