//! The `epq` command-line tool. See `epq help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match epq::cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("epq: {message}");
            ExitCode::FAILURE
        }
    }
}
