//! # epq — Counting Answers to Existential Positive Queries
//!
//! A full reproduction of **Chen & Mengel, "Counting Answers to
//! Existential Positive Queries: A Complexity Classification" (PODS
//! 2016, arXiv:1601.03240)** as a production-quality Rust workspace.
//!
//! This facade crate re-exports the workspace members:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`bigint`] | exact naturals/integers/rationals + Vandermonde solver |
//! | [`graph`] | graphs, treewidth (exact + heuristic), nice tree decompositions, cliques |
//! | [`pool`] | std-only scoped work pool shared by every parallel layer |
//! | [`structures`] | finite relational structures, homomorphisms, products, cores |
//! | [`logic`] | ep/pp formulas, Chandra–Merlin view, DNF, contract graphs, parser |
//! | [`relalg`] | select–project–join–union baseline engine |
//! | [`counting`] | brute-force / #Hom-DP / FPT counting engines, clique encodings |
//! | [`core`] | counting equivalence, φ*/φ⁺, the trichotomy classifier, oracle reductions |
//! | [`workloads`] | query families, data generators, the social-network scenario |
//!
//! ## Quickstart
//!
//! ```
//! use epq::prelude::*;
//!
//! // Parse a UCQ (Example 4.1 of the paper) and a structure, count.
//! let b = epq::structures::parse::parse_structure(
//!     "structure { universe 4  E = { (0,1), (1,2), (2,3), (3,3) } }",
//! ).unwrap();
//! let n = epq::core::count::count_ep_text(
//!     "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))", &b);
//! assert_eq!(n.to_u64(), Some(24));
//! ```

pub mod cli;

pub use epq_bigint as bigint;
pub use epq_core as core;
pub use epq_counting as counting;
pub use epq_graph as graph;
pub use epq_logic as logic;
pub use epq_pool as pool;
pub use epq_relalg as relalg;
pub use epq_structures as structures;
pub use epq_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use epq_bigint::{Integer, Natural, Rational};
    pub use epq_core::classify::{classify_query, classify_widths, Regime};
    pub use epq_core::count::{count_ep, count_ep_text};
    pub use epq_core::equivalence::{counting_equivalent, semi_counting_equivalent};
    pub use epq_core::iex::star;
    pub use epq_core::incremental::{LiveCount, LiveCountStats};
    pub use epq_core::plus::plus_decomposition;
    pub use epq_core::prepared::{classify_query_cached, count_ep_batch, PreparedQuery};
    pub use epq_counting::engines::{
        BruteForceEngine, FptEngine, HomDpEngine, ParBruteForceEngine, ParFptEngine,
        ParRelalgEngine, PpCountingEngine, RelalgEngine,
    };
    pub use epq_logic::parser::parse_query;
    pub use epq_logic::query::infer_signature;
    pub use epq_logic::{Formula, PpFormula, Query, Var};
    pub use epq_structures::{LiveStructure, Signature, StreamLog, StreamOp, Structure};
}
