//! Property-based cross-checking: every counting path through the
//! workspace must agree on random queries and random structures.
//!
//! The paths compared:
//! * brute-force ep evaluation (syntax-directed, the ground truth);
//! * the φ*/φ⁺ pipeline with the FPT engine (`epq-core`);
//! * the φ*/φ⁺ pipeline with the brute-force pp engine;
//! * the φ*/φ⁺ pipeline with the work-sharded parallel engines
//!   (`fpt-par` / `brute-par`, at 2 and 4 threads);
//! * relational-algebra UCQ materialization (`epq-relalg`);
//! * disjunct-level brute union counting.
//!
//! (Engine-level randomized agreement, including thread-count
//! invariance, lives in `crates/counting/tests/proptests.rs`.)

use epq::prelude::*;
use epq_counting::brute;
use epq_logic::dnf;
use epq_workloads::{data, queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_all_paths(query: &Query, b: &Structure) {
    let sig = b.signature().clone();
    let expected = brute::count_ep_brute(query, b);

    let via_fpt = epq::core::count::count_ep(query, &sig, b, &FptEngine).unwrap();
    assert_eq!(
        via_fpt, expected,
        "φ* pipeline + FPT engine\nquery: {query}\nB: {b}"
    );

    let via_bf = epq::core::count::count_ep(query, &sig, b, &BruteForceEngine).unwrap();
    assert_eq!(
        via_bf, expected,
        "φ* pipeline + brute engine\nquery: {query}"
    );

    for threads in [2usize, 4] {
        let via_fpt_par =
            epq::core::count::count_ep(query, &sig, b, &ParFptEngine::new(threads)).unwrap();
        assert_eq!(
            via_fpt_par, expected,
            "φ* pipeline + fpt-par engine at {threads} threads\nquery: {query}\nB: {b}"
        );
        let via_brute_par =
            epq::core::count::count_ep(query, &sig, b, &ParBruteForceEngine::new(threads)).unwrap();
        assert_eq!(
            via_brute_par, expected,
            "φ* pipeline + brute-par engine at {threads} threads\nquery: {query}\nB: {b}"
        );
    }

    let ds = dnf::disjuncts(query, &sig).unwrap();
    let via_relalg = epq::relalg::count_ucq(&ds, b);
    assert_eq!(via_relalg, expected, "relalg union\nquery: {query}\nB: {b}");
    for threads in [2usize, 4] {
        let via_relalg_par = epq::relalg::count_ucq_par(&ds, b, threads);
        assert_eq!(
            via_relalg_par, expected,
            "pool-parallel relalg union at {threads} threads\nquery: {query}\nB: {b}"
        );
    }

    let via_disjuncts = brute::count_disjuncts_brute(&ds, b);
    assert_eq!(via_disjuncts, expected, "disjunct union\nquery: {query}");

    // The prepared-query paths: single count and the pool batch.
    let prepared = PreparedQuery::prepare(query, &sig).unwrap();
    assert_eq!(
        prepared.count(b),
        expected,
        "prepared query\nquery: {query}\nB: {b}"
    );
    let batch = [b.clone(), b.clone(), b.clone()];
    for threads in [1usize, 3] {
        let counts = prepared.count_batch(&batch, threads);
        assert!(
            counts.iter().all(|c| c == &expected),
            "prepared batch at {threads} threads\nquery: {query}\nB: {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_paths_agree_on_random_cqs(
        qseed in 0u64..5000,
        sseed in 0u64..5000,
        vars in 2usize..5,
        atoms in 1usize..5,
        n in 1usize..5,
    ) {
        let query = queries::random_cq(&mut StdRng::seed_from_u64(qseed), vars, atoms, 0.4);
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), n, 0.35);
        check_all_paths(&query, &b);
    }

    #[test]
    fn all_paths_agree_on_random_ucqs(
        qseed in 0u64..5000,
        sseed in 0u64..5000,
        disjuncts in 2usize..4,
        vars in 2usize..4,
        atoms in 1usize..4,
        n in 1usize..4,
    ) {
        let query = queries::random_ucq(
            &mut StdRng::seed_from_u64(qseed), disjuncts, vars, atoms, 0.35);
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), n, 0.4);
        check_all_paths(&query, &b);
    }

    #[test]
    fn product_law_holds_for_random_pp(
        qseed in 0u64..5000,
        s1 in 0u64..5000,
        s2 in 0u64..5000,
    ) {
        // |ψ(D1 × D2)| = |ψ(D1)|·|ψ(D2)| (the key fact behind Example 4.3).
        let query = queries::random_cq(&mut StdRng::seed_from_u64(qseed), 3, 3, 0.4);
        let sig = infer_signature([query.formula()]).unwrap();
        let pp = PpFormula::from_query(&query, &sig).unwrap();
        let d1 = data::random_digraph(&mut StdRng::seed_from_u64(s1), 3, 0.4);
        let d2 = data::random_digraph(&mut StdRng::seed_from_u64(s2), 2, 0.5);
        let product = epq::structures::ops::direct_product(&d1, &d2);
        let lhs = brute::count_pp_brute(&pp, &product);
        let rhs = brute::count_pp_brute(&pp, &d1) * brute::count_pp_brute(&pp, &d2);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn component_law_holds_for_random_pp(
        qseed in 0u64..5000,
        sseed in 0u64..5000,
    ) {
        // |φ(B)| = Π over components (Section 2.1).
        let query = queries::random_cq(&mut StdRng::seed_from_u64(qseed), 4, 3, 0.3);
        let sig = infer_signature([query.formula()]).unwrap();
        let pp = PpFormula::from_query(&query, &sig).unwrap();
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), 3, 0.4);
        let whole = brute::count_pp_brute(&pp, &b);
        let product = pp
            .components()
            .iter()
            .map(|c| brute::count_pp_brute(c, &b))
            .fold(Natural::one(), |acc, x| acc * x);
        prop_assert_eq!(whole, product);
    }

    #[test]
    fn counting_equivalence_decision_is_sound(
        qa in 0u64..3000,
        qb in 0u64..3000,
        battery_seed in 0u64..1000,
    ) {
        // Theorem 5.4 soundness: if the decision procedure says
        // "equivalent", counts agree on random structures; if it says
        // "not equivalent", we at least never find the procedure claiming
        // equality where a battery structure separates the counts.
        let a = queries::random_cq(&mut StdRng::seed_from_u64(qa), 3, 2, 0.3);
        let b = queries::random_cq(&mut StdRng::seed_from_u64(qb), 3, 2, 0.3);
        let sig = data::digraph_signature();
        let pa = PpFormula::from_query(&a, &sig).unwrap();
        let pb = PpFormula::from_query(&b, &sig).unwrap();
        let decided = counting_equivalent(&pa, &pb);
        let mut rng = StdRng::seed_from_u64(battery_seed);
        for i in 0..4 {
            let s = data::random_digraph(&mut rng, 1 + (i % 3), 0.4);
            let ca = brute::count_pp_brute(&pa, &s);
            let cb = brute::count_pp_brute(&pb, &s);
            if decided {
                prop_assert_eq!(ca, cb, "procedure claimed equivalence");
            }
        }
    }

    #[test]
    fn star_identity_on_random_ucqs(
        qseed in 0u64..3000,
        sseed in 0u64..3000,
    ) {
        // Proposition 5.16: |φ(B)| = Σ cᵢ|φᵢ*(B)| for all-free UCQs.
        let query = queries::random_ucq(
            &mut StdRng::seed_from_u64(qseed), 2, 3, 2, 0.0);
        let sig = data::digraph_signature();
        let ds = dnf::disjuncts(&query, &sig).unwrap();
        prop_assume!(ds.iter().all(|d| d.is_free()));
        let star_terms = star(&ds);
        let b = data::random_digraph(&mut StdRng::seed_from_u64(sseed), 3, 0.4);
        let via_star = epq_core::iex::evaluate_signed_sum(&star_terms, &b, &FptEngine);
        let direct = brute::count_disjuncts_brute(&ds, &b);
        prop_assert_eq!(via_star, direct);
    }
}
