//! End-to-end integration test walking the paper's running examples in
//! order: every concrete claim the paper states about its examples is
//! asserted against the implementation.

use epq::prelude::*;
use epq_core::oracle;
use epq_logic::dnf;
use epq_structures::ops;

fn structure(text: &str) -> Structure {
    epq::structures::parse::parse_structure(text).unwrap()
}

/// The paper's Example 4.3 structure C (1-based in the paper, 0-based
/// here): E = {(1,2),(2,3),(3,4),(4,4)}.
fn example_c() -> Structure {
    structure("structure { universe 4  E = { (0,1), (1,2), (2,3), (3,3) } }")
}

fn disjuncts_of(text: &str) -> (Query, Vec<PpFormula>) {
    let q = parse_query(text).unwrap();
    let sig = infer_signature([q.formula()]).unwrap();
    let ds = dnf::disjuncts(&q, &sig).unwrap();
    (q, ds)
}

/// Example 2.1: liberal variables change the counted answer sets.
#[test]
fn example_2_1_liberal_variables_matter() {
    let sig = Signature::from_symbols([("E", 2), ("S", 2)]);
    let mut b = Structure::new(sig.clone(), 3);
    b.add_tuple_named("E", &[0, 1]);
    b.add_tuple_named("S", &[1, 2]);

    // φ(x,y,z) = E(x,y) ∨ S(y,z); ψ(x,y,z) = E(x,y); ψ′(x,y,z) = S(y,z).
    let phi = parse_query("(x,y,z) := E(x,y) | S(y,z)").unwrap();
    let psi = parse_query("(x,y,z) := E(x,y)").unwrap();
    let psi_p = parse_query("(x,y,z) := S(y,z)").unwrap();
    let theta = parse_query("(x,y) := E(x,y)").unwrap();

    let count = |q: &Query| {
        epq::core::count::count_ep(q, &sig, &b, &FptEngine)
            .unwrap()
            .to_u64()
            .unwrap()
    };
    // |φ(B)| = |ψ(B) ∪ ψ′(B)| — over lib = {x,y,z}: 3 + 3 − overlap 1 = 5.
    assert_eq!(count(&phi), 5);
    assert_eq!(count(&psi), 3);
    assert_eq!(count(&psi_p), 3);
    // θ(x,y) counts over a *smaller* liberal set: |θ(B)| = 1 ≠ |ψ(B)| = 3.
    assert_eq!(count(&theta), 1);
}

/// Example 2.2 / 2.4: the structure view and the four components.
#[test]
fn example_2_2_and_2_4_structure_view_and_components() {
    let q =
        parse_query("(x, x', y, z) := exists y', u, v, w . E(x,x') & E(y,y') & F(u,v) & G(u,w)")
            .unwrap();
    let sig = infer_signature([q.formula()]).unwrap();
    let pp = PpFormula::from_query(&q, &sig).unwrap();
    assert_eq!(pp.structure().universe_size(), 8);
    assert_eq!(pp.liberal_count(), 4);
    let comps = pp.components();
    assert_eq!(comps.len(), 4);
    // Written logically: ψ1(x,x'), ψ2(y), ψ3(z) = ⊤, ψ4(∅) (the paper's
    // list). Check the liberal/sentence profile.
    let mut profiles: Vec<(usize, bool)> = comps
        .iter()
        .map(|c| (c.liberal_count(), c.is_sentence()))
        .collect();
    profiles.sort_unstable();
    assert_eq!(profiles, vec![(0, true), (1, false), (1, true), (2, false)]);
    // Component product law: |φ(B)| = Π |φᵢ(B)| on a test structure.
    let mut b = Structure::new(sig.clone(), 3);
    b.add_tuple_named("E", &[0, 1]);
    b.add_tuple_named("E", &[1, 1]);
    b.add_tuple_named("F", &[2, 0]);
    b.add_tuple_named("G", &[2, 2]);
    let whole = epq_counting::brute::count_pp_brute(&pp, &b);
    let product = comps
        .iter()
        .map(|c| epq_counting::brute::count_pp_brute(c, &b))
        .fold(Natural::one(), |acc, x| acc * x);
    assert_eq!(whole, product);
}

/// Theorem 2.3 (Chandra–Merlin): entailment = augmented homomorphism.
#[test]
fn theorem_2_3_entailment() {
    let sig = Signature::from_symbols([("E", 2)]);
    let stronger =
        PpFormula::from_query(&parse_query("(x,y) := E(x,y) & E(y,x)").unwrap(), &sig).unwrap();
    let weaker = PpFormula::from_query(&parse_query("(x,y) := E(x,y)").unwrap(), &sig).unwrap();
    assert!(stronger.entails(&weaker));
    assert!(!weaker.entails(&stronger));
    // Logical equivalence via cores: φ(x) = ∃u,v E(x,u) ∧ E(x,v) ≡ ∃u E(x,u).
    let redundant = PpFormula::from_query(
        &parse_query("(x) := exists u, v . E(x,u) & E(x,v)").unwrap(),
        &sig,
    )
    .unwrap();
    let minimal =
        PpFormula::from_query(&parse_query("(x) := exists u . E(x,u)").unwrap(), &sig).unwrap();
    assert!(redundant.logically_equivalent(&minimal));
    assert!(epq::structures::iso::isomorphic(
        redundant.core().structure(),
        minimal.core().structure()
    ));
}

/// Example 4.1: the inclusion–exclusion identity, with the liberal-set
/// pitfall (counts w.r.t. {w,x,y,z} everywhere).
#[test]
fn example_4_1_inclusion_exclusion_identity() {
    let (query, ds) = disjuncts_of("(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))");
    assert_eq!(ds.len(), 2);
    let b = example_c();
    let brute = epq_counting::brute::count_ep_brute(&query, &b);
    let c1 = epq_counting::brute::count_pp_brute(&ds[0], &b);
    let c2 = epq_counting::brute::count_pp_brute(&ds[1], &b);
    let c12 = epq_counting::brute::count_pp_brute(&PpFormula::conjoin(&[&ds[0], &ds[1]]), &b);
    // |φ(B)| = |φ1(B)| + |φ2(B)| − |(φ1∧φ2)(B)|.
    assert_eq!((c1 + c2).checked_sub(&c12).unwrap(), brute);
}

/// Examples 4.2 / 5.15: φ* cancellation with coefficients 3 and −2, and
/// the treewidth drop from 2 to 1.
#[test]
fn example_4_2_and_5_15_cancellation() {
    let (query, ds) =
        disjuncts_of("(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))");
    let star_terms = star(&ds);
    assert_eq!(star_terms.len(), 2);
    let mut coefficients: Vec<i64> = star_terms
        .iter()
        .map(|t| t.coefficient.to_i64().unwrap())
        .collect();
    coefficients.sort_unstable();
    assert_eq!(coefficients, vec![-2, 3]);
    // Identity on the example structure.
    let b = example_c();
    let via_star = epq_core::iex::evaluate_signed_sum(&star_terms, &b, &FptEngine);
    assert_eq!(via_star, epq_counting::brute::count_ep_brute(&query, &b));
}

/// Example 4.3: the Vandermonde oracle recovery with the paper's C.
#[test]
fn example_4_3_oracle_recovery() {
    let (query, ds) = disjuncts_of("(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))");
    let star_terms = star(&ds);
    let sig = Signature::from_symbols([("E", 2)]);
    // Target structure: a different digraph than C.
    let mut b = Structure::new(sig.clone(), 3);
    for (u, v) in [(0, 1), (1, 2), (2, 0), (1, 1)] {
        b.add_tuple_named("E", &[u, v]);
    }
    let mut oracle_fn =
        |d: &Structure| epq::core::count::count_ep(&query, &sig, d, &FptEngine).unwrap();
    let recovered = oracle::recover_all_free_counts(&star_terms, &b, &mut oracle_fn);
    for (i, count) in &recovered.counts {
        assert_eq!(
            *count,
            epq_counting::brute::count_pp_brute(&star_terms[*i].formula, &b),
            "star term {i}"
        );
    }
}

/// Example 5.2 / Theorem 5.4: counting equivalence is renaming
/// equivalence.
#[test]
fn example_5_2_counting_equivalence() {
    let sig = Signature::from_symbols([("E", 2)]);
    let phi1 = PpFormula::from_query(&parse_query("E(x,y)").unwrap(), &sig).unwrap();
    let phi2 = PpFormula::from_query(&parse_query("E(w,z)").unwrap(), &sig).unwrap();
    assert!(counting_equivalent(&phi1, &phi2));
    // But they are NOT logically equivalent (different variables).
    assert_ne!(phi1.liberal_names(), phi2.liberal_names());
}

/// Example 5.7 / Theorem 5.9: semi-counting equivalence via φ̂.
#[test]
fn example_5_7_semi_counting_equivalence() {
    let sig = Signature::from_symbols([("E", 2), ("F", 1)]);
    let phi1 = PpFormula::from_query(&parse_query("E(x,y)").unwrap(), &sig).unwrap();
    let phi2 = PpFormula::from_query(
        &parse_query("(x,y) := exists z . E(x,y) & F(z)").unwrap(),
        &sig,
    )
    .unwrap();
    assert!(semi_counting_equivalent(&phi1, &phi2));
    assert!(!counting_equivalent(&phi1, &phi2));
}

/// Theorem 5.9's padding device: B + kI makes every pp-formula
/// satisfiable, and |φ(B + kI)| is a polynomial in k.
#[test]
fn theorem_5_9_padding() {
    let sig = Signature::from_symbols([("E", 2)]);
    let b = Structure::new(sig.clone(), 2); // edgeless
    let pp = PpFormula::from_query(&parse_query("E(x,y) & E(y,z)").unwrap(), &sig).unwrap();
    assert!(epq_counting::brute::count_pp_brute(&pp, &b).is_zero());
    for k in 1..4 {
        let padded = ops::add_units(&b, k);
        let count = epq_counting::brute::count_pp_brute(&pp, &padded);
        // Each added unit point satisfies everything: with k units the
        // liberal 3-tuple must map the connected component into a single
        // unit → k answers... plus combinations? The formula is connected:
        // answers = k (one per unit point, constant assignment).
        assert_eq!(count.to_u64(), Some(k as u64), "k = {k}");
    }
}

/// Example 5.21: the θ⁺ construction.
#[test]
fn example_5_21_theta_plus() {
    let q = parse_query(
        "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y)) \
         | (exists a, b, c, d . E(a,b) & E(b,c) & E(c,d))",
    )
    .unwrap();
    let sig = Signature::from_symbols([("E", 2)]);
    let dec = plus_decomposition(&q, &sig).unwrap();
    // θ⁺ = {φ1, θ1}: one free 2-path and the sentence disjunct.
    assert_eq!(dec.plus.len(), 2);
    assert_eq!(dec.minus_af().len(), 1);
    assert_eq!(dec.sentences.len(), 1);
    // And counting through the decomposition matches brute force.
    let b = example_c();
    let via_dec = epq::core::count::count_ep_with(&dec, q.liberal_count(), &b, &FptEngine);
    assert_eq!(via_dec, epq_counting::brute::count_ep_brute(&q, &b));
}

/// Theorem 3.2 regimes on the canonical families (finite-prefix check of
/// the width profiles).
#[test]
fn theorem_3_2_width_profiles() {
    use epq_workloads::queries;
    // FPT family: quantified paths — widths stay at 1/1.
    for k in 2..5 {
        let q = queries::quantified_path_query(k);
        let sig = infer_signature([q.formula()]).unwrap();
        let a = classify_query(&q, &sig).unwrap();
        assert!(a.max_core_treewidth <= 1, "k={k}");
        assert!(a.max_contract_treewidth <= 1, "k={k}");
    }
    // Case-2 family: pendant cliques — core grows, contract stays 0.
    for k in 2..5 {
        let q = queries::pendant_clique_query(k);
        let sig = infer_signature([q.formula()]).unwrap();
        let a = classify_query(&q, &sig).unwrap();
        assert_eq!(a.max_core_treewidth, k - 1, "k={k}");
        assert_eq!(a.max_contract_treewidth, 0, "k={k}");
    }
    // Case-3 family: free cliques — both grow.
    for k in 2..5 {
        let q = queries::clique_query(k);
        let sig = infer_signature([q.formula()]).unwrap();
        let a = classify_query(&q, &sig).unwrap();
        assert_eq!(a.max_core_treewidth, k - 1, "k={k}");
        assert_eq!(a.max_contract_treewidth, k - 1, "k={k}");
    }
    // The regime reading.
    assert_eq!(classify_widths(1, 1, 1), Regime::Fpt);
    assert_eq!(classify_widths(3, 0, 1), Regime::CliqueEquivalent);
    assert_eq!(classify_widths(3, 3, 1), Regime::SharpCliqueHard);
}
