//! Integration tests for the trichotomy classifier over the benchmark
//! query catalog (experiment T1's table rows).

use epq::prelude::*;
use epq_core::classify::{analyze_pp, FamilyReport};
use epq_workloads::queries;

fn family<I>(name: &str, members: I) -> FamilyReport
where
    I: IntoIterator<Item = (usize, Query)>,
{
    FamilyReport::build(
        name,
        members.into_iter().map(|(k, q)| {
            let sig = infer_signature([q.formula()]).unwrap();
            (k, q, sig)
        }),
    )
    .unwrap()
}

#[test]
fn trichotomy_table_families() {
    // FPT regime: flat width profiles.
    let paths = family("paths", (1..=5).map(|k| (k, queries::path_query(k))));
    assert_eq!(paths.inferred_regime(), Regime::Fpt);
    let stars = family("stars", (1..=5).map(|k| (k, queries::star_query(k))));
    assert_eq!(stars.inferred_regime(), Regime::Fpt);
    let qpaths = family(
        "quantified-paths",
        (2..=5).map(|k| (k, queries::quantified_path_query(k))),
    );
    assert_eq!(qpaths.inferred_regime(), Regime::Fpt);
    let cycles = family("cycles", (3..=6).map(|k| (k, queries::cycle_query(k))));
    assert_eq!(cycles.inferred_regime(), Regime::Fpt);

    // Case 2: pendant cliques (core grows, contract flat).
    let pendant = family(
        "pendant-cliques",
        (2..=4).map(|k| (k, queries::pendant_clique_query(k))),
    );
    assert_eq!(pendant.inferred_regime(), Regime::CliqueEquivalent);

    // Case 3: free cliques and growing grids.
    let cliques = family("cliques", (2..=4).map(|k| (k, queries::clique_query(k))));
    assert_eq!(cliques.inferred_regime(), Regime::SharpCliqueHard);
    let grids = family("grids", (1..=3).map(|k| (k, queries::grid_query(k, k))));
    assert_eq!(grids.inferred_regime(), Regime::SharpCliqueHard);
}

#[test]
fn grid_widths_match_theory() {
    // The k×k grid query has core treewidth k (its Gaifman graph is the
    // grid, which is a core once augmented) and contract treewidth k.
    for k in 2..=3usize {
        let q = queries::grid_query(k, k);
        let sig = infer_signature([q.formula()]).unwrap();
        let a = classify_query(&q, &sig).unwrap();
        assert_eq!(a.max_core_treewidth, k, "grid {k}x{k}");
    }
}

#[test]
fn classification_goes_through_plus_for_ucqs() {
    // K3(x,y,z) ∨ E(x,y): the triangle disjunct *entails* the edge
    // disjunct (its answers are a subset), so inclusion–exclusion cancels
    // it out of φ* — K3∧E glues to K3 itself and the +1/−1 coefficients
    // annihilate. The classifier therefore sees only treewidth 1: the
    // cancellation step genuinely lowers the classification, exactly the
    // phenomenon Example 4.2 illustrates.
    let text = "(x,y,z) := (E(x,y) & E(y,z) & E(x,z)) | E(x,y)";
    let q = parse_query(text).unwrap();
    let sig = infer_signature([q.formula()]).unwrap();
    let a = classify_query(&q, &sig).unwrap();
    assert_eq!(a.plus_analyses.len(), 1);
    assert_eq!(a.max_core_treewidth, 1);
    // Sanity: a *standalone* triangle query does have treewidth 2.
    let triangle = parse_query("E(x,y) & E(y,z) & E(x,z)").unwrap();
    let a2 = classify_query(&triangle, &sig).unwrap();
    assert_eq!(a2.max_core_treewidth, 2);
}

#[test]
fn analyses_report_exact_bounds_for_small_queries() {
    let q = queries::clique_query(4);
    let sig = infer_signature([q.formula()]).unwrap();
    let pp = PpFormula::from_query(&q, &sig).unwrap();
    let analysis = analyze_pp(&pp);
    assert!(analysis.core_treewidth.is_exact());
    assert!(analysis.contract_treewidth.is_exact());
    assert_eq!(analysis.core_treewidth.upper(), 3);
}

#[test]
fn sentence_only_queries_classify_by_their_core() {
    // θ = ∃x1..x3 clique: φ⁺ = {θ}; the core is the triangle → core tw 2,
    // contract tw 0 (no liberal variables) — case-2 profile.
    let q = parse_query("exists a, b, c . E(a,b) & E(b,c) & E(a,c)").unwrap();
    let sig = infer_signature([q.formula()]).unwrap();
    let a = classify_query(&q, &sig).unwrap();
    assert_eq!(a.max_core_treewidth, 2);
    assert_eq!(a.max_contract_treewidth, 0);
}

#[test]
fn redundancy_is_removed_before_measuring() {
    // A path query padded with duplicated atoms is still width 1.
    let text = "E(x,y) & E(y,z) & E(x,y) & E(y,z)";
    let q = parse_query(text).unwrap();
    let sig = infer_signature([q.formula()]).unwrap();
    let a = classify_query(&q, &sig).unwrap();
    assert_eq!(a.max_core_treewidth, 1);
    assert_eq!(a.max_contract_treewidth, 1);
}
