//! Smoke tests running the repository examples end to end.
//!
//! `cargo test` builds every example before running integration tests,
//! so the compiled binaries are guaranteed to sit in
//! `target/<profile>/examples/` next to this test's own executable.
//! Each test runs one example and checks both its exit status and a
//! load-bearing line of its output, so a regression in any layer the
//! example exercises (parser, engines, classifier, oracle reductions)
//! fails the suite instead of silently rotting the documentation.

use std::path::PathBuf;
use std::process::Command;

/// Path to a compiled example binary, resolved relative to the test
/// executable (`target/<profile>/deps/<test>` → `target/<profile>/examples/`).
fn example_binary(name: &str) -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // <test file name>
    if dir.ends_with("deps") {
        dir.pop();
    }
    let path = dir.join("examples").join(name);
    assert!(
        path.exists(),
        "example binary {path:?} not found; examples should be built by `cargo test`"
    );
    path
}

/// Runs one example and returns its stdout, panicking on failure.
fn run_example(name: &str) -> String {
    let output = Command::new(example_binary(name))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("example output is UTF-8")
}

#[test]
fn quickstart_counts_24() {
    let out = run_example("quickstart");
    assert!(
        out.contains("24"),
        "quickstart should reproduce the |phi(B)| = 24 count:\n{out}"
    );
}

#[test]
fn paper_walkthrough_runs() {
    let out = run_example("paper_walkthrough");
    assert!(
        !out.trim().is_empty(),
        "paper_walkthrough should narrate the paper's running examples"
    );
}

#[test]
fn trichotomy_tour_names_all_three_regimes() {
    let out = run_example("trichotomy_tour");
    for needle in ["FPT", "hard"] {
        assert!(
            out.contains(needle),
            "trichotomy_tour output should mention {needle:?}:\n{out}"
        );
    }
}

#[test]
fn oracle_reduction_runs() {
    let out = run_example("oracle_reduction");
    assert!(
        !out.trim().is_empty(),
        "oracle_reduction should print its trace"
    );
}

#[test]
fn social_network_runs() {
    let out = run_example("social_network");
    assert!(
        !out.trim().is_empty(),
        "social_network should print its report"
    );
}

#[test]
fn streaming_feed_checkpoints_agree_with_recounts() {
    let out = run_example("streaming_feed");
    assert!(
        out.contains("All checkpoints agree"),
        "streaming_feed should verify every checkpoint against a recount:\n{out}"
    );
    assert!(
        !out.contains("MISMATCH"),
        "streaming_feed reported a disagreement:\n{out}"
    );
}
