//! Integration tests for the equivalence-theorem reductions: recovering
//! pp counts from an ep oracle on randomized inputs (Theorem 5.20 /
//! Appendix A, end to end).

use epq::prelude::*;
use epq_core::oracle;
use epq_counting::brute;
use epq_logic::dnf;
use epq_workloads::{data, queries};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Round-trips the all-free recovery for a UCQ given as text.
fn roundtrip_all_free(text: &str, b: &Structure) {
    let query = parse_query(text).unwrap();
    let sig = b.signature().clone();
    let ds = dnf::disjuncts(&query, &sig).unwrap();
    assert!(
        ds.iter().all(|d| d.is_free()),
        "test requires an all-free query"
    );
    let star_terms = star(&ds);
    let mut oracle_fn =
        |d: &Structure| epq::core::count::count_ep(&query, &sig, d, &FptEngine).unwrap();
    let recovered = oracle::recover_all_free_counts(&star_terms, b, &mut oracle_fn);
    assert_eq!(recovered.counts.len(), star_terms.len());
    for (i, count) in &recovered.counts {
        let direct = brute::count_pp_brute(&star_terms[*i].formula, b);
        assert_eq!(*count, direct, "term {i} of {text}");
    }
}

#[test]
fn all_free_roundtrips_on_curated_queries() {
    let b = data::example_4_3_structure();
    for text in [
        "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))",
        "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))",
        "(x, y) := E(x,y) | (E(x,y) & E(y,y))",
        "(x, y) := E(x,y) | E(y,x)",
    ] {
        roundtrip_all_free(text, &b);
    }
}

#[test]
fn all_free_roundtrips_on_random_ucqs() {
    // Keep sizes small: the recovery queries products B × C^ℓ whose
    // brute-force verification is exponential in the liberal set.
    for seed in 0..6u64 {
        let query = queries::random_ucq(&mut StdRng::seed_from_u64(seed), 2, 3, 2, 0.0);
        let sig = data::digraph_signature();
        let ds = dnf::disjuncts(&query, &sig).unwrap();
        if !ds.iter().all(|d| d.is_free()) {
            continue;
        }
        let b = data::random_digraph(&mut StdRng::seed_from_u64(seed + 100), 2, 0.5);
        roundtrip_all_free(&query.to_string(), &b);
    }
}

#[test]
fn general_roundtrip_with_sentences_on_random_structures() {
    let text = "(x, y) := E(x,y) | F(x,y) | (exists a, b . E(a,b) & F(a,b))";
    let query = parse_query(text).unwrap();
    let sig = Signature::from_symbols([("E", 2), ("F", 2)]);
    let dec = plus_decomposition(&query, &sig).unwrap();
    assert_eq!(dec.sentences.len(), 1);
    assert_eq!(dec.minus_af().len(), 2);

    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = epq_workloads::data::random_structure(&mut rng, &sig, 3, 0.3, 100);
        let mut oracle_fn = |d: &Structure| {
            epq::core::count::count_ep_with(&dec, query.liberal_count(), d, &FptEngine)
        };
        let recovered =
            oracle::recover_plus_counts(&dec, query.liberal_count(), &b, &mut oracle_fn);
        assert_eq!(recovered.len(), dec.plus.len());
        for (formula, count) in &recovered {
            let direct = brute::count_pp_brute(formula, &b);
            assert_eq!(*count, direct, "formula {formula} on seed {seed}");
        }
    }
}

#[test]
fn oracle_query_budget_is_reported() {
    let b = data::example_4_3_structure();
    let query = parse_query("(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))").unwrap();
    let sig = b.signature().clone();
    let ds = dnf::disjuncts(&query, &sig).unwrap();
    let star_terms = star(&ds);
    let mut calls = 0usize;
    let mut oracle_fn = |d: &Structure| {
        calls += 1;
        epq::core::count::count_ep(&query, &sig, d, &FptEngine).unwrap()
    };
    let recovered = oracle::recover_all_free_counts(&star_terms, &b, &mut oracle_fn);
    assert_eq!(recovered.oracle_queries, calls);
    // s classes → s queries for the Vandermonde stage, plus splitting.
    assert!(calls >= star_terms.len());
}

#[test]
fn distinguishing_structure_search_properties() {
    // The found structure satisfies the Lemma 5.12 properties by
    // construction; verify on a fresh instance.
    let sig = data::digraph_signature();
    let p1 = PpFormula::from_query(&parse_query("E(x,y)").unwrap(), &sig).unwrap();
    let p2 = PpFormula::from_query(&parse_query("E(x,y) & E(y,y)").unwrap(), &sig).unwrap();
    let p3 = PpFormula::from_query(&parse_query("E(x,y) & E(y,x)").unwrap(), &sig).unwrap();
    let c = oracle::find_distinguishing_structure(&[&p1, &p2, &p3]);
    assert!(oracle::is_distinguishing(&c, &[&p1, &p2, &p3]));
    // Positivity must hold for unrelated formulas too (diagonal element).
    let other =
        PpFormula::from_query(&parse_query("E(a,b) & E(b,c) & E(c,a)").unwrap(), &sig).unwrap();
    assert!(!brute::count_pp_brute(&other, &c).is_zero());
}
