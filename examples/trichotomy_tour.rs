//! The trichotomy table (experiment T1): classify the catalog of query
//! families and print each family's width profile and inferred regime.
//!
//! ```sh
//! cargo run --release --example trichotomy_tour
//! ```

use epq::prelude::*;
use epq_core::classify::FamilyReport;
use epq_workloads::queries;

fn report<I>(name: &str, members: I) -> FamilyReport
where
    I: IntoIterator<Item = (usize, Query)>,
{
    FamilyReport::build(
        name,
        members.into_iter().map(|(k, q)| {
            let sig = infer_signature([q.formula()]).unwrap();
            (k, q, sig)
        }),
    )
    .expect("family classifies")
}

fn main() {
    println!("Theorem 3.2 — the trichotomy, measured on query families.\n");
    let families = vec![
        (
            "paths P_k",
            report("paths", (1..=6).map(|k| (k, queries::path_query(k)))),
        ),
        (
            "stars S_k",
            report("stars", (1..=6).map(|k| (k, queries::star_query(k)))),
        ),
        (
            "cycles C_k",
            report("cycles", (3..=6).map(|k| (k, queries::cycle_query(k)))),
        ),
        (
            "∃-paths Q_k(x,y)",
            report(
                "qpaths",
                (2..=6).map(|k| (k, queries::quantified_path_query(k))),
            ),
        ),
        (
            "pendant ∃-cliques W_k(x)",
            report(
                "pendant",
                (2..=5).map(|k| (k, queries::pendant_clique_query(k))),
            ),
        ),
        (
            "free cliques K_k",
            report("cliques", (2..=5).map(|k| (k, queries::clique_query(k)))),
        ),
        (
            "free grids G_{k×k}",
            report("grids", (1..=3).map(|k| (k, queries::grid_query(k, k)))),
        ),
    ];

    println!(
        "{:<26} {:<28} {:<28} regime (Thm 3.2)",
        "family", "core treewidth by k", "contract treewidth by k"
    );
    println!("{}", "-".repeat(108));
    for (label, fam) in &families {
        let cores: Vec<String> = fam.measures.iter().map(|(_, c, _)| c.to_string()).collect();
        let contracts: Vec<String> = fam.measures.iter().map(|(_, _, c)| c.to_string()).collect();
        println!(
            "{:<26} {:<28} {:<28} {}",
            label,
            cores.join(", "),
            contracts.join(", "),
            fam.inferred_regime()
        );
    }

    println!(
        "\nReading: bounded core+contract treewidth → FPT (case 1); bounded contract\n\
         treewidth only → Clique-equivalent (case 2); otherwise #Clique-hard (case 3)."
    );

    // Show what the classifier does with a single mixed UCQ.
    println!("\n--- single-query classification through φ⁺ ---");
    for text in [
        "(x,y) := E(x,y) | (exists u . E(x,u) & E(u,y))",
        "(x,y,z) := (E(x,y) & E(y,z) & E(x,z)) | E(x,y)",
        "E(x,y) & E(y,z) & E(x,z)",
    ] {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        let a = classify_query(&q, &sig).unwrap();
        println!(
            "  {:<48} |φ⁺| = {}, core tw {}, contract tw {}",
            text,
            a.plus_analyses.len(),
            a.max_core_treewidth,
            a.max_contract_treewidth
        );
    }
}
