//! A guided tour through every worked example in Chen & Mengel (PODS
//! 2016), executed live. Each section prints what the paper claims and
//! what the implementation computes.
//!
//! ```sh
//! cargo run --example paper_walkthrough
//! ```

use epq::prelude::*;
use epq_core::oracle;
use epq_counting::brute;
use epq_logic::dnf;

fn example_c() -> Structure {
    epq::structures::parse::parse_structure(
        "structure { universe 4  E = { (0,1), (1,2), (2,3), (3,3) } }",
    )
    .unwrap()
}

fn main() {
    let b = example_c();

    println!("=== Example 2.1: liberal variables matter =====================");
    let sig = Signature::from_symbols([("E", 2), ("S", 2)]);
    let mut b21 = Structure::new(sig.clone(), 3);
    b21.add_tuple_named("E", &[0, 1]);
    b21.add_tuple_named("S", &[1, 2]);
    for text in [
        "(x,y,z) := E(x,y) | S(y,z)",
        "(x,y,z) := E(x,y)",
        "(x,y) := E(x,y)",
    ] {
        let q = parse_query(text).unwrap();
        let n = epq::core::count::count_ep(&q, &sig, &b21, &FptEngine).unwrap();
        println!("  |{text}|(B) = {n}");
    }
    println!("  → ψ(x,y,z) and θ(x,y) count over different liberal sets.\n");

    println!("=== Examples 2.2 / 2.4: the (A,S) view and components ========");
    let q22 =
        parse_query("(x, x', y, z) := exists y', u, v, w . E(x,x') & E(y,y') & F(u,v) & G(u,w)")
            .unwrap();
    let sig22 = infer_signature([q22.formula()]).unwrap();
    let pp22 = PpFormula::from_query(&q22, &sig22).unwrap();
    println!("  φ = {pp22}");
    println!(
        "  universe A = {} elements, lib(φ) = {:?}, free(φ) = {:?}",
        pp22.structure().universe_size(),
        pp22.liberal_names()
            .iter()
            .map(|v| v.name())
            .collect::<Vec<_>>(),
        pp22.free_indices()
            .iter()
            .map(|&i| pp22.name(i).name())
            .collect::<Vec<_>>(),
    );
    println!("  components (paper: ψ1(x,x'), ψ2(y), ψ3(z)=⊤, ψ4(∅)):");
    for c in pp22.components() {
        println!("    {c}");
    }
    println!();

    println!("=== Example 4.1: inclusion–exclusion ==========================");
    let text41 = "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))";
    let q41 = parse_query(text41).unwrap();
    let ds41 = dnf::disjuncts(&q41, b.signature()).unwrap();
    let c1 = brute::count_pp_brute(&ds41[0], &b);
    let c2 = brute::count_pp_brute(&ds41[1], &b);
    let c12 = brute::count_pp_brute(&PpFormula::conjoin(&[&ds41[0], &ds41[1]]), &b);
    let whole = brute::count_ep_brute(&q41, &b);
    println!("  |φ(B)| = |φ1| + |φ2| − |φ1∧φ2| : {whole} = {c1} + {c2} − {c12}\n");

    println!("=== Examples 4.2 / 5.15: cancellation =========================");
    let text42 = "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))";
    let q42 = parse_query(text42).unwrap();
    let ds42 = dnf::disjuncts(&q42, b.signature()).unwrap();
    let raw = epq::core::iex::inclusion_exclusion_terms(&ds42);
    let star42 = star(&ds42);
    println!("  raw inclusion–exclusion terms: {}", raw.len());
    println!(
        "  φ* after merging counting-equivalent terms: {}",
        star42.len()
    );
    for t in &star42 {
        println!("    {:>3} × |{}(B)|", t.coefficient.to_string(), t.formula);
    }
    println!("  (paper: |φ(B)| = 3·|φ1(B)| − 2·|(φ1∧φ3)(B)|)\n");

    println!("=== Example 4.3: recovering pp counts from the φ-oracle ======");
    let star41 = star(&ds41);
    let sig_e = b.signature().clone();
    let mut oracle_calls = 0usize;
    let mut oracle_fn = |d: &Structure| {
        oracle_calls += 1;
        epq::core::count::count_ep(&q41, &sig_e, d, &FptEngine).unwrap()
    };
    let recovered = oracle::recover_all_free_counts(&star41, &b, &mut oracle_fn);
    for (i, n) in &recovered.counts {
        println!("  recovered |{}(B)| = {n}", star41[*i].formula);
        assert_eq!(*n, brute::count_pp_brute(&star41[*i].formula, &b));
    }
    println!(
        "  ({} oracle queries on products B × Cˡ)\n",
        recovered.oracle_queries
    );

    println!("=== Example 5.2: counting equivalence = renaming =============");
    let p1 = PpFormula::from_query(&parse_query("E(x,y)").unwrap(), &sig_e).unwrap();
    let p2 = PpFormula::from_query(&parse_query("E(w,z)").unwrap(), &sig_e).unwrap();
    println!(
        "  E(x,y) ~count E(w,z)? {} (logically equivalent? different variables!)",
        counting_equivalent(&p1, &p2)
    );

    println!("\n=== Example 5.7: semi-counting equivalence ====================");
    let sig57 = Signature::from_symbols([("E", 2), ("F", 1)]);
    let p3 = PpFormula::from_query(&parse_query("E(x,y)").unwrap(), &sig57).unwrap();
    let p4 = PpFormula::from_query(
        &parse_query("(x,y) := exists z . E(x,y) & F(z)").unwrap(),
        &sig57,
    )
    .unwrap();
    println!(
        "  semi-counting equivalent: {}, counting equivalent: {}",
        semi_counting_equivalent(&p3, &p4),
        counting_equivalent(&p3, &p4)
    );

    println!("\n=== Example 5.21: the θ⁺ construction =========================");
    let text521 = "(w,x,y,z) := (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y)) \
                   | (exists a, b, c, d . E(a,b) & E(b,c) & E(c,d))";
    let q521 = parse_query(text521).unwrap();
    let dec = plus_decomposition(&q521, &sig_e).unwrap();
    println!("  θ*_af terms: {}", dec.star_af.len());
    println!(
        "  θ⁻_af (not entailing a sentence disjunct): {}",
        dec.minus_af().len()
    );
    println!("  θ⁺ = {{");
    for f in &dec.plus {
        println!("    {f}");
    }
    println!("  }}   (paper: θ⁺ = {{φ1, θ1}})");

    println!("\n=== Theorem 3.2: the trichotomy regimes =======================");
    for (label, text) in [
        ("path (FPT)", "E(x,y) & E(y,z) & E(z,w)"),
        (
            "pendant 3-clique (case 2)",
            "(x) := exists a, b, c . E(x,a) & E(a,b) & E(b,c) & E(a,c)",
        ),
        ("free 3-clique (case 3)", "E(x,y) & E(y,z) & E(x,z)"),
    ] {
        let q = parse_query(text).unwrap();
        let sig = infer_signature([q.formula()]).unwrap();
        let a = classify_query(&q, &sig).unwrap();
        println!(
            "  {label:<28} core tw {} contract tw {}",
            a.max_core_treewidth, a.max_contract_treewidth
        );
    }
    println!("\nAll paper examples reproduced. ✔");
}
