//! The equivalence theorem's reverse reduction, live: recover the counts
//! of every pp-formula in φ⁺ using *only* an oracle for |φ(·)|
//! (Example 4.3 / Theorem 5.20 / Appendix A).
//!
//! ```sh
//! cargo run --release --example oracle_reduction
//! ```

use epq::prelude::*;
use epq_core::oracle;
use epq_counting::brute;
use epq_logic::dnf;

fn main() {
    // ---------------------------------------------------------------
    // Part 1 — Example 4.3 verbatim: the all-free case.
    // ---------------------------------------------------------------
    let text = "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))";
    let query = parse_query(text).unwrap();
    let sig = Signature::from_symbols([("E", 2)]);
    println!("φ = {query}\n");

    // The target structure B we want pp counts on.
    let mut b = Structure::new(sig.clone(), 3);
    for (u, v) in [(0, 1), (1, 2), (2, 0), (1, 1)] {
        b.add_tuple_named("E", &[u, v]);
    }
    println!("Target B:\n{b}\n");

    let ds = dnf::disjuncts(&query, &sig).unwrap();
    let star_terms = star(&ds);
    println!("φ* has {} terms:", star_terms.len());
    for t in &star_terms {
        println!("  {:>3} × |{}(B)|", t.coefficient.to_string(), t.formula);
    }

    // The oracle: all it can do is answer |φ(D)| for structures D of our
    // choosing. Every query is logged.
    let mut transcript: Vec<(usize, usize)> = Vec::new();
    let mut oracle_fn = |d: &Structure| {
        let n = epq::core::count::count_ep(&query, &sig, d, &FptEngine).unwrap();
        transcript.push((d.universe_size(), d.tuple_count()));
        n
    };

    let recovered = oracle::recover_all_free_counts(&star_terms, &b, &mut oracle_fn);
    println!(
        "\nRecovered from {} oracle calls:",
        recovered.oracle_queries
    );
    for (i, n) in &recovered.counts {
        let direct = brute::count_pp_brute(&star_terms[*i].formula, &b);
        println!(
            "  |{}(B)| = {n}   (direct check: {direct}) {}",
            star_terms[*i].formula,
            if *n == direct { "✔" } else { "✘" }
        );
        assert_eq!(*n, direct);
    }
    println!("\nOracle query transcript (|universe|, #tuples) — products B × Cˡ:");
    for (n, t) in &transcript {
        println!("  queried structure with {n} elements, {t} tuples");
    }

    // ---------------------------------------------------------------
    // Part 2 — the general case with a sentence disjunct (Appendix A).
    // ---------------------------------------------------------------
    println!("\n===============================================================");
    let text2 = "(x, y) := E(x,y) | F(x,y) | (exists a, b . E(a,b) & F(a,b))";
    let query2 = parse_query(text2).unwrap();
    let sig2 = Signature::from_symbols([("E", 2), ("F", 2)]);
    println!("φ = {query2}\n");
    let dec = plus_decomposition(&query2, &sig2).unwrap();
    println!(
        "φ⁺ = {} free formulas + {} sentence disjunct(s)",
        dec.minus_af().len(),
        dec.sentences.len()
    );

    let mut b2 = Structure::new(sig2.clone(), 3);
    b2.add_tuple_named("E", &[0, 1]);
    b2.add_tuple_named("F", &[1, 2]);
    b2.add_tuple_named("F", &[0, 1]);
    println!("\nTarget B:\n{b2}");

    let mut calls2 = 0usize;
    let mut oracle2 = |d: &Structure| {
        calls2 += 1;
        epq::core::count::count_ep_with(&dec, query2.liberal_count(), d, &FptEngine)
    };
    let recovered2 = oracle::recover_plus_counts(&dec, query2.liberal_count(), &b2, &mut oracle2);
    println!("\nRecovered (with {calls2} oracle calls):");
    for (formula, n) in &recovered2 {
        let direct = brute::count_pp_brute(formula, &b2);
        println!(
            "  |{formula}(B)| = {n}   (direct: {direct}) {}",
            if *n == direct { "✔" } else { "✘" }
        );
        assert_eq!(*n, direct);
    }
    println!("\nBoth directions of the equivalence theorem exercised. ✔");
}
