//! Counting UCQ answers over a synthetic social network — the decision
//! support scenario the paper's introduction motivates ("database queries
//! with counting are at the basis of decision support systems").
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use epq::prelude::*;
use epq_workloads::social::{analytics_catalog, generate_social, SocialConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let config = SocialConfig {
        users: 60,
        posts: 25,
        avg_follows: 5,
        avg_likes: 4,
    };
    let network = generate_social(&mut StdRng::seed_from_u64(2016), &config);
    println!(
        "Synthetic social network: {} users, {} posts, {} facts\n",
        config.users,
        config.posts,
        network.tuple_count()
    );

    println!(
        "{:<16} {:>12} {:>10} {:>9}  meaning",
        "query", "count", "µs (fpt)", "core tw"
    );
    println!("{}", "-".repeat(88));
    let sig = network.signature().clone();
    for entry in analytics_catalog() {
        let query = parse_query(entry.text).expect("catalog query parses");
        let started = Instant::now();
        let count = count_ep(&query, &sig, &network, &FptEngine).expect("counts");
        let elapsed = started.elapsed().as_micros();
        let analysis = classify_query(&query, &sig).expect("classifies");
        println!(
            "{:<16} {:>12} {:>10} {:>9}  {}",
            entry.name,
            count.to_string(),
            elapsed,
            analysis.max_core_treewidth,
            entry.meaning
        );
    }

    // Show a union query in detail: reach-or-engage.
    println!("\n--- drill-down: the union query 'reach-or-engage' ---");
    let entry = &analytics_catalog()[5];
    let query = parse_query(entry.text).unwrap();
    println!("φ  = {query}");
    let ds = epq_logic::dnf::disjuncts(&query, &sig).unwrap();
    let star_terms = star(&ds);
    println!("φ* terms:");
    for t in &star_terms {
        let n = FptEngine.count(&t.formula, &network);
        println!(
            "  {:>3} × {n:<8} from |{}(B)|",
            t.coefficient.to_string(),
            t.formula
        );
    }
    let total = count_ep(&query, &sig, &network, &FptEngine).unwrap();
    println!("signed total = {total} (the union count, overlap removed once)");
}
