//! Quickstart: parse a query and a structure, count answers, inspect the
//! machinery.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use epq::prelude::*;
use epq_logic::dnf;

fn main() {
    // A database: a directed graph (the paper's Example 4.3 structure).
    let b = epq::structures::parse::parse_structure(
        "structure {
           universe 4
           E = { (0,1), (1,2), (2,3), (3,3) }
         }",
    )
    .expect("structure parses");
    println!("Database B:\n{b}\n");

    // A union of conjunctive queries (Example 4.1 of the paper):
    // the head lists the liberal variables answers range over.
    let text = "(w,x,y,z) := E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))";
    let query = parse_query(text).expect("query parses");
    println!("Query φ: {query}");

    // Count the answers.
    let count = count_ep_text(text, &b);
    println!("|φ(B)| = {count}\n");

    // Look inside: the disjunctive form and the φ* decomposition.
    let sig = b.signature().clone();
    let disjuncts = dnf::disjuncts(&query, &sig).unwrap();
    println!("Disjunctive form ({} disjuncts):", disjuncts.len());
    for d in &disjuncts {
        println!("  ∨ {d}");
    }
    let star_terms = star(&disjuncts);
    println!(
        "\nφ* after inclusion–exclusion + cancellation ({} terms):",
        star_terms.len()
    );
    for t in &star_terms {
        println!("  {:>3} × |{}(B)|", t.coefficient.to_string(), t.formula);
    }

    // Classify: where does this query sit in the trichotomy?
    let analysis = classify_query(&query, &sig).unwrap();
    println!(
        "\nWidth profile of φ⁺: core treewidth ≤ {}, contract treewidth ≤ {}",
        analysis.max_core_treewidth, analysis.max_contract_treewidth
    );
    println!(
        "As a member of a width-{w} family this is: {}",
        classify_widths(
            analysis.max_core_treewidth,
            analysis.max_contract_treewidth,
            analysis
                .max_core_treewidth
                .max(analysis.max_contract_treewidth)
        ),
        w = analysis
            .max_core_treewidth
            .max(analysis.max_contract_treewidth),
    );

    // Engines agree (and scale differently — see the benches).
    println!("\nEngine cross-check on the first disjunct:");
    let pp = &disjuncts[0];
    for engine in epq::counting::engines::all_engines() {
        println!("  {:<12} {}", engine.name(), engine.count(pp, &b));
    }
}
