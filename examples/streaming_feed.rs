//! Streaming feed: ingest a tuple log one insert at a time and keep the
//! answer count current with incremental maintenance.
//!
//! ```sh
//! cargo run --example streaming_feed
//! ```
//!
//! The example generates a skewed two-relation insert stream (most
//! traffic lands on `F`, the way real feeds concentrate on one
//! relation), maintains a prepared UCQ over it with
//! [`LiveCount`], and verifies every checkpoint against a from-scratch
//! recount.

use epq::prelude::*;
use epq_workloads::data;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The query: pairs connected in E both ways, or related in F.
    let text = "(x, y) := (E(x,y) & E(y,x)) | F(x,y)";
    let query = parse_query(text).expect("query parses");
    let sig = Signature::from_symbols([("E", 2), ("F", 2)]);
    println!("Query φ: {query}");

    // A reproducible insert log: 120 tuple insertions over a
    // 12-element universe, 90% of them into F, a checkpoint every 20.
    let log = data::random_insert_log(&mut StdRng::seed_from_u64(2026), &sig, 12, 120, 20, &[1, 9]);
    println!(
        "Insert log: {} inserts, {} checkpoints, universe {}\n",
        log.insert_count(),
        log.checkpoint_count(),
        log.universe
    );

    // Prepare once; maintain incrementally with the scan-based engine
    // (a DP-table engine would recount each affected disjunct in full).
    let prepared = PreparedQuery::prepare(&query, &sig)
        .expect("query prepares")
        .with_engine(Box::new(RelalgEngine));
    let mut live = LiveCount::new(prepared, log.open()).expect("signatures match");
    println!("checkpoint  tuples  |φ(B)|   recount-check");
    let mut checkpoint = 0usize;
    let mut all_agree = true;
    for op in &log.ops {
        if let Some(count) = live.apply(op) {
            checkpoint += 1;
            let agrees = count == live.recount_from_scratch();
            all_agree &= agrees;
            println!(
                "{checkpoint:>10}  {:>6}  {count:>6}   {}",
                live.snapshot().tuple_count(),
                if agrees { "ok" } else { "MISMATCH" }
            );
        }
    }

    let stats = live.stats();
    println!(
        "\nMaintenance work: {} inserts, {} reconciles, {} term recounts, \
         {} term reuses, {} sentence rechecks",
        stats.inserts,
        stats.reconciles,
        stats.term_recounts,
        stats.term_reuses,
        stats.sentence_rechecks
    );
    // Report every checkpoint before failing, so a disagreement shows
    // the full table (and a MISMATCH row) instead of a bare panic.
    assert!(all_agree, "a checkpoint disagreed with its recount");
    println!("All checkpoints agree with from-scratch recounts.");
}
